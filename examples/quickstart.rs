//! Quickstart: parse a faulty μAlloy specification, analyze it, repair it
//! with two different techniques, and score the repairs against the ground
//! truth.
//!
//! Run with: `cargo run --release --example quickstart`

use mualloy_analyzer::AnalyzerReport;
use specrepair_core::{RepairBudget, RepairContext, RepairTechnique};
use specrepair_llm::{FeedbackSetting, MultiRound};
use specrepair_metrics::candidate_metrics;
use specrepair_traditional::Atr;

const GROUND_TRUTH: &str = "\
sig Node { next: lone Node }
fact Acyclic { no n: Node | n in n.^next }
pred hasEdge { some next }
assert NoSelfLoop { all n: Node | n not in n.next }
run hasEdge for 3 expect 1
check NoSelfLoop for 3 expect 0
";

/// The same specification with a student-style bug: the acyclicity fact
/// quantifies the wrong way around.
const FAULTY: &str = "\
sig Node { next: lone Node }
fact Acyclic { some n: Node | n in n.^next }
pred hasEdge { some next }
assert NoSelfLoop { all n: Node | n not in n.next }
run hasEdge for 3 expect 1
check NoSelfLoop for 3 expect 0
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The analyzer reports what is wrong with the faulty specification.
    println!("=== Analyzer report for the faulty specification ===");
    let report = AnalyzerReport::for_source(FAULTY);
    print!("{report}");
    assert!(!report.all_ok(), "the fault must be observable");

    // 2. Repair it with a traditional tool (ATR) ...
    let ctx = RepairContext::from_source(FAULTY, RepairBudget::default())?;
    let atr_outcome = Atr::default().repair(&ctx);
    println!("\n=== ATR ===");
    println!(
        "success: {} after {} validations",
        atr_outcome.success, atr_outcome.candidates_explored
    );

    // 3. ... and with the Multi-Round LLM pipeline.
    let mr_outcome = MultiRound::new(FeedbackSetting::Generic, 7).repair(&ctx);
    println!("\n=== Multi-Round_Generic ===");
    println!(
        "success: {} after {} validations in {} round(s)",
        mr_outcome.success, mr_outcome.candidates_explored, mr_outcome.rounds
    );

    // 4. Score both candidates against the ground truth with the paper's
    // metrics (REP / TM / SM).
    let truth = mualloy_syntax::parse_spec(GROUND_TRUTH)?;
    for (name, outcome) in [("ATR", &atr_outcome), ("Multi-Round", &mr_outcome)] {
        let m = candidate_metrics(&truth, GROUND_TRUTH, outcome.candidate_source.as_deref());
        println!(
            "{name}: REP={} TM={:.3} SM={:.3}",
            m.rep,
            m.tm.unwrap_or(0.0),
            m.sm.unwrap_or(0.0)
        );
    }

    // 5. Show one repaired specification and double-check it against the
    // context's shared oracle (ATR already validated it, so this replays
    // from the memo table without another solve).
    if let Some(candidate) = &atr_outcome.candidate {
        println!("\n=== ATR's repaired specification ===");
        print!("{}", mualloy_syntax::print_spec(candidate));
        assert!(ctx.oracle.service().satisfies_oracle(candidate)?);
    }
    Ok(())
}
