//! The paper's running example (Fig. 1): the hotel key-management
//! specification whose `checkIn` predicate contains the overly-restrictive
//! constraint `no g.gkeys` — it should be `k not in g.gkeys`.
//!
//! This example shows the fault being *detected* (a legitimate scenario is
//! excluded), *localized*, and *repaired* by the hybrid pipeline the paper
//! recommends: traditional localization feeding a Multi-Round LLM fixer.
//!
//! Run with: `cargo run --release --example hotel_locking`

use mualloy_analyzer::Oracle;
use specrepair_core::{localize, LocalizeThenFix, RepairBudget, RepairContext, RepairTechnique};
use specrepair_llm::{FeedbackSetting, MultiRound};

/// Fig. 1, adapted to μAlloy (post-state primes become explicit commands;
/// the essence — the faulty `no g.gkeys` guard — is kept verbatim).
const FAULTY_HOTEL: &str = "\
abstract sig Key {}
sig RoomKey extends Key {}
sig Room { keys: set Key }
sig Guest { gkeys: set Key }
pred checkIn[g: Guest, r: Room, k: RoomKey] {
  no g.gkeys
  k not in r.keys
}
pred returningGuest {
  some g: Guest, r: Room, k: RoomKey | some g.gkeys && checkIn[g, r, k]
}
pred freshGuest {
  some g: Guest, r: Room, k: RoomKey | no g.gkeys && checkIn[g, r, k]
}
run returningGuest for 3 expect 1
run freshGuest for 3 expect 1
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = mualloy_syntax::parse_spec(FAULTY_HOTEL)?;
    let oracle = Oracle::new();

    // The bug: a guest already holding a key can never check in, although
    // that is a perfectly legitimate hotel scenario.
    println!("=== Symptom ===");
    for outcome in oracle.execute_all(&spec)? {
        println!(
            "{} {} -> {} (expected sat: {:?})",
            if outcome.command.is_check() {
                "check"
            } else {
                "run"
            },
            outcome.command.target(),
            if outcome.sat { "SAT" } else { "UNSAT" },
            outcome.command.expect,
        );
    }
    assert!(!oracle.satisfies_oracle(&spec)?);

    // Fault localization points into the checkIn predicate.
    println!("\n=== Localization ===");
    let loc = localize(&spec);
    for site in loc.ranked.iter().take(3) {
        let snippet = &FAULTY_HOTEL
            [site.span.start.min(FAULTY_HOTEL.len())..site.span.end.min(FAULTY_HOTEL.len())];
        println!("score {:.2}: `{}`", site.score, snippet.trim());
    }
    assert!(!loc.ranked.is_empty());

    // Hybrid repair: localization spans become the LLM's location hints.
    println!("\n=== Localize -> Multi-Round repair ===");
    let ctx = RepairContext::from_source(FAULTY_HOTEL, RepairBudget::default())?;
    // top_k = 1: the single most suspicious span — the faulty guard —
    // becomes the model's location hint.
    let pipeline = LocalizeThenFix::new(MultiRound::new(FeedbackSetting::Auto, 11), 1);
    let outcome = pipeline.repair(&ctx);
    println!(
        "{}: success={} after {} validations",
        outcome.technique, outcome.success, outcome.candidates_explored
    );
    if let Some(candidate) = &outcome.candidate {
        println!("\n=== Repaired specification ===");
        print!("{}", mualloy_syntax::print_spec(candidate));
        if outcome.success {
            assert!(oracle.satisfies_oracle(candidate)?);
            println!(
                "\nBoth fresh and returning guests can now check in.\n\
                 (Note: like the paper's REP metric, the oracle accepts any\n\
                 equisatisfiable repair, not only the canonical `k not in g.gkeys`.)"
            );
        }
    }
    Ok(())
}
