//! RQ3 in miniature: run every traditional × Multi-Round hybrid over a
//! small slice of the Alloy4Fun corpus and print each pairing's overlap and
//! unique-union repair counts (a 4×1 slice of the paper's Figure 4).
//!
//! Run with: `cargo run --release --example hybrid_repair`

use specrepair_benchmarks::alloy4fun;
use specrepair_core::{
    overlap_stats, CancelToken, OracleHandle, RepairBudget, RepairContext, RepairTechnique,
};
use specrepair_llm::{FeedbackSetting, MultiRound};
use specrepair_metrics::rep;
use specrepair_traditional::default_suite;

fn main() {
    // A ~1.5% slice of Alloy4Fun: ≈30 faulty specifications.
    let problems = alloy4fun(0.015);
    println!("evaluating {} faulty specifications\n", problems.len());
    let budget = RepairBudget {
        max_candidates: 60,
        max_rounds: 4,
    };

    // One memoizing oracle per problem, shared by every technique that
    // attacks it (the LLM arm here, each traditional arm below).
    let oracles: Vec<OracleHandle> = problems.iter().map(|_| OracleHandle::fresh()).collect();

    // Per-spec REP vector of the Multi-Round_None fixer.
    let llm = MultiRound::new(FeedbackSetting::None, 42);
    let llm_vector: Vec<bool> = problems
        .iter()
        .zip(&oracles)
        .map(|(p, oracle)| {
            let ctx = RepairContext::new(p.faulty.clone(), budget)
                .with_source(&p.faulty_source)
                .with_oracle(oracle.clone())
                .with_cancel(CancelToken::none());
            let out = llm.repair(&ctx);
            rep(&p.truth, out.candidate_source.as_deref()) == 1
        })
        .collect();

    println!(
        "{:<10}{:>8}{:>8}{:>10}{:>16}",
        "Trad.", "Trad", "LLM", "Overlap", "Hybrid(union)"
    );
    for tool in default_suite() {
        let trad_vector: Vec<bool> = problems
            .iter()
            .zip(&oracles)
            .map(|(p, oracle)| {
                let ctx = RepairContext::new(p.faulty.clone(), budget)
                    .with_source(&p.faulty_source)
                    .with_oracle(oracle.clone())
                    .with_cancel(CancelToken::none());
                let out = tool.repair(&ctx);
                rep(&p.truth, out.candidate_source.as_deref()) == 1
            })
            .collect();
        let stats = overlap_stats(&trad_vector, &llm_vector);
        println!(
            "{:<10}{:>8}{:>8}{:>10}{:>16}",
            tool.name(),
            stats.first,
            stats.second,
            stats.overlap,
            stats.union
        );
        assert!(stats.union >= stats.first.max(stats.second));
    }
    println!("\n(the hybrid column is what Table II's Total(unique) reports)");
}
