//! A tour of the two benchmark corpora: prints one ground truth and one
//! injected fault per domain, with the edit script and the analyzer's
//! verdicts — useful for eyeballing what the repair techniques face.
//!
//! Run with: `cargo run --release --example benchmark_tour`

use mualloy_analyzer::Oracle;
use specrepair_benchmarks::{alloy4fun, arepair};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut problems = alloy4fun(0.005);
    problems.extend(arepair(0.08));

    let oracle = Oracle::new();
    let mut seen_domains = std::collections::BTreeSet::new();
    for p in &problems {
        if !seen_domains.insert(p.domain.clone()) {
            continue;
        }
        println!("================================================================");
        println!("{} [{}]", p.id, p.benchmark.label());
        println!("fault injected by: {}", p.edits.join("; "));
        println!("--- faulty specification ---");
        print!("{}", p.faulty_source);
        let failing = oracle.failing_commands(&p.faulty)?;
        println!("--- failing commands ({}): ---", failing.len());
        for f in &failing {
            println!(
                "  {} {} (scope {})",
                if f.command.is_check() { "check" } else { "run" },
                f.command.target(),
                f.command.scope
            );
            if let Some(witness) = &f.instance {
                for line in witness.to_string().lines().take(4) {
                    println!("    {line}");
                }
            }
        }
        assert!(!failing.is_empty(), "{} must be observably faulty", p.id);
        println!();
    }
    println!("visited {} distinct domains/problems", seen_domains.len());
    Ok(())
}
