//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and macros this workspace uses:
//! integer-range / tuple / `Just` / `any` / regex-literal / collection
//! strategies, `prop_map`, `boxed`, `prop_oneof!`, and the `proptest!` test
//! macro with `prop_assert!` / `prop_assert_eq!` / `prop_assume!`.
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the assertion message. Generation is deterministic per test function
//! (seeded from the test's module path and name), so failures reproduce.

/// Test-runner configuration and error types.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// Outcome of a single generated case.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!`; try another input.
        Reject,
        /// An assertion failed.
        Fail(String),
    }

    /// Deterministic generator state (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test identifier.
        pub fn deterministic(name: &str) -> TestRng {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            name.hash(&mut h);
            TestRng {
                state: h.finish() ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Returns a uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            self.next_u64() % bound
        }
    }
}

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (cheaply clonable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A type-erased, clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives (built by `prop_oneof!`).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        /// Creates a union over the given alternatives.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union(options)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty inclusive range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
                self.3.generate(rng),
            )
        }
    }

    /// `&'static str` regex literals act as string strategies. Supported
    /// subset: literal characters and `[class]` atoms (with `a-z` ranges),
    /// each optionally quantified by `{m,n}`, `{n}`, `?`, `*`, or `+`.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn parse_class(chars: &[char], i: &mut usize) -> Vec<char> {
        let mut options = Vec::new();
        assert_eq!(chars[*i], '[');
        *i += 1;
        while *i < chars.len() && chars[*i] != ']' {
            if chars[*i + 1..].first() == Some(&'-') && *i + 2 < chars.len() && chars[*i + 2] != ']'
            {
                let (lo, hi) = (chars[*i], chars[*i + 2]);
                assert!(lo <= hi, "bad class range in pattern");
                for c in lo..=hi {
                    options.push(c);
                }
                *i += 3;
            } else {
                options.push(chars[*i]);
                *i += 1;
            }
        }
        assert!(*i < chars.len(), "unterminated [class] in pattern");
        *i += 1; // skip ']'
        options
    }

    fn parse_quantifier(chars: &[char], i: &mut usize) -> (usize, usize) {
        match chars.get(*i) {
            Some('{') => {
                let close = chars[*i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated {quantifier}")
                    + *i;
                let body: String = chars[*i + 1..close].iter().collect();
                *i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad quantifier"),
                        hi.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                *i += 1;
                (0, 1)
            }
            Some('*') => {
                *i += 1;
                (0, 8)
            }
            Some('+') => {
                *i += 1;
                (1, 8)
            }
            _ => (1, 1),
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut out = String::new();
        while i < chars.len() {
            let options: Vec<char> = match chars[i] {
                '[' => parse_class(&chars, &mut i),
                '\\' => {
                    i += 2;
                    vec![chars[i - 1]]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            let (lo, hi) = parse_quantifier(&chars, &mut i);
            let count = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..count {
                out.push(options[rng.below(options.len() as u64) as usize]);
            }
        }
        out
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical generation strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> u8 {
            rng.next_u64() as u8
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> crate::sample::Index {
            crate::sample::Index::from_raw(rng.next_u64() as usize)
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive size bound for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Minimum length.
        pub min: usize,
        /// Maximum length (inclusive).
        pub max: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy for vectors of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Positional sampling helpers (`prop::sample`).
pub mod sample {
    /// An index into a collection of then-unknown length.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(usize);

    impl Index {
        /// Wraps a raw random value.
        pub fn from_raw(raw: usize) -> Index {
            Index(raw)
        }

        /// Projects onto `0..len`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }
}

/// The usual glob import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

    /// Mirrors proptest's `prelude::prop` namespace module.
    pub mod prop {
        pub use crate::{collection, sample, strategy};
    }
}

/// Uniform choice among strategy arms producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($arm) ),+
        ])
    };
}

/// Fails the current case with a message if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case if the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Discards the current case (not counted toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Declares property tests. Each inner `fn` becomes a `#[test]` running its
/// body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @config ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@config ($config:expr)
     $(
         $(#[$meta:meta])*
         fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(16).max(16);
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "too many rejected cases in {}",
                        stringify!($name)
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::test_runner::TestCaseError::Reject) => continue,
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {} failed: {}", attempts, msg)
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 3u32..10, y in 1usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        /// Vec strategies respect the size range; oneof covers its arms.
        #[test]
        fn combinators_work(
            v in prop::collection::vec(0u32..5, 2..=6),
            pick in prop_oneof![Just(1u8), Just(2u8)],
            flag in any::<bool>(),
        ) {
            prop_assert!(v.len() >= 2 && v.len() <= 6);
            prop_assert!(v.iter().all(|x| *x < 5));
            prop_assert!(pick == 1 || pick == 2);
            prop_assume!(flag || v.len() >= 2);
        }

        /// Pattern strategies honor the class and repetition.
        #[test]
        fn pattern_strings(s in "[a-c]{0,5}") {
            prop_assert!(s.len() <= 5);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn boxed_strategies_clone_and_map() {
        let s = (0u32..3).prop_map(|x| x * 2).boxed();
        let t = s.clone();
        let mut rng = crate::test_runner::TestRng::deterministic("clone_map");
        for _ in 0..20 {
            let a = s.generate(&mut rng);
            assert!(a % 2 == 0 && a <= 4);
            let b = t.generate(&mut rng);
            assert!(b % 2 == 0 && b <= 4);
        }
    }
}
