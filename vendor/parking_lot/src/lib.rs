//! Offline stand-in for `parking_lot`: the `Mutex`/`RwLock` API without
//! lock poisoning, layered over `std::sync`. Guards are the std guard types,
//! so lifetimes and `Deref` behavior match the real crate at every call site
//! used in this workspace.

use std::sync;

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;

/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}
