//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access and no registry cache, so the
//! workspace vendors a minimal, API-compatible subset of the serde surface it
//! actually uses: `#[derive(Serialize, Deserialize)]` on non-generic structs
//! and enums, serialized through an intermediate [`Value`] tree that
//! `serde_json` renders to and parses from JSON text.
//!
//! The traits here are intentionally simpler than real serde (no visitors,
//! no zero-copy, no formats besides JSON) but keep the same spelling at every
//! call site in this repository, so swapping the real crates back in is a
//! one-line manifest change.

pub use serde_derive::{Deserialize, Serialize};

/// The intermediate serialization tree. Maps preserve insertion order so
/// output is deterministic and matches struct declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer outside the `i64` range.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, in insertion order.
    Map(Vec<(String, Value)>),
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn custom(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the intermediate tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the intermediate tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Looks up a field in a serialized map (used by derived impls).
pub fn field<'a>(m: &'a [(String, Value)], name: &str) -> Result<&'a Value, Error> {
    m.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

impl Value {
    fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(n) => Some(n),
            Value::U64(n) => i64::try_from(n).ok(),
            Value::F64(n) if n.fract() == 0.0 && n.abs() < 9.22e18 => Some(n as i64),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(n) => Some(n),
            Value::I64(n) => u64::try_from(n).ok(),
            Value::F64(n) if n.fract() == 0.0 && (0.0..1.85e19).contains(&n) => Some(n as u64),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(n) => Some(n),
            Value::I64(n) => Some(n as f64),
            Value::U64(n) => Some(n as f64),
            _ => None,
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::custom("expected integer"))?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::custom("expected unsigned integer"))?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|n| n as f32)
            .ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected boolean")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            _ => Err(Error::custom("expected 2-element array")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            _ => Err(Error::custom("expected 3-element array")),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::custom("expected object")),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::custom("expected object")),
        }
    }
}
