//! Offline stand-in for `rayon` covering the workspace's usage:
//! `slice.par_iter().map(..)/.flat_map_iter(..).collect::<Vec<_>>()`.
//!
//! Work is genuinely parallel: the input is split into contiguous chunks,
//! one per available core, each processed on a scoped std thread, and the
//! per-item results are reassembled in input order so output is
//! deterministic regardless of scheduling.

use std::thread;

/// Runs `f` over every item on a pool of scoped threads, returning results
/// in input order.
fn run_ordered<'a, T, R, F>(items: &'a [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let workers = thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items.len().max(1));
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(workers);
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    thread::scope(|scope| {
        for (in_chunk, out_chunk) in items.chunks(chunk_len).zip(out.chunks_mut(chunk_len)) {
            let f = &f;
            scope.spawn(move || {
                for (slot, item) in out_chunk.iter_mut().zip(in_chunk.iter()) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("worker thread panicked"))
        .collect()
}

/// Parallel iterator over a slice, produced by [`IntoParallelRefIterator`].
pub struct ParSlice<'a, T> {
    items: &'a [T],
}

/// Conversion into a by-reference parallel iterator.
pub trait IntoParallelRefIterator<'data> {
    /// The parallel iterator type.
    type Iter;

    /// Creates a parallel iterator over references.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Iter = ParSlice<'data, T>;

    fn par_iter(&'data self) -> ParSlice<'data, T> {
        ParSlice { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Iter = ParSlice<'data, T>;

    fn par_iter(&'data self) -> ParSlice<'data, T> {
        ParSlice { items: self }
    }
}

impl<'a, T: Sync> ParSlice<'a, T> {
    /// Maps each item through `f` in parallel.
    pub fn map<F, R>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Maps each item to a serial iterator and flattens, in parallel.
    pub fn flat_map_iter<F, I>(self, f: F) -> ParFlatMapIter<'a, T, F>
    where
        F: Fn(&'a T) -> I + Sync,
        I: IntoIterator,
        I::Item: Send,
    {
        ParFlatMapIter {
            items: self.items,
            f,
        }
    }
}

/// Result of [`ParSlice::map`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, F, R> ParMap<'a, T, F>
where
    T: Sync,
    F: Fn(&'a T) -> R + Sync,
    R: Send,
{
    /// Executes the pipeline and collects results in input order.
    pub fn collect<C: FromParallelIterator<R>>(self) -> C {
        C::from_ordered(run_ordered(self.items, self.f))
    }
}

/// Result of [`ParSlice::flat_map_iter`].
pub struct ParFlatMapIter<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, F, I> ParFlatMapIter<'a, T, F>
where
    T: Sync,
    F: Fn(&'a T) -> I + Sync,
    I: IntoIterator,
    I::Item: Send,
{
    /// Executes the pipeline and collects flattened results in input order.
    pub fn collect<C: FromParallelIterator<I::Item>>(self) -> C {
        let f = &self.f;
        let per_item: Vec<Vec<I::Item>> =
            run_ordered(self.items, |t| f(t).into_iter().collect::<Vec<_>>());
        C::from_ordered(per_item.into_iter().flatten().collect())
    }
}

/// Collection types constructible from an ordered parallel result.
pub trait FromParallelIterator<T> {
    /// Builds the collection from items already in input order.
    fn from_ordered(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered(items: Vec<T>) -> Vec<T> {
        items
    }
}

/// Convenience re-exports mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn flat_map_iter_preserves_order() {
        let xs: Vec<u32> = (0..97).collect();
        let out: Vec<u32> = xs
            .par_iter()
            .flat_map_iter(|x| vec![*x, x + 1000])
            .collect();
        let expected: Vec<u32> = xs.iter().flat_map(|x| vec![*x, x + 1000]).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn map_matches_serial() {
        let xs: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = xs.par_iter().map(|x| x * 3).collect();
        assert_eq!(out, xs.iter().map(|x| x * 3).collect::<Vec<_>>());
    }
}
