//! Offline stand-in for `serde_json`: renders the vendored serde [`Value`]
//! tree to JSON text and parses JSON text back into it. Supports exactly the
//! workspace's API surface: [`to_string`], [`to_string_pretty`], [`from_str`].

use serde::{Deserialize, Serialize, Value};

/// JSON serialization/parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error(e.to_string())
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * level) {
            out.push(' ');
        }
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if n.is_finite() {
                out.push_str(&format!("{n:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                self.literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(Error(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid utf-8 in string".to_string()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".to_string()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".to_string()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u escape".to_string()))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error("bad escape".to_string())),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error("unterminated string".to_string())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("bad number".to_string()))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("bad number `{text}`")))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error("expected `,` or `]`".to_string())),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error("expected `,` or `}`".to_string())),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars_and_containers() {
        let v: Vec<Option<f64>> = vec![Some(1.5), None, Some(-0.25)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1.5,null,-0.25]");
        let back: Vec<Option<f64>> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_nested_objects() {
        let (s, n): (String, u64) = from_str("{\"0\":\"a\\nb\",\"1\":42}")
            .map(|v: std::collections::BTreeMap<String, Value>| {
                let s = match &v["0"] {
                    Value::Str(s) => s.clone(),
                    _ => panic!(),
                };
                let n = match &v["1"] {
                    Value::I64(n) => *n as u64,
                    _ => panic!(),
                };
                (s, n)
            })
            .unwrap();
        assert_eq!(s, "a\nb");
        assert_eq!(n, 42);
    }
}
