//! Offline stand-in for `rand_chacha`, implementing the real ChaCha8 block
//! function (RFC 8439 quarter-round, 8 rounds) with a 64-bit block counter
//! and zero stream id. Word order and `u64` assembly (low word first) follow
//! the real crate, so keystreams are reproducible and statistically
//! equivalent across seeds.

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A ChaCha stream-cipher RNG with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let initial: [u32; 16] = [
            CONSTANTS[0],
            CONSTANTS[1],
            CONSTANTS[2],
            CONSTANTS[3],
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let mut working = initial;
        for _ in 0..4 {
            // One double round = 8 quarter rounds; 4 double rounds = ChaCha8.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (w, init) in working.iter_mut().zip(initial.iter()) {
            *w = w.wrapping_add(*init);
        }
        self.buffer = working;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> ChaCha8Rng {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16, // force refill on first use
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn keystream_is_roughly_uniform() {
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        let heads = (0..n).filter(|_| rng.gen_bool(0.25)).count();
        let frac = heads as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.03, "frac {frac}");
    }
}
