//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the vendored serde's [`Serialize`]/[`Deserialize`]
//! value-tree traits. The parser walks the raw `proc_macro::TokenStream`
//! directly (no `syn`/`quote` available offline) and supports exactly the
//! shapes this workspace uses: non-generic named-field structs, tuple and
//! unit structs, and enums with unit / tuple / named-field variants. Any
//! generic parameter is rejected with a compile error rather than silently
//! producing a wrong impl.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Splits a token sequence on top-level commas, treating `<...>` spans as
/// nested (groups already nest via `TokenTree::Group`). `->` is not treated
/// as closing an angle bracket.
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle_depth: i32 = 0;
    let mut prev_char: Option<char> = None;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            let c = p.as_char();
            match c {
                '<' => angle_depth += 1,
                '>' if prev_char != Some('-') && prev_char != Some('=') => {
                    angle_depth = angle_depth.saturating_sub(1);
                }
                ',' if angle_depth == 0 => {
                    out.push(std::mem::take(&mut current));
                    prev_char = Some(',');
                    continue;
                }
                _ => {}
            }
            prev_char = Some(c);
        } else {
            prev_char = None;
        }
        current.push(t.clone());
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// Extracts field names from the body of a braced field list. Each segment
/// is `#[attr]* [pub [(..)]] name : Type`.
fn parse_named_fields(tokens: &[TokenTree]) -> Vec<String> {
    let mut names = Vec::new();
    for segment in split_top_level_commas(tokens) {
        let mut iter = segment.iter().peekable();
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next(); // the [...] attribute group
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                _ => break,
            }
        }
        if let Some(TokenTree::Ident(id)) = iter.next() {
            names.push(id.to_string());
        }
    }
    names
}

fn count_tuple_fields(tokens: &[TokenTree]) -> usize {
    split_top_level_commas(tokens)
        .into_iter()
        .filter(|seg| !seg.is_empty())
        .count()
}

fn parse_variants(tokens: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    for segment in split_top_level_commas(tokens) {
        let mut iter = segment.iter().peekable();
        // Skip attributes (incl. doc comments).
        while let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == '#' {
                iter.next();
                iter.next();
            } else {
                break;
            }
        }
        let Some(TokenTree::Ident(id)) = iter.next() else {
            continue;
        };
        let name = id.to_string();
        let fields = match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                VariantFields::Tuple(count_tuple_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                VariantFields::Named(parse_named_fields(&inner))
            }
            _ => VariantFields::Unit,
        };
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    // Skip attributes and visibility ahead of the `struct`/`enum` keyword.
    let keyword = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    i += 1;
                    break s;
                }
                i += 1; // `pub`, `crate`, ...
            }
            Some(TokenTree::Group(_)) => i += 1, // `pub(crate)` group
            Some(_) => i += 1,
            None => return Err("derive input has no struct/enum keyword".to_string()),
        }
    };
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("missing type name".to_string()),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "vendored serde_derive does not support generic type `{name}`"
            ));
        }
    }
    let kind = if keyword == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Kind::NamedStruct(parse_named_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Kind::TupleStruct(count_tuple_fields(&inner))
            }
            _ => Kind::UnitStruct,
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Kind::Enum(parse_variants(&inner))
            }
            _ => return Err(format!("enum `{name}` has no body")),
        }
    };
    Ok(Item { name, kind })
}

fn tuple_bindings(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("__f{i}")).collect()
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Map(vec![{}])", entries.join(", "))
        }
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", entries.join(", "))
        }
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string())"
                        ),
                        VariantFields::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_value(__f0))])"
                        ),
                        VariantFields::Tuple(n) => {
                            let binds = tuple_bindings(*n);
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Value::Seq(vec![{}]))])",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantFields::Named(fields) => {
                            let binds = fields.join(", ");
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Value::Map(vec![{}]))])",
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
            fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
        }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::from_value(::serde::field(__m, \"{f}\")?)?")
                })
                .collect();
            format!(
                "match __v {{\n\
                     ::serde::Value::Map(__m) => ::std::result::Result::Ok({name} {{ {} }}),\n\
                     _ => ::std::result::Result::Err(::serde::Error::custom(\"expected map for struct {name}\")),\n\
                 }}",
                inits.join(", ")
            )
        }
        Kind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Kind::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "match __v {{\n\
                     ::serde::Value::Seq(__items) if __items.len() == {n} =>\n\
                         ::std::result::Result::Ok({name}({})),\n\
                     _ => ::std::result::Result::Err(::serde::Error::custom(\"expected {n}-element array for {name}\")),\n\
                 }}",
                inits.join(", ")
            )
        }
        Kind::UnitStruct => format!("{{ let _ = __v; ::std::result::Result::Ok({name}) }}"),
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, VariantFields::Unit))
                .map(|v| {
                    format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),",
                        vn = v.name
                    )
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => None,
                        VariantFields::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)?)),"
                        )),
                        VariantFields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&__items[{i}])?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => match __inner {{\n\
                                     ::serde::Value::Seq(__items) if __items.len() == {n} =>\n\
                                         ::std::result::Result::Ok({name}::{vn}({})),\n\
                                     _ => ::std::result::Result::Err(::serde::Error::custom(\"bad payload for variant {vn}\")),\n\
                                 }},",
                                inits.join(", ")
                            ))
                        }
                        VariantFields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(::serde::field(__fm, \"{f}\")?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => match __inner {{\n\
                                     ::serde::Value::Map(__fm) => ::std::result::Result::Ok({name}::{vn} {{ {} }}),\n\
                                     _ => ::std::result::Result::Err(::serde::Error::custom(\"bad payload for variant {vn}\")),\n\
                                 }},",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {}\n\
                         _ => ::std::result::Result::Err(::serde::Error::custom(\"unknown variant for {name}\")),\n\
                     }},\n\
                     ::serde::Value::Map(__m) if __m.len() == 1 => {{\n\
                         let (__k, __inner) = &__m[0];\n\
                         match __k.as_str() {{\n\
                             {}\n\
                             _ => ::std::result::Result::Err(::serde::Error::custom(\"unknown variant for {name}\")),\n\
                         }}\n\
                     }},\n\
                     _ => ::std::result::Result::Err(::serde::Error::custom(\"expected enum value for {name}\")),\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
            fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
        }}"
    )
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item)
            .parse()
            .expect("vendored serde_derive generated invalid code"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}
