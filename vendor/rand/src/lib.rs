//! Offline stand-in for the `rand` crate (0.8-era API subset).
//!
//! Provides the traits and sampling helpers this workspace uses:
//! [`RngCore`], [`SeedableRng`] (with the rand_core 0.6 `seed_from_u64`
//! key-expansion algorithm, so seeds stay comparable to the real crate),
//! [`Rng::gen`], [`Rng::gen_bool`], [`Rng::gen_range`], and
//! [`seq::SliceRandom`]. Distribution quality matches rand's standard
//! distributions for `f64` (53-bit mantissa construction) and `gen_bool`
//! (scaled-integer threshold test).

/// Low-level uniform bit generation.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let chunk = self.next_u64().to_le_bytes();
            let n = (dest.len() - i).min(8);
            dest[i..i + n].copy_from_slice(&chunk[..n]);
            i += n;
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with the PCG-based key expansion
    /// used by rand_core 0.6, so numeric seeds behave like the real crate.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let word = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&word.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable from uniform bits via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;

    /// Draws a value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;

    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;

            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;

            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    return rng.next_u64() as $t; // full-width range
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        if p >= 1.0 {
            return true;
        }
        // Scaled-integer threshold, as in rand 0.8's Bernoulli.
        let p_int = (p * (2.0 * (1u64 << 63) as f64)) as u64;
        self.next_u64() < p_int
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related sampling.
pub mod seq {
    use super::RngCore;

    /// Random selection from slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.next_u64() as usize % self.len())
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.next_u64() as usize % (i + 1);
                self.swap(i, j);
            }
        }
    }
}

/// Convenience re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}
