//! Offline stand-in for `criterion`: same macro and builder surface
//! (`criterion_group!`, `criterion_main!`, `bench_function`,
//! `benchmark_group`, `iter`, `iter_batched`), measuring median wall-clock
//! time over a small number of samples and printing one line per benchmark.
//! No statistics engine, plots, or CLI — just enough to keep `cargo bench`
//! targets meaningful offline.

use std::time::{Duration, Instant};

/// Re-export of the compiler fence against optimizing away benched values.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost (accepted, not interpreted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    last: Option<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Bencher {
        Bencher {
            samples,
            last: None,
        }
    }

    /// Times `f`, recording the median of `samples` runs.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                black_box(f());
                start.elapsed()
            })
            .collect();
        times.sort();
        self.last = Some(times[times.len() / 2]);
    }

    /// Times `routine` over fresh inputs from `setup`.
    pub fn iter_batched<S, O, Setup, Routine>(
        &mut self,
        mut setup: Setup,
        mut routine: Routine,
        _size: BatchSize,
    ) where
        Setup: FnMut() -> S,
        Routine: FnMut(S) -> O,
    {
        black_box(routine(setup())); // warm-up
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                start.elapsed()
            })
            .collect();
        times.sort();
        self.last = Some(times[times.len() / 2]);
    }
}

/// The benchmark driver.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { samples: 5 }
    }
}

fn run_one(group: Option<&str>, name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher::new(samples);
    f(&mut b);
    let label = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_string(),
    };
    match b.last {
        Some(t) => println!("bench {label:<52} median {t:>12.2?}"),
        None => println!("bench {label:<52} (no measurement)"),
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(None, name, self.samples, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            samples: self.samples,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.clamp(1, 100);
        self
    }

    /// Runs one named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(Some(&self.name), name, self.samples, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Under `cargo test --benches` the harness passes test-runner
            // flags; a bench invocation passes `--bench`. Run either way.
            $( $group(); )+
        }
    };
}
