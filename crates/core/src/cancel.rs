//! Cooperative cancellation for repair attempts.
//!
//! Long-running callers (the `specrepaird` service, batch harnesses with
//! per-request deadlines) need a way to stop a technique mid-search without
//! preemption. A [`CancelToken`] is a cheap, cloneable flag-plus-deadline
//! that every [`RepairContext`](crate::RepairContext) carries; it is checked
//! at the natural charging points — [`OracleSession`](crate::OracleSession)
//! validations and the techniques' own candidate loops — so a cancelled
//! attempt unwinds cooperatively and still returns a well-formed (partial)
//! [`RepairOutcome`](crate::RepairOutcome).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A cheap, cloneable cancellation token: an explicit flag plus an optional
/// wall-clock deadline. Clones share the flag, so cancelling any clone
/// cancels them all.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::none()
    }
}

impl CancelToken {
    /// A token that never fires on its own (no deadline; cancellable only
    /// via [`CancelToken::cancel`]). The default for batch runs.
    pub fn none() -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// A token that fires once `budget` wall-clock time has elapsed.
    pub fn with_deadline(budget: Duration) -> CancelToken {
        CancelToken::deadline_at(Instant::now() + budget)
    }

    /// A token that fires at the given instant.
    pub fn deadline_at(deadline: Instant) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// Cancels the token (and every clone of it) immediately.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether the token has been cancelled or its deadline has passed.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
            || self.inner.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The configured deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Time remaining until the deadline (`None` when no deadline is set;
    /// zero once it has passed).
    pub fn remaining(&self) -> Option<Duration> {
        self.inner
            .deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Sleeps for `duration` unless the token fires first, polling in short
    /// slices so a tripped deadline never waits out a full backoff window.
    /// Returns `true` when the full duration elapsed, `false` when the
    /// token cut the sleep short.
    ///
    /// Every sleep in the resilience stack (LM retry backoff, loadgen
    /// retry-after waits) must go through here rather than a bare
    /// `thread::sleep`: a deadline that fires mid-backoff has to surface
    /// *now*, not after the window.
    pub fn sleep(&self, duration: Duration) -> bool {
        const SLICE: Duration = Duration::from_millis(2);
        let wake = Instant::now() + duration;
        loop {
            if self.is_cancelled() {
                return false;
            }
            let now = Instant::now();
            if now >= wake {
                return true;
            }
            std::thread::sleep((wake - now).min(SLICE));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_fires_until_cancelled() {
        let token = CancelToken::none();
        assert!(!token.is_cancelled());
        assert!(token.deadline().is_none());
        assert!(token.remaining().is_none());
        token.cancel();
        assert!(token.is_cancelled());
    }

    #[test]
    fn clones_share_the_flag() {
        let token = CancelToken::none();
        let clone = token.clone();
        clone.cancel();
        assert!(token.is_cancelled());
    }

    #[test]
    fn expired_deadline_fires() {
        let token = CancelToken::with_deadline(Duration::from_millis(0));
        assert!(token.is_cancelled());
        assert_eq!(token.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn sleep_completes_when_uncancelled() {
        let token = CancelToken::none();
        let t0 = Instant::now();
        assert!(token.sleep(Duration::from_millis(10)));
        assert!(t0.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn sleep_is_cut_short_by_cancellation() {
        let token = CancelToken::none();
        token.cancel();
        let t0 = Instant::now();
        assert!(!token.sleep(Duration::from_secs(60)));
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "slept the window out"
        );
    }

    #[test]
    fn sleep_respects_a_mid_window_deadline() {
        let token = CancelToken::with_deadline(Duration::from_millis(5));
        let t0 = Instant::now();
        assert!(!token.sleep(Duration::from_secs(60)));
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "deadline did not cut the backoff window"
        );
    }

    #[test]
    fn future_deadline_does_not_fire() {
        let token = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!token.is_cancelled());
        assert!(token.remaining().unwrap() > Duration::from_secs(3000));
    }
}
