//! Cooperative cancellation for repair attempts.
//!
//! Long-running callers (the `specrepaird` service, batch harnesses with
//! per-request deadlines) need a way to stop a technique mid-search without
//! preemption. A [`CancelToken`] is a cheap, cloneable flag-plus-deadline
//! that every [`RepairContext`](crate::RepairContext) carries; it is checked
//! at the natural charging points — [`OracleSession`](crate::OracleSession)
//! validations and the techniques' own candidate loops — so a cancelled
//! attempt unwinds cooperatively and still returns a well-formed (partial)
//! [`RepairOutcome`](crate::RepairOutcome).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
    /// Parent link for hierarchical cancellation: a token is considered
    /// cancelled when any ancestor is. Cancelling a child never touches the
    /// parent or siblings.
    parent: Option<Arc<Inner>>,
}

impl Inner {
    fn fired(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
            || self.deadline.is_some_and(|d| Instant::now() >= d)
            || self.parent.as_ref().is_some_and(|p| p.fired())
    }
}

/// A cheap, cloneable cancellation token: an explicit flag plus an optional
/// wall-clock deadline. Clones share the flag, so cancelling any clone
/// cancels them all.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::none()
    }
}

impl CancelToken {
    /// A token that never fires on its own (no deadline; cancellable only
    /// via [`CancelToken::cancel`]). The default for batch runs.
    pub fn none() -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
                parent: None,
            }),
        }
    }

    /// A token that fires once `budget` wall-clock time has elapsed.
    pub fn with_deadline(budget: Duration) -> CancelToken {
        CancelToken::deadline_at(Instant::now() + budget)
    }

    /// A token that fires at the given instant.
    pub fn deadline_at(deadline: Instant) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
                parent: None,
            }),
        }
    }

    /// Derives a child token: the child fires when this token (or any
    /// ancestor) fires, but cancelling the child leaves the parent — and
    /// every sibling — running. This is the cancellation primitive of the
    /// portfolio scheduler (one child per racing entrant, losers cancelled
    /// individually) and of any deadline path that wants to abort one
    /// sub-attempt without tearing down the request.
    pub fn child(&self) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
                parent: Some(Arc::clone(&self.inner)),
            }),
        }
    }

    /// A child token (see [`CancelToken::child`]) with its own additional
    /// deadline: it fires at `deadline` or when an ancestor fires, whichever
    /// comes first.
    pub fn child_with_deadline(&self, budget: Duration) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(Instant::now() + budget),
                parent: Some(Arc::clone(&self.inner)),
            }),
        }
    }

    /// Cancels the token (and every clone of it) immediately.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether the token has been cancelled, its deadline has passed, or
    /// any ancestor token has fired.
    pub fn is_cancelled(&self) -> bool {
        self.inner.fired()
    }

    /// The configured deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Time remaining until the deadline (`None` when no deadline is set;
    /// zero once it has passed).
    pub fn remaining(&self) -> Option<Duration> {
        self.inner
            .deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Sleeps for `duration` unless the token fires first, polling in short
    /// slices so a tripped deadline never waits out a full backoff window.
    /// Returns `true` when the full duration elapsed, `false` when the
    /// token cut the sleep short.
    ///
    /// Every sleep in the resilience stack (LM retry backoff, loadgen
    /// retry-after waits) must go through here rather than a bare
    /// `thread::sleep`: a deadline that fires mid-backoff has to surface
    /// *now*, not after the window.
    pub fn sleep(&self, duration: Duration) -> bool {
        const SLICE: Duration = Duration::from_millis(2);
        let wake = Instant::now() + duration;
        loop {
            if self.is_cancelled() {
                return false;
            }
            let now = Instant::now();
            if now >= wake {
                return true;
            }
            std::thread::sleep((wake - now).min(SLICE));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_fires_until_cancelled() {
        let token = CancelToken::none();
        assert!(!token.is_cancelled());
        assert!(token.deadline().is_none());
        assert!(token.remaining().is_none());
        token.cancel();
        assert!(token.is_cancelled());
    }

    #[test]
    fn clones_share_the_flag() {
        let token = CancelToken::none();
        let clone = token.clone();
        clone.cancel();
        assert!(token.is_cancelled());
    }

    #[test]
    fn expired_deadline_fires() {
        let token = CancelToken::with_deadline(Duration::from_millis(0));
        assert!(token.is_cancelled());
        assert_eq!(token.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn sleep_completes_when_uncancelled() {
        let token = CancelToken::none();
        let t0 = Instant::now();
        assert!(token.sleep(Duration::from_millis(10)));
        assert!(t0.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn sleep_is_cut_short_by_cancellation() {
        let token = CancelToken::none();
        token.cancel();
        let t0 = Instant::now();
        assert!(!token.sleep(Duration::from_secs(60)));
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "slept the window out"
        );
    }

    #[test]
    fn sleep_respects_a_mid_window_deadline() {
        let token = CancelToken::with_deadline(Duration::from_millis(5));
        let t0 = Instant::now();
        assert!(!token.sleep(Duration::from_secs(60)));
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "deadline did not cut the backoff window"
        );
    }

    #[test]
    fn cancelled_parent_cancels_all_children() {
        let parent = CancelToken::none();
        let a = parent.child();
        let b = parent.child();
        let grandchild = a.child();
        assert!(!a.is_cancelled() && !b.is_cancelled() && !grandchild.is_cancelled());
        parent.cancel();
        assert!(a.is_cancelled());
        assert!(b.is_cancelled());
        assert!(grandchild.is_cancelled(), "cancellation cascades downward");
    }

    #[test]
    fn cancelling_a_child_leaves_siblings_and_parent_running() {
        let parent = CancelToken::none();
        let loser = parent.child();
        let winner = parent.child();
        loser.cancel();
        assert!(loser.is_cancelled());
        assert!(!winner.is_cancelled(), "sibling must keep running");
        assert!(!parent.is_cancelled(), "parent must keep running");
    }

    #[test]
    fn parent_deadline_fires_children() {
        let parent = CancelToken::with_deadline(Duration::from_millis(0));
        let child = parent.child();
        assert!(
            child.is_cancelled(),
            "expired ancestor deadline fires child"
        );
    }

    #[test]
    fn child_deadline_is_independent() {
        let parent = CancelToken::none();
        let child = parent.child_with_deadline(Duration::from_millis(0));
        assert!(child.is_cancelled());
        assert!(!parent.is_cancelled());
        let lenient = parent.child_with_deadline(Duration::from_secs(3600));
        assert!(!lenient.is_cancelled());
    }

    #[test]
    fn future_deadline_does_not_fire() {
        let token = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!token.is_cancelled());
        assert!(token.remaining().unwrap() > Duration::from_secs(3000));
    }
}
