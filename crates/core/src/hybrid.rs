//! Hybrid repair strategies (RQ3).
//!
//! Two composition modes are studied:
//!
//! - [`UnionHybrid`] — the paper's Table II / Figure 4 combination: run the
//!   traditional tool first; when it fails, fall back to the LLM-based
//!   technique. The union of repair sets is exactly what the per-spec
//!   sequential fallback computes.
//! - [`LocalizeThenFix`] — the §VI ablation: feed the traditional
//!   localizer's suspicious spans to a hint-aware technique as its bug
//!   location hints, combining "ARepair's localization strength and the
//!   LLM's synthesis capabilities".

use mualloy_syntax::Span;

use crate::technique::{RepairContext, RepairOutcome, RepairTechnique};

/// A technique that can exploit external bug-location hints (the LLM-based
/// pipelines implement this; prompt settings with `Loc` consume the spans).
pub trait HintedRepair: RepairTechnique {
    /// Attempts a repair, treating `hints` as the suspected fault locations.
    fn repair_with_hints(&self, ctx: &RepairContext, hints: &[Span]) -> RepairOutcome;
}

/// Sequential fallback: `primary` first, `secondary` when it fails.
#[derive(Debug)]
pub struct UnionHybrid<A, B> {
    name: String,
    primary: A,
    secondary: B,
}

impl<A: RepairTechnique, B: RepairTechnique> UnionHybrid<A, B> {
    /// Creates a hybrid named `"<primary>+<secondary>"`.
    pub fn new(primary: A, secondary: B) -> Self {
        let name = format!("{}+{}", primary.name(), secondary.name());
        UnionHybrid {
            name,
            primary,
            secondary,
        }
    }
}

impl<A: RepairTechnique, B: RepairTechnique> RepairTechnique for UnionHybrid<A, B> {
    fn name(&self) -> &str {
        &self.name
    }

    fn repair(&self, ctx: &RepairContext) -> RepairOutcome {
        let first = self.primary.repair(ctx);
        if first.success {
            return RepairOutcome {
                technique: self.name.clone(),
                ..first
            };
        }
        let second = self.secondary.repair(ctx);
        let explored = first.candidates_explored + second.candidates_explored;
        // The fallback ran *after* the primary, so the attempt really spent
        // the sum of both tools' rounds — reporting the max would hide the
        // primary's cost on every fallback.
        let rounds = first.rounds + second.rounds;
        if second.success {
            RepairOutcome {
                technique: self.name.clone(),
                candidates_explored: explored,
                rounds,
                ..second
            }
        } else {
            // Keep the better-looking failure candidate (prefer the
            // secondary's, which had the benefit of the fallback position),
            // and the secondary's failure cause — it was the last word.
            let reason = second.reason;
            let candidate = second.candidate.or(first.candidate);
            let candidate_source = second.candidate_source.or(first.candidate_source);
            RepairOutcome {
                technique: self.name.clone(),
                success: false,
                reason,
                candidate,
                candidate_source,
                candidates_explored: explored,
                rounds,
            }
        }
    }
}

/// Localize with the traditional analysis, then fix with a hint-aware
/// technique.
#[derive(Debug)]
pub struct LocalizeThenFix<T> {
    name: String,
    fixer: T,
    /// Number of top-ranked spans passed as hints.
    pub top_k: usize,
}

impl<T: HintedRepair> LocalizeThenFix<T> {
    /// Creates the pipeline named `"Localize><fixer>"`.
    pub fn new(fixer: T, top_k: usize) -> Self {
        let name = format!("Localize>{}", fixer.name());
        LocalizeThenFix { name, fixer, top_k }
    }
}

impl<T: HintedRepair> RepairTechnique for LocalizeThenFix<T> {
    fn name(&self) -> &str {
        &self.name
    }

    fn repair(&self, ctx: &RepairContext) -> RepairOutcome {
        let loc = crate::localization::localize_with(ctx.oracle.service(), &ctx.faulty);
        let hints = loc.top_spans(self.top_k);
        let out = self.fixer.repair_with_hints(ctx, &hints);
        RepairOutcome {
            technique: self.name.clone(),
            ..out
        }
    }
}

/// The paper's future-work proposal (§VI): *"a dynamic approach that
/// selects the most suitable combination of techniques based on the
/// characteristics of faulty specifications"*. This implementation routes
/// by symptom: over-constraint symptoms (an expected-satisfiable command
/// that is unsatisfiable) go to the `systematic` arm first — relaxations
/// are what template/mutation search excels at — while under-constraint
/// symptoms go to the `generative` arm first; the other arm remains as
/// fallback.
#[derive(Debug)]
pub struct DynamicSelector<A, B> {
    name: String,
    systematic: A,
    generative: B,
}

impl<A: RepairTechnique, B: RepairTechnique> DynamicSelector<A, B> {
    /// Creates a selector named `"Dynamic(<systematic>|<generative>)"`.
    pub fn new(systematic: A, generative: B) -> Self {
        let name = format!("Dynamic({}|{})", systematic.name(), generative.name());
        DynamicSelector {
            name,
            systematic,
            generative,
        }
    }

    /// Whether the faulty spec exhibits an over-constraint symptom: some
    /// command annotated `expect 1` is unsatisfiable.
    fn over_constrained(ctx: &RepairContext) -> bool {
        ctx.oracle
            .service()
            .failing_commands(&ctx.faulty)
            .map(|fs| fs.iter().any(|o| o.command.expect == Some(true) && !o.sat))
            .unwrap_or(false)
    }
}

impl<A: RepairTechnique, B: RepairTechnique> RepairTechnique for DynamicSelector<A, B> {
    fn name(&self) -> &str {
        &self.name
    }

    fn repair(&self, ctx: &RepairContext) -> RepairOutcome {
        let (first, second): (&dyn RepairTechnique, &dyn RepairTechnique) =
            if Self::over_constrained(ctx) {
                (&self.systematic, &self.generative)
            } else {
                (&self.generative, &self.systematic)
            };
        let out = first.repair(ctx);
        let out = if out.success { out } else { second.repair(ctx) };
        RepairOutcome {
            technique: self.name.clone(),
            ..out
        }
    }
}

/// Set-level hybrid statistics for a pair of per-spec outcome vectors
/// (Table II's columns): individual counts, overlap and unique union.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverlapStats {
    /// Specs repaired by the first technique.
    pub first: usize,
    /// Specs repaired by the second technique.
    pub second: usize,
    /// Specs repaired by both.
    pub overlap: usize,
    /// Specs repaired by at least one (the hybrid's repair count).
    pub union: usize,
}

/// Computes overlap statistics from aligned success vectors.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn overlap_stats(a: &[bool], b: &[bool]) -> OverlapStats {
    assert_eq!(a.len(), b.len(), "outcome vectors must be aligned");
    let mut s = OverlapStats {
        first: 0,
        second: 0,
        overlap: 0,
        union: 0,
    };
    for (&x, &y) in a.iter().zip(b) {
        if x {
            s.first += 1;
        }
        if y {
            s.second += 1;
        }
        if x && y {
            s.overlap += 1;
        }
        if x || y {
            s.union += 1;
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::technique::RepairBudget;
    use mualloy_syntax::parse_spec;

    /// A stub technique that "succeeds" iff its flag is set, by returning
    /// the context's spec unchanged.
    struct Stub {
        name: &'static str,
        succeed: bool,
    }

    impl RepairTechnique for Stub {
        fn name(&self) -> &str {
            self.name
        }
        fn repair(&self, ctx: &RepairContext) -> RepairOutcome {
            if self.succeed {
                RepairOutcome::success_with(self.name, ctx.faulty.clone(), 1, 1)
            } else {
                RepairOutcome::failure(self.name, 1, 1)
            }
        }
    }

    impl HintedRepair for Stub {
        fn repair_with_hints(&self, ctx: &RepairContext, hints: &[Span]) -> RepairOutcome {
            let mut out = self.repair(ctx);
            out.rounds = hints.len();
            out
        }
    }

    fn ctx() -> RepairContext {
        RepairContext::new(
            parse_spec("sig N {} fact { no N } pred p { some N } run p for 3 expect 1").unwrap(),
            RepairBudget::tiny(),
        )
    }

    #[test]
    fn union_hybrid_prefers_primary() {
        let h = UnionHybrid::new(
            Stub {
                name: "A",
                succeed: true,
            },
            Stub {
                name: "B",
                succeed: true,
            },
        );
        assert_eq!(h.name(), "A+B");
        let out = h.repair(&ctx());
        assert!(out.success);
        assert_eq!(out.candidates_explored, 1, "secondary must not run");
    }

    #[test]
    fn union_hybrid_falls_back() {
        let h = UnionHybrid::new(
            Stub {
                name: "A",
                succeed: false,
            },
            Stub {
                name: "B",
                succeed: true,
            },
        );
        let out = h.repair(&ctx());
        assert!(out.success);
        assert_eq!(out.candidates_explored, 2);
        assert_eq!(out.technique, "A+B");
    }

    #[test]
    fn union_hybrid_fallback_charges_the_sum_of_rounds() {
        // Regression: the sequential fallback spends primary + secondary
        // rounds; it used to report only the max of the two.
        let h = UnionHybrid::new(
            Stub {
                name: "A",
                succeed: false,
            },
            Stub {
                name: "B",
                succeed: true,
            },
        );
        let out = h.repair(&ctx());
        assert!(out.success);
        assert_eq!(out.rounds, 2, "fallback rounds must be 1 + 1, not max");
        let both_fail = UnionHybrid::new(
            Stub {
                name: "A",
                succeed: false,
            },
            Stub {
                name: "B",
                succeed: false,
            },
        );
        assert_eq!(both_fail.repair(&ctx()).rounds, 2);
    }

    #[test]
    fn union_hybrid_total_failure() {
        let h = UnionHybrid::new(
            Stub {
                name: "A",
                succeed: false,
            },
            Stub {
                name: "B",
                succeed: false,
            },
        );
        assert!(!h.repair(&ctx()).success);
    }

    #[test]
    fn localize_then_fix_passes_hints() {
        let p = LocalizeThenFix::new(
            Stub {
                name: "L",
                succeed: true,
            },
            3,
        );
        assert_eq!(p.name(), "Localize>L");
        let out = p.repair(&ctx());
        assert!(out.success);
        // The faulty ctx has at least one suspicious site, so hints flowed.
        assert!(
            out.rounds >= 1,
            "expected non-empty hints, got {}",
            out.rounds
        );
    }

    #[test]
    fn dynamic_selector_routes_by_symptom() {
        // Over-constraint symptom: `run p expect 1` is unsat.
        let over = RepairContext::new(
            parse_spec("sig N {} fact { no N } pred p { some N } run p for 3 expect 1").unwrap(),
            RepairBudget::tiny(),
        );
        // Under-constraint symptom: `check A expect 0` has a counterexample.
        let under = RepairContext::new(
            parse_spec(
                "sig N { next: lone N } fact F { some N || no N } \
                 assert A { all n: N | n not in n.next } check A for 3 expect 0",
            )
            .unwrap(),
            RepairBudget::tiny(),
        );
        // Arms that record who ran first by failing with distinct counts.
        let selector = DynamicSelector::new(
            Stub {
                name: "SYS",
                succeed: true,
            },
            Stub {
                name: "GEN",
                succeed: true,
            },
        );
        assert_eq!(selector.name(), "Dynamic(SYS|GEN)");
        // Over-constrained: systematic runs (and succeeds) -> 1 exploration.
        let out = selector.repair(&over);
        assert!(out.success);
        assert_eq!(out.candidates_explored, 1);
        // Both symptoms still produce an outcome when both arms fail.
        let failing = DynamicSelector::new(
            Stub {
                name: "SYS",
                succeed: false,
            },
            Stub {
                name: "GEN",
                succeed: false,
            },
        );
        assert!(!failing.repair(&under).success);
    }

    #[test]
    fn overlap_stats_basic() {
        let a = [true, true, false, false];
        let b = [true, false, true, false];
        let s = overlap_stats(&a, &b);
        assert_eq!(s.first, 2);
        assert_eq!(s.second, 2);
        assert_eq!(s.overlap, 1);
        assert_eq!(s.union, 3);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn overlap_stats_requires_alignment() {
        let _ = overlap_stats(&[true], &[true, false]);
    }
}
