//! The repair-technique abstraction shared by every tool in the study.

use std::sync::Arc;

use mualloy_analyzer::Oracle;
use mualloy_syntax::walk::{NodeId, NodeRepl};
use mualloy_syntax::{spec_fingerprint, Fingerprint, Spec, SpecHasher};
use serde::{Deserialize, Serialize};

use crate::cancel::CancelToken;
use crate::oracle::{OracleHandle, OracleSession};

/// Resource budget for one repair attempt.
///
/// The defaults correspond to the per-technique budgets used in the study
/// harness; benches shrink them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepairBudget {
    /// Maximum number of candidate specifications a technique may validate.
    pub max_candidates: usize,
    /// Maximum number of refinement rounds (ICEBAR iterations, Multi-Round
    /// LLM rounds).
    pub max_rounds: usize,
}

impl Default for RepairBudget {
    fn default() -> Self {
        RepairBudget {
            max_candidates: 600,
            max_rounds: 6,
        }
    }
}

impl RepairBudget {
    /// A tiny budget for tests and microbenchmarks.
    pub fn tiny() -> RepairBudget {
        RepairBudget {
            max_candidates: 40,
            max_rounds: 2,
        }
    }
}

/// Everything a technique gets to see about a repair problem.
///
/// Crucially this does **not** include the ground truth: techniques validate
/// against the specification's own oracle (commands with `expect`
/// annotations, assertions, tests), exactly like the studied tools.
#[derive(Debug, Clone)]
pub struct RepairContext {
    /// The faulty specification (parsed).
    pub faulty: Spec,
    /// The faulty specification's source text (for minimally-invasive
    /// textual patching and similarity measurement).
    pub source: String,
    /// Resource budget.
    pub budget: RepairBudget,
    /// Handle to the shared memoizing oracle service all validations go
    /// through. Clone one handle across techniques to share its cache.
    pub oracle: OracleHandle,
    /// Cooperative cancellation token (deadline and/or explicit cancel).
    /// Techniques observe it through [`OracleSession`] charging points and
    /// their own loop checks; a fired token makes the attempt unwind with a
    /// partial outcome instead of running its budget dry.
    pub cancel: CancelToken,
    /// Memoized Merkle hasher over the faulty spec. Techniques that build
    /// candidates by single-node rewriting fingerprint them in
    /// O(path + payload) via [`RepairContext::fingerprint_edit`] instead of
    /// re-hashing the whole candidate; the fingerprint feeds the keyed
    /// oracle queries and the global candidate dedup.
    pub hasher: Arc<SpecHasher>,
}

impl RepairContext {
    /// Builds a context from a parsed spec, rendering canonical source.
    pub fn new(faulty: Spec, budget: RepairBudget) -> RepairContext {
        let source = mualloy_syntax::print_spec(&faulty);
        let hasher = Arc::new(SpecHasher::new(&faulty));
        RepairContext {
            faulty,
            source,
            budget,
            oracle: OracleHandle::fresh(),
            cancel: CancelToken::none(),
            hasher,
        }
    }

    /// Builds a context from source text.
    ///
    /// # Errors
    ///
    /// Fails if the source does not parse.
    pub fn from_source(
        source: &str,
        budget: RepairBudget,
    ) -> Result<RepairContext, mualloy_syntax::SyntaxError> {
        let faulty = mualloy_syntax::parse_spec(source)?;
        Ok(RepairContext::new(faulty, budget).with_source(source))
    }

    /// Overrides the rendered source with the original text (`from_source`
    /// and the study runner keep the user's bytes for similarity metrics).
    pub fn with_source(mut self, source: &str) -> RepairContext {
        self.source = source.to_string();
        self
    }

    /// Replaces the oracle handle (to share one service across contexts).
    pub fn with_oracle(mut self, oracle: OracleHandle) -> RepairContext {
        self.oracle = oracle;
        self
    }

    /// Turns global candidate deduplication off for this context — the
    /// control arm of the dedup-on/off byte-identity gate.
    pub fn without_dedup(mut self) -> RepairContext {
        self.oracle = self.oracle.without_dedup();
        self
    }

    /// Turns the incremental oracle engine off for this context — the
    /// `--no-incremental` escape hatch and the control arm of the
    /// incremental-on/off byte-identity gate.
    pub fn without_incremental(mut self) -> RepairContext {
        self.oracle = self.oracle.without_incremental();
        self
    }

    /// Canonical fingerprint of a candidate produced by rewriting the
    /// faulty spec's node `target` with `payload`
    /// ([`mualloy_syntax::walk::replace_node`]). Uses the context's
    /// memoized hasher for an O(path + payload) incremental rehash, falling
    /// back to a full hash walk of `candidate` when the incremental path is
    /// unavailable (foreign node id, kind mismatch, unassigned ids).
    pub fn fingerprint_edit(
        &self,
        candidate: &Spec,
        target: NodeId,
        payload: &NodeRepl,
    ) -> Fingerprint {
        self.hasher
            .fingerprint_replaced(target, payload)
            .unwrap_or_else(|| spec_fingerprint(candidate))
    }

    /// Replaces the cancellation token (to impose a deadline or wire the
    /// attempt into a service-side cancel).
    pub fn with_cancel(mut self, cancel: CancelToken) -> RepairContext {
        self.cancel = cancel;
        self
    }

    /// Whether this attempt has been cancelled (explicitly or by deadline).
    /// Techniques poll this in loops that run between oracle validations.
    pub fn cancelled(&self) -> bool {
        self.cancel.is_cancelled()
    }

    /// Opens the central budget-charging session for one repair attempt,
    /// capped at the context's candidate budget and wired to its
    /// cancellation token.
    pub fn validation_session(&self) -> OracleSession<'_> {
        self.oracle
            .session(self.budget.max_candidates)
            .with_cancel(self.cancel.clone())
    }

    /// [`repair_is_valid`] against this context's faulty spec and oracle.
    /// Answers `false` without solving once the attempt is cancelled, so
    /// validation-driven loops unwind promptly.
    pub fn repair_is_valid(&self, candidate: &Spec) -> bool {
        !self.cancelled() && repair_is_valid(self.oracle.service(), &self.faulty, candidate)
    }
}

/// Why a repair attempt ended the way it did.
///
/// Table II's accounting (and any triage of a chaos run) needs failure
/// *causes*, not just a boolean: a model that exhausted its proposal budget
/// is a different event from a transport that died under it, and neither is
/// the same as a deadline firing or the technique crashing outright.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OutcomeReason {
    /// The technique's own oracle accepted the final candidate.
    Repaired,
    /// The candidate/round budget ran dry without an accepted candidate.
    BudgetExhausted,
    /// The model declined to propose further candidates (unparsable prompt
    /// or proposal budget spent) — *not* a transport failure.
    ModelExhausted,
    /// The LM transport failed even after retries (circuit open, repeated
    /// timeouts/rate limits) — the attempt is partial, not a model verdict.
    TransportExhausted,
    /// The attempt's deadline or explicit cancel fired mid-search.
    Cancelled,
    /// The technique panicked; the study harness caught it and recorded
    /// this sentinel instead of aborting the run.
    Crashed,
}

impl OutcomeReason {
    /// Stable lower-snake label (journal / metrics key).
    pub fn label(&self) -> &'static str {
        match self {
            OutcomeReason::Repaired => "repaired",
            OutcomeReason::BudgetExhausted => "budget_exhausted",
            OutcomeReason::ModelExhausted => "model_exhausted",
            OutcomeReason::TransportExhausted => "transport_exhausted",
            OutcomeReason::Cancelled => "cancelled",
            OutcomeReason::Crashed => "crashed",
        }
    }
}

/// The result of one repair attempt.
#[derive(Debug, Clone)]
pub struct RepairOutcome {
    /// Name of the technique that produced this outcome.
    pub technique: String,
    /// Whether the technique's own oracle accepted the final candidate.
    pub success: bool,
    /// Why the attempt ended ([`OutcomeReason::Repaired`] iff `success`).
    pub reason: OutcomeReason,
    /// The final candidate specification (present even on failure when the
    /// technique produced *something* — similarity metrics are computed for
    /// unsuccessful candidates too, as in the paper).
    pub candidate: Option<Spec>,
    /// Source text of the final candidate.
    pub candidate_source: Option<String>,
    /// Number of candidates validated against the oracle.
    pub candidates_explored: usize,
    /// Number of refinement rounds used.
    pub rounds: usize,
}

impl RepairOutcome {
    /// A failure outcome with no candidate (reason: budget exhausted; use
    /// [`RepairOutcome::with_reason`] for a more specific cause).
    pub fn failure(technique: impl Into<String>, explored: usize, rounds: usize) -> RepairOutcome {
        RepairOutcome {
            technique: technique.into(),
            success: false,
            reason: OutcomeReason::BudgetExhausted,
            candidate: None,
            candidate_source: None,
            candidates_explored: explored,
            rounds,
        }
    }

    /// A success outcome for the given candidate, rendering its source.
    pub fn success_with(
        technique: impl Into<String>,
        candidate: Spec,
        explored: usize,
        rounds: usize,
    ) -> RepairOutcome {
        let source = mualloy_syntax::print_spec(&candidate);
        RepairOutcome {
            technique: technique.into(),
            success: true,
            reason: OutcomeReason::Repaired,
            candidate: Some(candidate),
            candidate_source: Some(source),
            candidates_explored: explored,
            rounds,
        }
    }

    /// Overrides the outcome reason (builder style).
    pub fn with_reason(mut self, reason: OutcomeReason) -> RepairOutcome {
        self.reason = reason;
        self
    }

    /// The reason a *failed* search loop should report given its context:
    /// [`OutcomeReason::Cancelled`] when the cancel token fired, otherwise
    /// the provided default. Centralises the check every technique's exit
    /// path performs.
    pub fn failure_reason_for(ctx: &RepairContext, default: OutcomeReason) -> OutcomeReason {
        if ctx.cancelled() {
            OutcomeReason::Cancelled
        } else {
            default
        }
    }
}

/// A specification repair technique.
///
/// Implementations must be deterministic given the context (stochastic
/// techniques take a seed at construction).
pub trait RepairTechnique {
    /// Stable display name (used in tables: `ARepair`, `Multi-Round_None`…).
    fn name(&self) -> &str;

    /// Attempts to repair the faulty specification within the budget.
    fn repair(&self, ctx: &RepairContext) -> RepairOutcome;
}

/// Validates a candidate against the specification's own command oracle,
/// through the shared memoizing service.
///
/// Returns `false` for candidates that fail to execute; the failure is
/// tallied in the oracle's error counter rather than silently dropped.
pub fn oracle_accepts(oracle: &Oracle, candidate: &Spec) -> bool {
    oracle.satisfies_oracle(candidate).unwrap_or(false)
}

/// Whether the candidate preserves the *oracle surface* of the original:
/// the same commands (kind, target, scope, expectation) and structurally
/// identical assertion bodies.
///
/// A "repair" that weakens the assertions or drops an `expect` annotation
/// would pass [`oracle_accepts`] vacuously; every pipeline that consumes
/// free-form candidate text (the LLM ones) must reject such candidates.
pub fn preserves_oracle_surface(original: &Spec, candidate: &Spec) -> bool {
    use mualloy_syntax::walk::strip_spec_spans;
    let o = strip_spec_spans(original);
    let c = strip_spec_spans(candidate);
    o.commands == c.commands && o.asserts == c.asserts
}

/// [`oracle_accepts`] plus the [`preserves_oracle_surface`] guard.
pub fn repair_is_valid(oracle: &Oracle, original: &Spec, candidate: &Spec) -> bool {
    preserves_oracle_surface(original, candidate) && oracle_accepts(oracle, candidate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mualloy_syntax::parse_spec;

    const GOOD: &str = "sig N { next: lone N } \
        fact { no n: N | n in n.^next } \
        assert NoSelf { all n: N | n not in n.next } \
        check NoSelf for 3 expect 0";

    #[test]
    fn oracle_accepts_correct_spec() {
        assert!(oracle_accepts(&Oracle::new(), &parse_spec(GOOD).unwrap()));
    }

    #[test]
    fn oracle_rejects_faulty_spec() {
        let bad = GOOD.replace("no n: N | n in n.^next", "some univ || no univ");
        assert!(!oracle_accepts(&Oracle::new(), &parse_spec(&bad).unwrap()));
    }

    #[test]
    fn context_validation_session_is_budget_capped() {
        let ctx = RepairContext::from_source(
            GOOD,
            RepairBudget {
                max_candidates: 1,
                max_rounds: 1,
            },
        )
        .unwrap();
        let mut session = ctx.validation_session();
        assert_eq!(session.validate(&ctx.faulty), Some(true));
        assert_eq!(session.validate(&ctx.faulty), None);
        assert!(ctx.repair_is_valid(&ctx.faulty));
    }

    #[test]
    fn context_from_source_keeps_text() {
        let ctx = RepairContext::from_source(GOOD, RepairBudget::tiny()).unwrap();
        assert_eq!(ctx.source, GOOD);
        assert!(RepairContext::from_source("sig {", RepairBudget::tiny()).is_err());
    }

    #[test]
    fn outcome_constructors() {
        let f = RepairOutcome::failure("X", 5, 1);
        assert!(!f.success);
        assert!(f.candidate.is_none());
        assert_eq!(f.reason, OutcomeReason::BudgetExhausted);
        let f = f.with_reason(OutcomeReason::TransportExhausted);
        assert_eq!(f.reason, OutcomeReason::TransportExhausted);
        let s = RepairOutcome::success_with("X", parse_spec(GOOD).unwrap(), 3, 1);
        assert!(s.success);
        assert_eq!(s.reason, OutcomeReason::Repaired);
        assert!(s.candidate_source.unwrap().contains("sig N"));
    }

    #[test]
    fn failure_reason_tracks_cancellation() {
        let ctx = RepairContext::from_source(GOOD, RepairBudget::tiny()).unwrap();
        assert_eq!(
            RepairOutcome::failure_reason_for(&ctx, OutcomeReason::ModelExhausted),
            OutcomeReason::ModelExhausted
        );
        ctx.cancel.cancel();
        assert_eq!(
            RepairOutcome::failure_reason_for(&ctx, OutcomeReason::ModelExhausted),
            OutcomeReason::Cancelled
        );
    }

    #[test]
    fn reason_labels_are_stable_and_serializable() {
        let labels: Vec<&str> = [
            OutcomeReason::Repaired,
            OutcomeReason::BudgetExhausted,
            OutcomeReason::ModelExhausted,
            OutcomeReason::TransportExhausted,
            OutcomeReason::Cancelled,
            OutcomeReason::Crashed,
        ]
        .iter()
        .map(|r| r.label())
        .collect();
        assert_eq!(labels.len(), 6);
        let json = serde_json::to_string(&OutcomeReason::Crashed).unwrap();
        assert!(json.contains("Crashed"), "{json}");
        let back: OutcomeReason = serde_json::from_str(&json).unwrap();
        assert_eq!(back, OutcomeReason::Crashed);
    }

    #[test]
    fn budget_defaults() {
        let b = RepairBudget::default();
        assert!(b.max_candidates >= RepairBudget::tiny().max_candidates);
    }
}
