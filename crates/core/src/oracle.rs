//! The repair-side face of the shared oracle service: a cloneable handle
//! every [`RepairContext`](crate::RepairContext) carries, plus metered
//! validation sessions that centralize budget charging.
//!
//! Budget semantics: **one candidate validated = one budget unit**. A
//! [`OracleSession`] is opened per repair attempt; techniques no longer
//! count validations by hand — they ask the session, which charges the
//! unit, refuses once the cap is reached, and answers from the shared
//! memo table when the same candidate has been validated before (by any
//! technique sharing the handle).
//!
//! On top of the memo table sits the cross-entrant [`CandidateDedup`]: a
//! singleflight registry keyed by the candidate's canonical 128-bit
//! fingerprint. When any technique (or portfolio entrant, on any thread)
//! validates a candidate another entrant has already validated — or is
//! validating *right now* — the session answers from the registry instead
//! of re-entering the oracle; concurrent duplicates coalesce onto the one
//! in-flight solve. A dedup hit still charges its budget unit, so repair
//! outcomes are byte-identical with the dedup-off control arm.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use mualloy_analyzer::{IncrementalStats, Oracle, OracleCacheStats, VerdictStore};
use mualloy_syntax::{Fingerprint, Spec};
use serde::{Deserialize, Serialize};

use crate::cancel::CancelToken;

/// A point-in-time snapshot of the global candidate-dedup counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DedupStats {
    /// Validations answered from the registry (candidate already settled).
    pub hits: u64,
    /// Validations that were the first of their fingerprint and solved.
    pub misses: u64,
    /// Hits that waited for a concurrent in-flight solve of the same
    /// candidate instead of duplicating it (a subset of `hits`).
    pub coalesced: u64,
}

impl DedupStats {
    /// Fraction of validations that were duplicates (0.0 when idle).
    pub fn dedup_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Accumulates another snapshot into this one.
    pub fn absorb(&mut self, other: &DedupStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.coalesced += other.coalesced;
    }

    /// The telemetry `candidate_dedup` section for this snapshot.
    pub fn section(&self) -> specrepair_telemetry::DedupSection {
        specrepair_telemetry::DedupSection {
            hits: self.hits,
            misses: self.misses,
            coalesced: self.coalesced,
            rate: self.dedup_rate(),
        }
    }
}

/// State of one fingerprint in the dedup registry.
#[derive(Debug, Clone, Copy)]
enum Slot {
    /// Some session is validating this candidate right now.
    InFlight,
    /// The candidate's oracle verdict has been settled.
    Done(bool),
}

/// Cross-entrant candidate deduplication: a singleflight registry mapping
/// canonical candidate fingerprints to settled oracle verdicts.
///
/// Unlike the analyzer-side memo table (which caches per *query*), this
/// registry coalesces whole candidate validations across every technique,
/// portfolio entrant and thread sharing one [`OracleHandle`] — including
/// concurrent ones: the second validator of an in-flight candidate blocks
/// until the first settles it, rather than solving the same spec twice.
#[derive(Debug)]
pub struct CandidateDedup {
    enabled: bool,
    table: Mutex<HashMap<Fingerprint, Slot>>,
    settled: Condvar,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
}

impl Default for CandidateDedup {
    fn default() -> Self {
        CandidateDedup::new()
    }
}

impl CandidateDedup {
    /// A fresh, enabled registry.
    pub fn new() -> CandidateDedup {
        CandidateDedup::with_enabled(true)
    }

    /// A disabled registry: every probe reports [`DedupProbe::Bypass`] and
    /// nothing is recorded. The control arm of the dedup-on/off
    /// byte-identity gate.
    pub fn disabled() -> CandidateDedup {
        CandidateDedup::with_enabled(false)
    }

    fn with_enabled(enabled: bool) -> CandidateDedup {
        CandidateDedup {
            enabled,
            table: Mutex::new(HashMap::new()),
            settled: Condvar::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    /// Whether deduplication is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Snapshot of the hit/miss/coalesce counters.
    pub fn stats(&self) -> DedupStats {
        DedupStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct candidate fingerprints seen so far.
    pub fn unique_candidates(&self) -> usize {
        self.lock_table().len()
    }

    /// Poison-safe table lock: a panicking validator must not wedge every
    /// other entrant (its in-flight slot is released by [`InflightGuard`]).
    fn lock_table(&self) -> MutexGuard<'_, HashMap<Fingerprint, Slot>> {
        self.table.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Probes the registry for `key`, registering this caller as the
    /// in-flight validator on a miss. Blocks while another caller is
    /// validating the same fingerprint.
    pub fn begin(&self, key: Fingerprint) -> DedupProbe<'_> {
        if !self.enabled {
            return DedupProbe::Bypass;
        }
        let mut table = self.lock_table();
        let mut waited = false;
        loop {
            match table.get(&key) {
                Some(Slot::Done(verdict)) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    if waited {
                        self.coalesced.fetch_add(1, Ordering::Relaxed);
                    }
                    return DedupProbe::Hit(*verdict);
                }
                Some(Slot::InFlight) => {
                    waited = true;
                    table = self.settled.wait(table).unwrap_or_else(|p| p.into_inner());
                }
                None => {
                    table.insert(key, Slot::InFlight);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return DedupProbe::Miss(InflightGuard {
                        dedup: self,
                        key,
                        settled: false,
                    });
                }
            }
        }
    }
}

/// Outcome of a [`CandidateDedup::begin`] probe.
#[derive(Debug)]
pub enum DedupProbe<'a> {
    /// Deduplication is disabled; validate without recording anything.
    Bypass,
    /// The candidate is already settled with this verdict.
    Hit(bool),
    /// First validator of this candidate: solve, then
    /// [`InflightGuard::settle`] the verdict for everyone else.
    Miss(InflightGuard<'a>),
}

/// Registration of an in-flight validation. Dropping the guard without
/// settling (the validator panicked or unwound early) releases the slot so
/// a waiting entrant takes over instead of hanging forever.
#[derive(Debug)]
pub struct InflightGuard<'a> {
    dedup: &'a CandidateDedup,
    key: Fingerprint,
    settled: bool,
}

impl InflightGuard<'_> {
    /// Publishes the verdict and wakes every coalesced waiter.
    pub fn settle(mut self, verdict: bool) {
        self.dedup
            .lock_table()
            .insert(self.key, Slot::Done(verdict));
        self.settled = true;
        self.dedup.settled.notify_all();
    }
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        if !self.settled {
            self.dedup.lock_table().remove(&self.key);
            self.dedup.settled.notify_all();
        }
    }
}

/// A cheap, cloneable handle to a shared [`Oracle`] service.
///
/// Cloning the handle shares the underlying memo table; a fresh handle
/// ([`OracleHandle::fresh`]) starts an independent one.
#[derive(Clone)]
pub struct OracleHandle {
    service: Arc<Oracle>,
    dedup: Arc<CandidateDedup>,
}

impl std::fmt::Debug for OracleHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OracleHandle")
            .field("service", &*self.service)
            .field("dedup", &self.dedup.stats())
            .finish()
    }
}

impl Default for OracleHandle {
    fn default() -> Self {
        OracleHandle::fresh()
    }
}

impl OracleHandle {
    /// A handle to a fresh memoizing oracle with global candidate
    /// deduplication enabled.
    pub fn fresh() -> OracleHandle {
        OracleHandle {
            service: Arc::new(Oracle::new()),
            dedup: Arc::new(CandidateDedup::new()),
        }
    }

    /// A handle to a pass-through (non-caching) oracle — the control arm
    /// of the cache-on/cache-off equivalence gate. Candidate dedup is off
    /// too: the control arm measures the un-deduplicated baseline.
    pub fn disabled() -> OracleHandle {
        OracleHandle {
            service: Arc::new(Oracle::disabled()),
            dedup: Arc::new(CandidateDedup::disabled()),
        }
    }

    /// A handle to a memoizing oracle bounded at `per_shard` spec entries
    /// per shard (see [`Oracle::bounded`]) — the configuration long-running
    /// services use so the memo table cannot leak.
    pub fn bounded(per_shard: usize) -> OracleHandle {
        OracleHandle {
            service: Arc::new(Oracle::bounded(per_shard)),
            dedup: Arc::new(CandidateDedup::new()),
        }
    }

    /// Wraps an existing shared service (dedup enabled).
    pub fn shared(service: Arc<Oracle>) -> OracleHandle {
        OracleHandle {
            service,
            dedup: Arc::new(CandidateDedup::new()),
        }
    }

    /// Turns global candidate deduplication off on this handle (builder
    /// style) — the control arm of the dedup-on/off byte-identity gate.
    /// The memo table is untouched; only the cross-entrant registry is
    /// bypassed.
    pub fn without_dedup(mut self) -> OracleHandle {
        self.dedup = Arc::new(CandidateDedup::disabled());
        self
    }

    /// Turns the incremental oracle engine off on this handle's service
    /// (builder style) — the `--no-incremental` escape hatch and the
    /// control arm of the incremental-on/off byte-identity gate. Every
    /// verdict query solves cold, exactly as before the engine existed.
    pub fn without_incremental(self) -> OracleHandle {
        self.service.disable_incremental();
        self
    }

    /// Attaches a persistent verdict tier to this handle's service
    /// (builder style): probed after an in-memory verdict miss, fed every
    /// freshly computed verdict, so a restarted process boots warm. See
    /// [`mualloy_analyzer::VerdictStore`]. A no-op on a disabled oracle
    /// (the cache-off control arm stays pure pass-through).
    pub fn with_persistent(self, store: Arc<dyn VerdictStore>) -> OracleHandle {
        self.service.attach_persist(store);
        self
    }

    /// The underlying oracle service.
    pub fn service(&self) -> &Oracle {
        &self.service
    }

    /// The cross-entrant candidate-dedup registry this handle shares.
    pub fn dedup(&self) -> &CandidateDedup {
        &self.dedup
    }

    /// Snapshot of the service's cache counters.
    pub fn stats(&self) -> OracleCacheStats {
        self.service.stats()
    }

    /// Snapshot of the global candidate-dedup counters.
    pub fn dedup_stats(&self) -> DedupStats {
        self.dedup.stats()
    }

    /// Snapshot of the service's incremental-engine counters.
    pub fn incremental_stats(&self) -> IncrementalStats {
        self.service.incremental_stats()
    }

    /// Opens a metered validation session capped at `max_candidates`.
    pub fn session(&self, max_candidates: usize) -> OracleSession<'_> {
        OracleSession {
            oracle: &self.service,
            dedup: &self.dedup,
            cap: Some(max_candidates),
            validated: 0,
            cancel: CancelToken::none(),
        }
    }

    /// Opens an unmetered session: validations are counted but never
    /// refused. For techniques whose validation count is bounded elsewhere
    /// (e.g. one validation per refinement round).
    pub fn unmetered_session(&self) -> OracleSession<'_> {
        OracleSession {
            oracle: &self.service,
            dedup: &self.dedup,
            cap: None,
            validated: 0,
            cancel: CancelToken::none(),
        }
    }
}

/// Central budget accounting for one repair attempt: every candidate
/// validation is charged here, one unit each.
#[derive(Debug)]
pub struct OracleSession<'a> {
    oracle: &'a Oracle,
    dedup: &'a CandidateDedup,
    cap: Option<usize>,
    validated: usize,
    cancel: CancelToken,
}

impl<'a> OracleSession<'a> {
    /// Wires a cancellation token into the session: once it fires, the
    /// session behaves as exhausted and refuses further validations, which
    /// is how deadline-bound callers (the `specrepaird` service) abort
    /// technique search loops mid-flight.
    pub fn with_cancel(mut self, cancel: CancelToken) -> OracleSession<'a> {
        self.cancel = cancel;
        self
    }

    /// Budget units charged so far (= candidates validated).
    pub fn validated(&self) -> usize {
        self.validated
    }

    /// Whether the session's attempt has been cancelled (deadline or
    /// explicit cancel).
    pub fn cancelled(&self) -> bool {
        self.cancel.is_cancelled()
    }

    /// Whether the session refuses further validations: budget spent or
    /// attempt cancelled.
    pub fn exhausted(&self) -> bool {
        self.cap.is_some_and(|c| self.validated >= c) || self.cancelled()
    }

    /// Charges one budget unit and answers whether `candidate` satisfies
    /// its own command oracle. Returns `None` — charging nothing and not
    /// solving — once the budget is exhausted or the attempt cancelled.
    ///
    /// The validation first probes the handle's global [`CandidateDedup`]:
    /// a candidate any entrant has already settled (or is settling right
    /// now, on another thread) is answered from the registry without
    /// re-entering the oracle. The budget unit is charged either way, so
    /// outcomes are byte-identical with dedup off.
    ///
    /// An oracle *error* counts the candidate as explored-but-invalid: the
    /// unit is charged, `Some(false)` is returned, and the error is tallied
    /// in the service's [`OracleCacheStats::errors`] counter.
    pub fn validate(&mut self, candidate: &Spec) -> Option<bool> {
        self.validate_with(candidate, None)
    }

    /// [`OracleSession::validate`] with a precomputed canonical
    /// fingerprint (e.g. from an incremental
    /// [`mualloy_syntax::SpecHasher`] rehash), skipping the full hash
    /// walk. The caller guarantees `key` is the candidate's canonical
    /// fingerprint.
    pub fn validate_keyed(&mut self, candidate: &Spec, key: Fingerprint) -> Option<bool> {
        self.validate_with(candidate, Some(key))
    }

    fn validate_with(&mut self, candidate: &Spec, key: Option<Fingerprint>) -> Option<bool> {
        if self.exhausted() {
            return None;
        }
        self.validated += 1;
        let span = specrepair_trace::span(
            "technique.oracle_check",
            specrepair_trace::Phase::Orchestration,
        );
        let key = key.unwrap_or_else(|| Oracle::fingerprint(candidate));
        let (verdict, dedup_hit) = match self.dedup.begin(key) {
            DedupProbe::Hit(verdict) => (verdict, true),
            DedupProbe::Miss(guard) => {
                let verdict = self
                    .oracle
                    .satisfies_oracle_keyed(candidate, key)
                    .unwrap_or(false);
                guard.settle(verdict);
                (verdict, false)
            }
            DedupProbe::Bypass => (
                self.oracle
                    .satisfies_oracle_keyed(candidate, key)
                    .unwrap_or(false),
                false,
            ),
        };
        if span.is_active() {
            span.attr_bool("valid", verdict);
            span.attr_bool("dedup_hit", dedup_hit);
            span.attr_u64("validated", self.validated as u64);
        }
        Some(verdict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mualloy_syntax::parse_spec;

    const GOOD: &str = "sig N { next: lone N } \
        fact { no n: N | n in n.^next } \
        assert NoSelf { all n: N | n not in n.next } \
        check NoSelf for 3 expect 0";

    #[test]
    fn session_charges_one_unit_per_validation() {
        let handle = OracleHandle::fresh();
        let spec = parse_spec(GOOD).unwrap();
        let mut session = handle.session(2);
        assert_eq!(session.validate(&spec), Some(true));
        assert_eq!(session.validate(&spec), Some(true));
        assert_eq!(session.validated(), 2);
        assert!(session.exhausted());
        assert_eq!(session.validate(&spec), None, "budget spent: no charge");
        assert_eq!(session.validated(), 2);
    }

    #[test]
    fn sessions_share_the_handle_cache() {
        // The dedup registry answers the duplicate before the memo table is
        // even probed: one oracle miss total, the repeat is a dedup hit.
        let handle = OracleHandle::fresh();
        let spec = parse_spec(GOOD).unwrap();
        assert_eq!(handle.session(5).validate(&spec), Some(true));
        assert_eq!(handle.session(5).validate(&spec), Some(true));
        let stats = handle.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 0);
        assert_eq!(handle.dedup_stats().hits, 1);
        // With dedup off, the duplicate falls through to the memo table,
        // which still answers it without re-solving.
        let handle = OracleHandle::fresh().without_dedup();
        assert_eq!(handle.session(5).validate(&spec), Some(true));
        assert_eq!(handle.session(5).validate(&spec), Some(true));
        let stats = handle.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn without_incremental_solves_cold_with_identical_verdicts() {
        let spec = parse_spec(GOOD).unwrap();
        let incremental = OracleHandle::fresh();
        let cold = OracleHandle::fresh().without_incremental();
        assert_eq!(
            incremental.session(5).validate(&spec),
            cold.session(5).validate(&spec)
        );
        assert!(incremental.incremental_stats().checks > 0);
        assert_eq!(cold.incremental_stats().checks, 0);
    }

    #[test]
    fn unmetered_session_never_refuses() {
        let handle = OracleHandle::fresh();
        let spec = parse_spec(GOOD).unwrap();
        let mut session = handle.unmetered_session();
        for _ in 0..5 {
            assert_eq!(session.validate(&spec), Some(true));
        }
        assert!(!session.exhausted());
        assert_eq!(session.validated(), 5);
    }

    #[test]
    fn disabled_handle_still_validates() {
        let handle = OracleHandle::disabled();
        let spec = parse_spec(GOOD).unwrap();
        assert_eq!(handle.session(1).validate(&spec), Some(true));
        assert_eq!(handle.stats().hits, 0);
    }

    #[test]
    fn duplicate_candidates_dedup_across_sessions() {
        let handle = OracleHandle::fresh();
        let spec = parse_spec(GOOD).unwrap();
        assert_eq!(handle.session(5).validate(&spec), Some(true));
        assert_eq!(handle.session(5).validate(&spec), Some(true));
        let stats = handle.dedup_stats();
        assert_eq!(stats.misses, 1, "first validation solves");
        assert_eq!(stats.hits, 1, "second is a registry hit");
        assert_eq!(stats.dedup_rate(), 0.5);
        assert_eq!(handle.dedup().unique_candidates(), 1);
        // The registry hit never re-entered the oracle at all.
        assert_eq!(handle.stats().hits + handle.stats().misses, 1);
    }

    #[test]
    fn dedup_hit_still_charges_the_budget_unit() {
        let handle = OracleHandle::fresh();
        let spec = parse_spec(GOOD).unwrap();
        let mut session = handle.session(2);
        assert_eq!(session.validate(&spec), Some(true));
        assert_eq!(session.validate(&spec), Some(true), "dedup hit");
        assert_eq!(session.validated(), 2, "hit charged its unit");
        assert_eq!(session.validate(&spec), None, "budget spent");
    }

    #[test]
    fn without_dedup_bypasses_the_registry() {
        let handle = OracleHandle::fresh().without_dedup();
        assert!(!handle.dedup().is_enabled());
        let spec = parse_spec(GOOD).unwrap();
        assert_eq!(handle.session(5).validate(&spec), Some(true));
        assert_eq!(handle.session(5).validate(&spec), Some(true));
        let stats = handle.dedup_stats();
        assert_eq!((stats.hits, stats.misses), (0, 0));
        // The memo table still deduplicated the solve underneath.
        assert_eq!(handle.stats().hits, 1);
    }

    #[test]
    fn validate_keyed_agrees_with_validate() {
        let handle = OracleHandle::fresh();
        let spec = parse_spec(GOOD).unwrap();
        let key = mualloy_analyzer::Oracle::fingerprint(&spec);
        assert_eq!(handle.session(5).validate_keyed(&spec, key), Some(true));
        assert_eq!(handle.session(5).validate(&spec), Some(true));
        assert_eq!(handle.dedup_stats().hits, 1, "same fingerprint deduped");
    }

    #[test]
    fn concurrent_duplicates_coalesce_onto_one_solve() {
        let handle = OracleHandle::fresh();
        let dedup = handle.dedup();
        let key = Fingerprint(0xDEAD_BEEF);
        // First prober becomes the in-flight validator.
        let DedupProbe::Miss(guard) = dedup.begin(key) else {
            panic!("first probe must miss");
        };
        // A second prober on another thread blocks until the first settles.
        let waiter = std::thread::spawn({
            let handle = handle.clone();
            move || match handle.dedup().begin(key) {
                DedupProbe::Hit(v) => v,
                other => panic!("waiter must coalesce into a hit: {other:?}"),
            }
        });
        // Give the waiter time to park on the condvar, then settle.
        std::thread::sleep(std::time::Duration::from_millis(20));
        guard.settle(true);
        assert!(waiter.join().unwrap());
        let stats = dedup.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.coalesced, 1, "the hit waited for the in-flight solve");
    }

    #[test]
    fn dropped_inflight_guard_releases_the_slot() {
        let dedup = CandidateDedup::new();
        let key = Fingerprint(42);
        let DedupProbe::Miss(guard) = dedup.begin(key) else {
            panic!("first probe must miss");
        };
        drop(guard); // validator unwound without settling
        let DedupProbe::Miss(guard) = dedup.begin(key) else {
            panic!("slot must be free again");
        };
        guard.settle(false);
        let DedupProbe::Hit(v) = dedup.begin(key) else {
            panic!("settled now");
        };
        assert!(!v);
    }

    #[test]
    fn dedup_stats_absorb_and_rate() {
        let mut total = DedupStats::default();
        assert_eq!(total.dedup_rate(), 0.0);
        total.absorb(&DedupStats {
            hits: 3,
            misses: 1,
            coalesced: 1,
        });
        total.absorb(&DedupStats {
            hits: 1,
            misses: 3,
            coalesced: 0,
        });
        assert_eq!(total.hits, 4);
        assert_eq!(total.misses, 4);
        assert_eq!(total.coalesced, 1);
        assert_eq!(total.dedup_rate(), 0.5);
    }
}
