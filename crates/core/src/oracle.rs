//! The repair-side face of the shared oracle service: a cloneable handle
//! every [`RepairContext`](crate::RepairContext) carries, plus metered
//! validation sessions that centralize budget charging.
//!
//! Budget semantics: **one candidate validated = one budget unit**. A
//! [`OracleSession`] is opened per repair attempt; techniques no longer
//! count validations by hand — they ask the session, which charges the
//! unit, refuses once the cap is reached, and answers from the shared
//! memo table when the same candidate has been validated before (by any
//! technique sharing the handle).

use std::sync::Arc;

use mualloy_analyzer::{Oracle, OracleCacheStats};
use mualloy_syntax::Spec;

use crate::cancel::CancelToken;

/// A cheap, cloneable handle to a shared [`Oracle`] service.
///
/// Cloning the handle shares the underlying memo table; a fresh handle
/// ([`OracleHandle::fresh`]) starts an independent one.
#[derive(Clone)]
pub struct OracleHandle {
    service: Arc<Oracle>,
}

impl std::fmt::Debug for OracleHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OracleHandle")
            .field("service", &*self.service)
            .finish()
    }
}

impl Default for OracleHandle {
    fn default() -> Self {
        OracleHandle::fresh()
    }
}

impl OracleHandle {
    /// A handle to a fresh memoizing oracle.
    pub fn fresh() -> OracleHandle {
        OracleHandle {
            service: Arc::new(Oracle::new()),
        }
    }

    /// A handle to a pass-through (non-caching) oracle — the control arm
    /// of the cache-on/cache-off equivalence gate.
    pub fn disabled() -> OracleHandle {
        OracleHandle {
            service: Arc::new(Oracle::disabled()),
        }
    }

    /// A handle to a memoizing oracle bounded at `per_shard` spec entries
    /// per shard (see [`Oracle::bounded`]) — the configuration long-running
    /// services use so the memo table cannot leak.
    pub fn bounded(per_shard: usize) -> OracleHandle {
        OracleHandle {
            service: Arc::new(Oracle::bounded(per_shard)),
        }
    }

    /// Wraps an existing shared service.
    pub fn shared(service: Arc<Oracle>) -> OracleHandle {
        OracleHandle { service }
    }

    /// The underlying oracle service.
    pub fn service(&self) -> &Oracle {
        &self.service
    }

    /// Snapshot of the service's cache counters.
    pub fn stats(&self) -> OracleCacheStats {
        self.service.stats()
    }

    /// Opens a metered validation session capped at `max_candidates`.
    pub fn session(&self, max_candidates: usize) -> OracleSession<'_> {
        OracleSession {
            oracle: &self.service,
            cap: Some(max_candidates),
            validated: 0,
            cancel: CancelToken::none(),
        }
    }

    /// Opens an unmetered session: validations are counted but never
    /// refused. For techniques whose validation count is bounded elsewhere
    /// (e.g. one validation per refinement round).
    pub fn unmetered_session(&self) -> OracleSession<'_> {
        OracleSession {
            oracle: &self.service,
            cap: None,
            validated: 0,
            cancel: CancelToken::none(),
        }
    }
}

/// Central budget accounting for one repair attempt: every candidate
/// validation is charged here, one unit each.
#[derive(Debug)]
pub struct OracleSession<'a> {
    oracle: &'a Oracle,
    cap: Option<usize>,
    validated: usize,
    cancel: CancelToken,
}

impl<'a> OracleSession<'a> {
    /// Wires a cancellation token into the session: once it fires, the
    /// session behaves as exhausted and refuses further validations, which
    /// is how deadline-bound callers (the `specrepaird` service) abort
    /// technique search loops mid-flight.
    pub fn with_cancel(mut self, cancel: CancelToken) -> OracleSession<'a> {
        self.cancel = cancel;
        self
    }

    /// Budget units charged so far (= candidates validated).
    pub fn validated(&self) -> usize {
        self.validated
    }

    /// Whether the session's attempt has been cancelled (deadline or
    /// explicit cancel).
    pub fn cancelled(&self) -> bool {
        self.cancel.is_cancelled()
    }

    /// Whether the session refuses further validations: budget spent or
    /// attempt cancelled.
    pub fn exhausted(&self) -> bool {
        self.cap.is_some_and(|c| self.validated >= c) || self.cancelled()
    }

    /// Charges one budget unit and answers whether `candidate` satisfies
    /// its own command oracle. Returns `None` — charging nothing and not
    /// solving — once the budget is exhausted or the attempt cancelled.
    ///
    /// An oracle *error* counts the candidate as explored-but-invalid: the
    /// unit is charged, `Some(false)` is returned, and the error is tallied
    /// in the service's [`OracleCacheStats::errors`] counter.
    pub fn validate(&mut self, candidate: &Spec) -> Option<bool> {
        if self.exhausted() {
            return None;
        }
        self.validated += 1;
        let span = specrepair_trace::span(
            "technique.oracle_check",
            specrepair_trace::Phase::Orchestration,
        );
        let verdict = self.oracle.satisfies_oracle(candidate).unwrap_or(false);
        if span.is_active() {
            span.attr_bool("valid", verdict);
            span.attr_u64("validated", self.validated as u64);
        }
        Some(verdict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mualloy_syntax::parse_spec;

    const GOOD: &str = "sig N { next: lone N } \
        fact { no n: N | n in n.^next } \
        assert NoSelf { all n: N | n not in n.next } \
        check NoSelf for 3 expect 0";

    #[test]
    fn session_charges_one_unit_per_validation() {
        let handle = OracleHandle::fresh();
        let spec = parse_spec(GOOD).unwrap();
        let mut session = handle.session(2);
        assert_eq!(session.validate(&spec), Some(true));
        assert_eq!(session.validate(&spec), Some(true));
        assert_eq!(session.validated(), 2);
        assert!(session.exhausted());
        assert_eq!(session.validate(&spec), None, "budget spent: no charge");
        assert_eq!(session.validated(), 2);
    }

    #[test]
    fn sessions_share_the_handle_cache() {
        let handle = OracleHandle::fresh();
        let spec = parse_spec(GOOD).unwrap();
        assert_eq!(handle.session(5).validate(&spec), Some(true));
        assert_eq!(handle.session(5).validate(&spec), Some(true));
        let stats = handle.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn unmetered_session_never_refuses() {
        let handle = OracleHandle::fresh();
        let spec = parse_spec(GOOD).unwrap();
        let mut session = handle.unmetered_session();
        for _ in 0..5 {
            assert_eq!(session.validate(&spec), Some(true));
        }
        assert!(!session.exhausted());
        assert_eq!(session.validated(), 5);
    }

    #[test]
    fn disabled_handle_still_validates() {
        let handle = OracleHandle::disabled();
        let spec = parse_spec(GOOD).unwrap();
        assert_eq!(handle.session(1).validate(&spec), Some(true));
        assert_eq!(handle.stats().hits, 0);
    }
}
