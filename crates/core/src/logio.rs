//! Shared torn-tail-tolerant line-log I/O.
//!
//! Two subsystems persist append-only line-framed logs: the study journal
//! (JSONL cell records) and the persistent oracle cache (fixed-frame verdict
//! records). Both need the same crash-safety discipline, factored here:
//!
//! - **Single-write appends.** Each line is written with one `write` syscall
//!   (payload + `\n` in the same buffer), so a `kill -9` leaves at most one
//!   torn final line — there is no user-space buffer to lose.
//! - **Newline sealing on reopen.** A process killed mid-write leaves a torn
//!   tail with no newline; appending straight after it would weld the next
//!   record onto the fragment and lose both. [`LineLog::append_to`] seals
//!   the file with a newline when the last byte is not one, so the fragment
//!   stays a malformed line of its own.
//! - **Tolerant loading.** [`read_lines`] never fails on content: it returns
//!   every line and flags whether the final line was torn (unterminated).
//!   What counts as *malformed* is the caller's business — the journal
//!   counts JSON parse failures, the cache log counts frame/checksum
//!   rejections — but neither ever aborts a load over a bad line.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, Write};
use std::path::Path;
use std::sync::Mutex;

/// An append-only, line-framed log file handle. Thread-safe: appends from
/// concurrent workers serialize on an internal lock and each lands with a
/// single `write` syscall.
#[derive(Debug)]
pub struct LineLog {
    file: Mutex<File>,
}

impl LineLog {
    /// Creates (truncating) a fresh log.
    pub fn create(path: &Path) -> io::Result<LineLog> {
        Ok(LineLog {
            file: Mutex::new(File::create(path)?),
        })
    }

    /// Reopens an existing log for appending, sealing a torn tail with a
    /// newline so the next append starts on its own line.
    pub fn append_to(path: &Path) -> io::Result<LineLog> {
        let mut file = OpenOptions::new().read(true).append(true).open(path)?;
        let len = file.metadata()?.len();
        if len > 0 {
            let mut last = [0u8; 1];
            file.seek(io::SeekFrom::End(-1))?;
            file.read_exact(&mut last)?;
            if last[0] != b'\n' {
                file.write_all(b"\n")?;
            }
        }
        Ok(LineLog {
            file: Mutex::new(file),
        })
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, File> {
        self.file.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Appends one line (payload must not contain `\n`; the terminator is
    /// added here so payload + newline land in one `write`).
    pub fn append_line(&self, line: &str) -> io::Result<()> {
        let mut buf = Vec::with_capacity(line.len() + 1);
        buf.extend_from_slice(line.as_bytes());
        buf.push(b'\n');
        let mut file = self.locked();
        file.write_all(&buf)?;
        file.flush()
    }

    /// Appends raw bytes without framing — the seam fault injection uses to
    /// plant a torn (short) write, and tests use to forge corrupt tails.
    pub fn append_bytes(&self, bytes: &[u8]) -> io::Result<()> {
        let mut file = self.locked();
        file.write_all(bytes)?;
        file.flush()
    }

    /// Forces everything written so far to stable storage (`fsync`).
    pub fn sync(&self) -> io::Result<()> {
        let mut file = self.locked();
        file.flush()?;
        file.sync_all()
    }
}

/// What [`read_lines`] found in a log file.
#[derive(Debug)]
pub struct LoadedLines {
    /// Every line, in file order — including a torn final line, so callers
    /// can count it as malformed under their own framing rules.
    pub lines: Vec<String>,
    /// Whether the final line was unterminated (a torn tail from a kill).
    pub torn_tail: bool,
}

/// Loads a line log tolerantly: never fails on content, only on I/O.
/// Invalid UTF-8 (media corruption) is converted lossily — the affected
/// line fails the caller's framing check instead of aborting the load.
pub fn read_lines(path: &Path) -> io::Result<LoadedLines> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let text = String::from_utf8_lossy(&bytes);
    let torn_tail = !text.is_empty() && !text.ends_with('\n');
    let lines = text.lines().map(|l| l.to_string()).collect();
    Ok(LoadedLines { lines, torn_tail })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("specrepair-logio-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.log", std::process::id()))
    }

    #[test]
    fn round_trips_lines() {
        let path = tmp("roundtrip");
        let log = LineLog::create(&path).unwrap();
        log.append_line("alpha").unwrap();
        log.append_line("beta").unwrap();
        let loaded = read_lines(&path).unwrap();
        assert_eq!(loaded.lines, vec!["alpha", "beta"]);
        assert!(!loaded.torn_tail);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_reported_and_kept() {
        let path = tmp("torn");
        let log = LineLog::create(&path).unwrap();
        log.append_line("whole").unwrap();
        log.append_bytes(b"half-a-rec").unwrap();
        drop(log);
        let loaded = read_lines(&path).unwrap();
        assert_eq!(loaded.lines, vec!["whole", "half-a-rec"]);
        assert!(loaded.torn_tail, "unterminated tail flagged");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reopen_seals_a_torn_tail() {
        let path = tmp("seal");
        let log = LineLog::create(&path).unwrap();
        log.append_line("whole").unwrap();
        log.append_bytes(b"torn-fragment").unwrap();
        drop(log);
        let log = LineLog::append_to(&path).unwrap();
        log.append_line("resumed").unwrap();
        let loaded = read_lines(&path).unwrap();
        assert_eq!(loaded.lines, vec!["whole", "torn-fragment", "resumed"]);
        assert!(!loaded.torn_tail);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reopen_of_clean_log_does_not_add_blank_lines() {
        let path = tmp("clean-reopen");
        let log = LineLog::create(&path).unwrap();
        log.append_line("one").unwrap();
        drop(log);
        let log = LineLog::append_to(&path).unwrap();
        log.append_line("two").unwrap();
        let loaded = read_lines(&path).unwrap();
        assert_eq!(loaded.lines, vec!["one", "two"]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_log_loads_empty() {
        let path = tmp("empty");
        LineLog::create(&path).unwrap();
        let loaded = read_lines(&path).unwrap();
        assert!(loaded.lines.is_empty());
        assert!(!loaded.torn_tail);
        std::fs::remove_file(&path).ok();
    }
}
