//! Counterexample-driven fault localization (a FLACK-style analysis).
//!
//! The localizer ranks constraint sites of a faulty specification by how
//! likely they are to contain the fault, combining two signals:
//!
//! - **relaxation** (for over-constraint symptoms — a `run … expect 1` that
//!   is unsatisfiable): a site is suspicious if replacing it with `true`
//!   makes the failing command match its expectation;
//! - **vocabulary overlap** (for under-constraint symptoms — a
//!   `check … expect 0` with a counterexample): a site is suspicious in
//!   proportion to how much vocabulary it shares with the violated
//!   assertion.
//!
//! The ranked spans feed ATR's template instantiation and the hybrid
//! *localize-then-fix* pipelines of RQ3.

use mualloy_analyzer::{CommandOutcome, Oracle};
use mualloy_syntax::ast::*;
use mualloy_syntax::walk::{
    collect_sites, idents_in_formula, node_at, replace_node, NodeId, NodeRepl, NodeSite, OwnerKind,
};
use std::collections::BTreeSet;

/// A constraint site ranked by suspiciousness.
#[derive(Debug, Clone, PartialEq)]
pub struct SuspiciousSite {
    /// The node id of the site in the faulty specification.
    pub id: NodeId,
    /// Its source span.
    pub span: Span,
    /// Suspiciousness score (higher = more suspicious).
    pub score: f64,
    /// Owning declaration.
    pub owner: (OwnerKind, usize),
}

/// Fault-localization result.
#[derive(Debug, Clone, Default)]
pub struct Localization {
    /// Sites ranked by descending suspiciousness.
    pub ranked: Vec<SuspiciousSite>,
}

impl Localization {
    /// The most suspicious spans, best first.
    pub fn top_spans(&self, k: usize) -> Vec<Span> {
        self.ranked.iter().take(k).map(|s| s.span).collect()
    }

    /// The most suspicious node ids, best first.
    pub fn top_sites(&self, k: usize) -> Vec<NodeId> {
        self.ranked.iter().take(k).map(|s| s.id).collect()
    }
}

/// The constraint sites the localizer scores: top-level body formulas of
/// facts and predicates, plus the conjuncts of top-level conjunctions.
pub fn constraint_sites(spec: &Spec) -> Vec<NodeSite> {
    let sites = collect_sites(spec);
    sites
        .into_iter()
        .filter(|s| {
            s.is_formula && matches!(s.owner.0, OwnerKind::Fact | OwnerKind::Pred) && s.depth <= 1
        })
        .collect()
}

/// Localizes the fault(s) in a specification whose oracle fails, using a
/// private one-shot oracle. Prefer [`localize_with`] when a shared service
/// is available — Multi-Round re-localizes every round, and relaxation
/// probes repeat across rounds and techniques.
///
/// Returns an empty ranking when the specification satisfies its oracle or
/// cannot be analyzed at all.
pub fn localize(spec: &Spec) -> Localization {
    localize_with(&Oracle::new(), spec)
}

/// [`localize`] against a shared memoizing oracle service.
pub fn localize_with(oracle: &Oracle, spec: &Spec) -> Localization {
    let span = specrepair_trace::span(
        "technique.localization",
        specrepair_trace::Phase::Orchestration,
    );
    let failing = match oracle.failing_commands(spec) {
        Ok(f) if !f.is_empty() => f,
        _ => return Localization::default(),
    };
    let sites = constraint_sites(spec);
    if span.is_active() {
        span.attr_u64("failing", failing.len() as u64);
        span.attr_u64("sites", sites.len() as u64);
    }
    let mut scored: Vec<SuspiciousSite> = sites
        .iter()
        .map(|s| SuspiciousSite {
            id: s.id,
            span: s.span,
            score: 0.0,
            owner: s.owner,
        })
        .collect();

    for outcome in &failing {
        let over_constraint = is_over_constraint(outcome);
        for (idx, site) in sites.iter().enumerate() {
            if over_constraint {
                if relaxation_fixes(oracle, spec, site.id, &outcome.command) {
                    scored[idx].score += 1.0;
                }
            } else if let Some(target_vocab) = command_vocabulary(spec, &outcome.command) {
                if let Some(NodeRepl::Formula(f)) = node_at(spec, site.id) {
                    let mut site_vocab = BTreeSet::new();
                    idents_in_formula(&f, &mut site_vocab);
                    let overlap = jaccard(&site_vocab, &target_vocab);
                    scored[idx].score += 0.5 * overlap;
                    // A conjunct that already *holds* on the counterexample
                    // permitted it: small extra suspicion for under-
                    // constraint symptoms.
                    if let Some(cex) = &outcome.instance {
                        if oracle.evaluate(spec, cex, &f).unwrap_or(false) {
                            scored[idx].score += 0.25 * overlap;
                        }
                    }
                }
            }
        }
    }

    scored.retain(|s| s.score > 0.0);
    scored.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.id.cmp(&b.id))
    });
    Localization { ranked: scored }
}

/// Resolves external byte-span hints to the persistent node ids of the
/// constraint sites they overlap, in hint order without duplicates.
///
/// Location hints cross tool boundaries as byte spans (benchmark edit
/// scripts, `HintedRepair`); this is the one place they are re-anchored to
/// persistent AST identity, so the LLM prompt layer and the mutation
/// engines address the *same* sites the localizer ranked.
pub fn sites_for_spans(spec: &Spec, spans: &[Span]) -> Vec<NodeId> {
    let sites = constraint_sites(spec);
    let mut out = Vec::new();
    for hint in spans {
        for s in &sites {
            if spans_overlap(s.span, *hint) && !out.contains(&s.id) {
                out.push(s.id);
            }
        }
    }
    out
}

/// Whether the failing outcome exhibits an over-constraint symptom.
fn is_over_constraint(outcome: &CommandOutcome) -> bool {
    // Expected satisfiable (instance or counterexample) but nothing found.
    outcome.command.expect == Some(true) && !outcome.sat
}

/// Replaces the site with `true` and re-runs the failing command.
fn relaxation_fixes(oracle: &Oracle, spec: &Spec, site: NodeId, cmd: &Command) -> bool {
    let Some(relaxed) = replace_node(spec, site, NodeRepl::Formula(Formula::truth())) else {
        return false;
    };
    oracle
        .run_command(&relaxed, cmd)
        .map(|o| o.matches_expectation())
        .unwrap_or(false)
}

/// The identifier vocabulary of a command's target body.
fn command_vocabulary(spec: &Spec, cmd: &Command) -> Option<BTreeSet<String>> {
    let mut vocab = BTreeSet::new();
    match &cmd.kind {
        CommandKind::Check(name) => {
            for f in &spec.assert(name)?.body {
                idents_in_formula(f, &mut vocab);
            }
        }
        CommandKind::Run(name) => {
            for f in &spec.pred(name)?.body {
                idents_in_formula(f, &mut vocab);
            }
        }
    }
    Some(vocab)
}

fn jaccard(a: &BTreeSet<String>, b: &BTreeSet<String>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count() as f64;
    let union = a.union(b).count() as f64;
    inter / union
}

/// Scores a localization against known fault spans: the rank (1-based) of
/// the first ranked site whose span overlaps a true fault span, or `None`.
pub fn first_hit_rank(loc: &Localization, fault_spans: &[Span]) -> Option<usize> {
    loc.ranked
        .iter()
        .position(|s| fault_spans.iter().any(|f| spans_overlap(s.span, *f)))
        .map(|i| i + 1)
}

fn spans_overlap(a: Span, b: Span) -> bool {
    a.start < b.end && b.start < a.end
}

#[cfg(test)]
mod tests {
    use super::*;
    use mualloy_syntax::parse_spec;

    #[test]
    fn correct_spec_has_empty_ranking() {
        let spec = parse_spec(
            "sig N { next: lone N } fact { no n: N | n in n.^next } \
             assert A { all n: N | n not in n.next } check A for 3 expect 0",
        )
        .unwrap();
        assert!(localize(&spec).ranked.is_empty());
    }

    #[test]
    fn over_constraint_relaxation_finds_the_culprit() {
        // `no N` makes `run hasNode expect 1` unsat; relaxing it fixes it.
        let spec = parse_spec(
            "sig N {} fact Bad { no N } pred hasNode { some N } run hasNode for 3 expect 1",
        )
        .unwrap();
        let loc = localize(&spec);
        assert!(!loc.ranked.is_empty());
        let top = &loc.ranked[0];
        assert_eq!(top.owner.0, OwnerKind::Fact);
        assert!(top.score >= 1.0);
    }

    #[test]
    fn under_constraint_scores_by_vocabulary() {
        // Missing acyclicity: the buggy fact mentioning `next` should rank
        // above the unrelated fact about `M`.
        let spec = parse_spec(
            "sig N { next: lone N } sig M {} \
             fact AboutNext { all n: N | lone n.next } \
             fact AboutM { lone M } \
             assert NoSelf { all n: N | n not in n.next } \
             check NoSelf for 3 expect 0",
        )
        .unwrap();
        let loc = localize(&spec);
        assert!(!loc.ranked.is_empty());
        let spans: Vec<_> = loc.top_spans(1);
        // The top site should come from AboutNext (which shares n/next/N).
        let about_next = spec.facts[0].body[0].span();
        assert!(spans_overlap(spans[0], about_next));
    }

    #[test]
    fn first_hit_rank_scores_overlap() {
        let loc = Localization {
            ranked: vec![
                SuspiciousSite {
                    id: NodeId(5),
                    span: Span::new(100, 120),
                    score: 2.0,
                    owner: (OwnerKind::Fact, 0),
                },
                SuspiciousSite {
                    id: NodeId(9),
                    span: Span::new(10, 20),
                    score: 1.0,
                    owner: (OwnerKind::Pred, 0),
                },
            ],
        };
        assert_eq!(first_hit_rank(&loc, &[Span::new(15, 17)]), Some(2));
        assert_eq!(first_hit_rank(&loc, &[Span::new(110, 111)]), Some(1));
        assert_eq!(first_hit_rank(&loc, &[Span::new(500, 510)]), None);
    }

    #[test]
    fn constraint_sites_exclude_asserts_and_deep_nodes() {
        let spec = parse_spec(
            "sig A { f: set A } fact { all x: A | x in x.f && some x.f } \
             assert Q { no A } check Q for 3",
        )
        .unwrap();
        let sites = constraint_sites(&spec);
        assert!(!sites.is_empty());
        assert!(sites.iter().all(|s| s.owner.0 != OwnerKind::Assert));
        assert!(sites.iter().all(|s| s.depth <= 1));
    }

    #[test]
    fn top_helpers_truncate() {
        let spec =
            parse_spec("sig N {} fact { no N } pred p { some N } run p for 3 expect 1").unwrap();
        let loc = localize(&spec);
        assert_eq!(loc.top_spans(1).len(), 1.min(loc.ranked.len()));
        assert_eq!(loc.top_sites(100).len(), loc.ranked.len());
    }
}
