//! # specrepair-core
//!
//! The study framework at the heart of the reproduction:
//!
//! - [`technique`]: the [`RepairTechnique`] abstraction, contexts, budgets
//!   and outcomes shared by every tool;
//! - [`localization`]: counterexample-driven fault localization
//!   (relaxation + vocabulary overlap), feeding ATR and the hybrid
//!   pipelines;
//! - [`hybrid`]: the RQ3 compositions — [`hybrid::UnionHybrid`] (sequential
//!   fallback, whose per-spec repair set is the union of its constituents)
//!   and [`hybrid::LocalizeThenFix`] (traditional localization feeding an
//!   LLM-style fixer), plus the overlap statistics behind Table II;
//! - [`oracle`]: the repair-side face of the shared memoizing oracle
//!   service — [`OracleHandle`] (carried by every [`RepairContext`]) and
//!   [`OracleSession`] (central budget charging: one candidate validated =
//!   one budget unit);
//! - [`cancel`]: the cooperative [`CancelToken`] (deadline / explicit
//!   cancel) that lets long-running callers such as `specrepaird` abort a
//!   repair attempt mid-search with a partial outcome.
//!
//! # Example
//!
//! ```
//! use specrepair_core::{RepairContext, RepairBudget, localization::localize};
//! use mualloy_syntax::parse_spec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let faulty = parse_spec(
//!     "sig N {} fact Bad { no N } pred p { some N } run p for 3 expect 1",
//! )?;
//! let ranking = localize(&faulty);
//! assert!(!ranking.ranked.is_empty()); // `no N` is found suspicious
//! let _ctx = RepairContext::new(faulty, RepairBudget::default());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod cancel;
pub mod hybrid;
pub mod localization;
pub mod logio;
pub mod oracle;
pub mod technique;

pub use cancel::CancelToken;
pub use hybrid::{
    overlap_stats, DynamicSelector, HintedRepair, LocalizeThenFix, OverlapStats, UnionHybrid,
};
pub use localization::{
    first_hit_rank, localize, localize_with, sites_for_spans, Localization, SuspiciousSite,
};
pub use logio::{read_lines, LineLog, LoadedLines};
pub use mualloy_analyzer::VerdictStore;
pub use oracle::{CandidateDedup, DedupProbe, DedupStats, OracleHandle, OracleSession};
pub use technique::{
    oracle_accepts, preserves_oracle_surface, repair_is_valid, OutcomeReason, RepairBudget,
    RepairContext, RepairOutcome, RepairTechnique,
};
