//! Ground-truth specifications for the six Alloy4Fun domains.
//!
//! The real Alloy4Fun corpus collects buggy student submissions for guided
//! modelling exercises across six domains; each domain here provides the
//! exercises (known-correct μAlloy specifications with `expect`-annotated
//! commands) from which the faulty corpus entries are manufactured by
//! semantic fault injection (see DESIGN.md §1 for the substitution
//! argument).

/// Per-domain target counts, exactly as in Table I of the paper.
pub const DOMAIN_COUNTS: [(&str, usize); 6] = [
    ("classroom", 999),
    ("cv", 138),
    ("graphs", 283),
    ("lts", 249),
    ("production", 61),
    ("trash", 206),
];

/// The exercises (name, ground-truth source) of a domain.
pub fn exercises(domain: &str) -> &'static [(&'static str, &'static str)] {
    match domain {
        "classroom" => CLASSROOM,
        "cv" => CV,
        "graphs" => GRAPHS,
        "lts" => LTS,
        "production" => PRODUCTION,
        "trash" => TRASH,
        _ => &[],
    }
}

/// All domain names, in the paper's row order.
pub fn domains() -> impl Iterator<Item = &'static str> {
    DOMAIN_COUNTS.iter().map(|(d, _)| *d)
}

const CLASSROOM: &[(&str, &str)] = &[
    (
        "teaching",
        "sig Teacher {}\n\
         sig Student {}\n\
         sig Class {\n  taughtBy: lone Teacher,\n  enrolled: set Student\n}\n\
         fact Teaching {\n\
           all c: Class | some c.enrolled => some c.taughtBy\n\
           all t: Teacher | lone taughtBy.t\n\
         }\n\
         pred someClass { some c: Class | some c.enrolled }\n\
         assert TaughtClasses { all c: Class | no c.enrolled || some c.taughtBy }\n\
         run someClass for 3 expect 1\n\
         check TaughtClasses for 3 expect 0\n\
         pred emptyClassOk { some c: Class | no c.enrolled }\n\
         assert TeacherLoad { all t: Teacher | lone taughtBy.t }\n\
         run emptyClassOk for 3 expect 1\n\
         check TeacherLoad for 3 expect 0\n",
    ),
    (
        "tutoring",
        "abstract sig Person { tutors: set Person }\n\
         sig Teacher extends Person {}\n\
         sig Student extends Person {}\n\
         fact Tutoring {\n\
           all p: Person | p.tutors in Student\n\
           all s: Student | no s.tutors\n\
           no p: Person | p in p.^tutors\n\
         }\n\
         pred hasTutoring { some tutors }\n\
         assert OnlyTeachersTutor { all p: Person | some p.tutors => p in Teacher }\n\
         assert NoSelfTutor { no p: Person | p in p.tutors }\n\
         run hasTutoring for 3 expect 1\n\
         check OnlyTeachersTutor for 3 expect 0\n\
         check NoSelfTutor for 3 expect 0\n\
         pred mixedPeople { some Teacher && some Student }\n\
         run mixedPeople for 3 expect 1\n",
    ),
    (
        "prerequisites",
        "sig Student {}\n\
         sig Course {\n  enrolled: set Student,\n  prereq: set Course\n}\n\
         fact Rules {\n\
           no c: Course | c in c.^prereq\n\
           all c: Course | some c.enrolled\n\
         }\n\
         pred chained { some c: Course | some c.prereq }\n\
         assert NoCycle { no c: Course | c in c.^prereq }\n\
         run chained for 3 expect 1\n\
         check NoCycle for 3 expect 0\n\
         pred isolated { some c: Course | no c.prereq }\n\
         assert NoSelfPrereq { all c: Course | c not in c.prereq }\n\
         run isolated for 3 expect 1\n\
         check NoSelfPrereq for 3 expect 0\n",
    ),
    (
        "projects",
        "sig Student { works: set Project }\n\
         sig Project { supervisor: one Teacher }\n\
         sig Teacher {}\n\
         fact Assignments {\n\
           all p: Project | some works.p\n\
           all s: Student | lone s.works\n\
         }\n\
         pred busy { some s: Student | some s.works }\n\
         assert Supervised { all s: Student, p: s.works | some p.supervisor }\n\
         run busy for 3 expect 1\n\
         check Supervised for 3 expect 0\n\
         pred freeStudent { some s: Student | no s.works }\n\
         assert ProjectHasWorker { all p: Project | some works.p }\n\
         run freeStudent for 3 expect 1\n\
         check ProjectHasWorker for 3 expect 0\n",
    ),
];

const CV: &[(&str, &str)] = &[
    (
        "degrees",
        "sig Person {\n  employer: lone Company,\n  degrees: set Degree\n}\n\
         sig Company {}\n\
         sig Degree { holder: one Person }\n\
         fact Consistent {\n\
           all p: Person, d: Degree | d in p.degrees <=> p = d.holder\n\
         }\n\
         pred employed { some p: Person | some p.employer }\n\
         assert OwnDegrees { all p: Person | p.degrees.holder in p }\n\
         run employed for 3 expect 1\n\
         check OwnDegrees for 3 expect 0\n\
         pred unemployed { some p: Person | no p.employer }\n\
         assert DegreeOwner { all d: Degree | d in d.holder.degrees }\n\
         run unemployed for 3 expect 1\n\
         check DegreeOwner for 3 expect 0\n",
    ),
    (
        "skills",
        "sig Applicant { skills: set Skill }\n\
         sig Skill {}\n\
         sig Job {\n  requires: set Skill,\n  hired: lone Applicant\n}\n\
         fact Hiring {\n\
           all j: Job | all a: j.hired | j.requires in a.skills\n\
         }\n\
         pred filled { some j: Job | some j.hired }\n\
         assert Qualified { all j: Job, a: j.hired | j.requires in a.skills }\n\
         run filled for 3 expect 1\n\
         check Qualified for 3 expect 0\n\
         pred openJob { some j: Job | no j.hired }\n\
         assert HiredHaveSkills { all j: Job | j.requires in j.hired.skills || no j.hired }\n\
         run openJob for 3 expect 1\n\
         check HiredHaveSkills for 3 expect 0\n",
    ),
];

const GRAPHS: &[(&str, &str)] = &[
    (
        "undirected",
        "sig Node { adj: set Node }\n\
         fact Undirected {\n\
           adj = ~adj\n\
           no n: Node | n in n.adj\n\
         }\n\
         pred connectedPair { some n: Node | some n.adj }\n\
         assert Symmetric { all n, m: Node | m in n.adj => n in m.adj }\n\
         run connectedPair for 3 expect 1\n\
         check Symmetric for 3 expect 0\n\
         pred isolatedNode { some n: Node | no n.adj }\n\
         assert AdjIrreflexive { no iden & adj }\n\
         run isolatedNode for 3 expect 1\n\
         check AdjIrreflexive for 3 expect 0\n",
    ),
    (
        "dag",
        "sig Vertex { succ: set Vertex }\n\
         fact Acyclic { no v: Vertex | v in v.^succ }\n\
         pred nontrivial { some succ }\n\
         assert NoSelfLoop { all v: Vertex | v not in v.succ }\n\
         run nontrivial for 3 expect 1\n\
         check NoSelfLoop for 3 expect 0\n\
         pred sink { some v: Vertex | no v.succ }\n\
         assert NoTwoCycle { all v: Vertex | v not in v.succ.succ }\n\
         run sink for 3 expect 1\n\
         check NoTwoCycle for 3 expect 0\n",
    ),
    (
        "forest",
        "sig TNode { parent: lone TNode }\n\
         fact Forest {\n\
           no n: TNode | n in n.^parent\n\
         }\n\
         pred deep { some n: TNode | some n.parent.parent }\n\
         assert RootExists { some TNode => some n: TNode | no n.parent }\n\
         run deep for 3 expect 1\n\
         check RootExists for 3 expect 0\n\
         pred isolatedT { some n: TNode | no n.parent }\n\
         assert NoParentLoop { all n: TNode | n not in n.parent }\n\
         run isolatedT for 3 expect 1\n\
         check NoParentLoop for 3 expect 0\n",
    ),
];

const LTS: &[(&str, &str)] = &[
    (
        "deterministic",
        "sig State { trans: Event -> State }\n\
         sig Event {}\n\
         fact Deterministic {\n\
           all s: State, e: Event | lone e.(s.trans)\n\
         }\n\
         pred canStep { some s: State, e: Event | some e.(s.trans) }\n\
         assert DetCheck { all s: State, e: Event | lone e.(s.trans) }\n\
         run canStep for 3 expect 1\n\
         check DetCheck for 3 expect 0\n\
         pred stuck { some s: State | no s.trans }\n\
         pred branching { some s: State | some e1, e2: Event | e1 != e2 && some e1.(s.trans) && some e2.(s.trans) }\n\
         run stuck for 3 expect 1\n\
         run branching for 3 expect 1\n",
    ),
    (
        "reachability",
        "sig St { next: set St }\n\
         one sig Initial { s0: one St }\n\
         fact Reach {\n\
           St in Initial.s0.*next\n\
         }\n\
         pred moves { some next }\n\
         assert AllReachable { all s: St | s in Initial.s0.*next }\n\
         run moves for 3 expect 1\n\
         check AllReachable for 3 expect 0\n\
         pred terminal { some s: St | no s.next }\n\
         pred chainOfTwo { some s: St | some s.next && s not in s.next }\n\
         run terminal for 3 expect 1\n\
         run chainOfTwo for 3 expect 1\n",
    ),
];

const PRODUCTION: &[(&str, &str)] = &[
    (
        "assembly",
        "sig Product { parts: set Component }\n\
         sig Component { madeBy: lone Machine }\n\
         sig Machine {}\n\
         fact Production {\n\
           all p: Product | some p.parts\n\
           all c: Component | some c.madeBy\n\
         }\n\
         pred builds { some Product }\n\
         assert AllMade { all p: Product, c: p.parts | some c.madeBy }\n\
         run builds for 3 expect 1\n\
         check AllMade for 3 expect 0\n\
         pred sharedMachine { some m: Machine | some madeBy.m }\n\
         assert ComponentsHaveMakers { all c: Component | some c.madeBy }\n\
         run sharedMachine for 3 expect 1\n\
         check ComponentsHaveMakers for 3 expect 0\n",
    ),
    (
        "line",
        "sig Station { nextS: lone Station }\n\
         fact Line {\n\
           no s: Station | s in s.^nextS\n\
         }\n\
         pred longLine { some s: Station | some s.nextS }\n\
         assert NoLoop { all s: Station | s not in s.nextS }\n\
         run longLine for 3 expect 1\n\
         check NoLoop for 3 expect 0\n\
         pred endStation { some s: Station | no s.nextS }\n\
         assert NoTwoCycleLine { all s: Station | s not in s.nextS.nextS }\n\
         run endStation for 3 expect 1\n\
         check NoTwoCycleLine for 3 expect 0\n",
    ),
];

const TRASH: &[(&str, &str)] = &[
    (
        "protection",
        "sig File {}\n\
         one sig Trash { trashed: set File }\n\
         one sig Protection { protected: set File }\n\
         fact Rules {\n\
           no Trash.trashed & Protection.protected\n\
         }\n\
         pred somethingDeleted { some Trash.trashed }\n\
         assert ProtectedSafe { all f: Protection.protected | f not in Trash.trashed }\n\
         run somethingDeleted for 3 expect 1\n\
         check ProtectedSafe for 3 expect 0\n\
         pred someSafe { some f: File | f not in Trash.trashed }\n\
         assert TrashedUnprotected { all f: Trash.trashed | f not in Protection.protected }\n\
         run someSafe for 3 expect 1\n\
         check TrashedUnprotected for 3 expect 0\n",
    ),
    (
        "filesystem",
        "sig Dir { contains: set FileObj }\n\
         sig FileObj { owner: lone Dir }\n\
         fact FS {\n\
           all f: FileObj, d: Dir | f in d.contains <=> d = f.owner\n\
           all f: FileObj | some f.owner\n\
         }\n\
         pred populated { some contains }\n\
         assert Owned { all f: FileObj | some contains.f }\n\
         run populated for 3 expect 1\n\
         check Owned for 3 expect 0\n\
         pred emptyDir { some d: Dir | no d.contains }\n\
         assert OneOwner { all f: FileObj | lone contains.f }\n\
         run emptyDir for 3 expect 1\n\
         check OneOwner for 3 expect 0\n",
    ),
];

#[cfg(test)]
mod tests {
    use super::*;
    use mualloy_analyzer::Analyzer;
    use mualloy_syntax::{check_spec, parse_spec};

    #[test]
    fn counts_match_paper_table() {
        let total: usize = DOMAIN_COUNTS.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 1936);
    }

    #[test]
    fn every_exercise_parses_checks_and_satisfies_its_oracle() {
        for domain in domains() {
            let exs = exercises(domain);
            assert!(!exs.is_empty(), "domain {domain} has no exercises");
            for (name, src) in exs {
                let spec =
                    parse_spec(src).unwrap_or_else(|e| panic!("{domain}/{name} parse error: {e}"));
                let errs = check_spec(&spec);
                assert!(errs.is_empty(), "{domain}/{name} check errors: {errs:?}");
                assert!(!spec.commands.is_empty(), "{domain}/{name} has no commands");
                assert!(
                    spec.commands.iter().all(|c| c.expect.is_some()),
                    "{domain}/{name} has unannotated commands"
                );
                let analyzer = Analyzer::new(spec);
                assert!(
                    analyzer.satisfies_oracle().unwrap_or(false),
                    "{domain}/{name} violates its own oracle"
                );
            }
        }
    }

    #[test]
    fn unknown_domain_is_empty() {
        assert!(exercises("nope").is_empty());
    }
}
