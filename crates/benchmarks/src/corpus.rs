//! Corpus generation: manufacturing the faulty benchmark entries.

use mualloy_analyzer::Oracle;
use mualloy_syntax::walk::strip_spec_spans;
use mualloy_syntax::{Span, Spec};
use specrepair_mutation::{inject_fault_with, InjectorConfig};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};

/// Which benchmark a problem belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenchmarkId {
    /// The Alloy4Fun corpus (1,936 specs across six domains).
    Alloy4Fun,
    /// The ARepair corpus (38 specs across twelve problems).
    ARepair,
}

impl BenchmarkId {
    /// Display label used in tables.
    pub fn label(&self) -> &'static str {
        match self {
            BenchmarkId::Alloy4Fun => "A4F",
            BenchmarkId::ARepair => "ARepair",
        }
    }
}

/// One faulty benchmark entry: the repair problem handed to techniques,
/// plus the ground truth and fault metadata the *metrics layer* uses.
#[derive(Debug, Clone)]
pub struct RepairProblem {
    /// Stable identifier, e.g. `classroom/tutoring/17`.
    pub id: String,
    /// Owning benchmark.
    pub benchmark: BenchmarkId,
    /// Domain (A4F) or problem (ARepair) name.
    pub domain: String,
    /// The ground-truth specification.
    pub truth: Spec,
    /// Ground-truth source text.
    pub truth_source: String,
    /// The faulty specification given to repair techniques.
    pub faulty: Spec,
    /// Faulty source text.
    pub faulty_source: String,
    /// True fault locations (spans into `faulty_source`'s original truth
    /// text; both sides share the same layout as mutations preserve spans).
    pub fault_spans: Vec<Span>,
    /// The truth→fault edit script (mutation descriptions).
    pub edits: Vec<String>,
}

/// Generates `count` faulty variants for one domain from its exercises.
///
/// Seeds run deterministically from 0; duplicates (per exercise, up to
/// spans) are skipped while fresh shapes remain, then reused to guarantee
/// the exact target count.
pub fn generate_domain(
    benchmark: BenchmarkId,
    domain: &str,
    exercises: &[(&str, &str)],
    count: usize,
) -> Vec<RepairProblem> {
    assert!(!exercises.is_empty(), "domain {domain} needs exercises");
    let parsed: Vec<(String, Spec, String)> = exercises
        .iter()
        .map(|(name, src)| {
            let spec = mualloy_syntax::parse_spec(src)
                .unwrap_or_else(|e| panic!("ground truth {domain}/{name}: {e}"));
            ((*name).to_string(), spec, (*src).to_string())
        })
        .collect();

    let mut out: Vec<RepairProblem> = Vec::with_capacity(count);
    let mut seen: HashSet<u64> = HashSet::new();
    let config = InjectorConfig::default();
    // One memo table for the whole domain: different seeds frequently
    // re-derive structurally identical mutants, whose observability check
    // then costs a lookup instead of a solve. Solve cold: corpus generation
    // is outside any study run, so its checks must not show up as
    // incremental-engine activity that no published stats account for.
    let oracle = Oracle::new();
    oracle.disable_incremental();
    let max_seed = (count as u64) * 50 + 64;
    let mut seed = 0u64;
    while out.len() < count && seed < max_seed {
        let (name, truth, truth_source) = &parsed[(seed as usize) % parsed.len()];
        if let Some(fault) = inject_fault_with(&oracle, truth, seed, config) {
            let mut h = DefaultHasher::new();
            name.hash(&mut h);
            strip_spec_spans(&fault.faulty).hash(&mut h);
            if seen.insert(h.finish()) {
                let faulty_source = mualloy_syntax::print_spec(&fault.faulty);
                out.push(RepairProblem {
                    id: format!("{domain}/{name}/{}", out.len()),
                    benchmark,
                    domain: domain.to_string(),
                    truth: truth.clone(),
                    truth_source: truth_source.clone(),
                    faulty: fault.faulty,
                    faulty_source,
                    fault_spans: fault.fault_spans,
                    edits: fault.edits,
                });
            }
        }
        seed += 1;
    }
    // Exhausted the fresh-shape space: refill with clones so domain counts
    // stay exact (the real corpus also contains duplicate submissions).
    let mut i = 0;
    while out.len() < count && !out.is_empty() {
        let mut clone = out[i % out.len()].clone();
        clone.id = format!("{domain}/dup/{}", out.len());
        out.push(clone);
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXS: &[(&str, &str)] = &[(
        "toy",
        "sig N { next: lone N }\n\
         fact Acyclic { no n: N | n in n.^next }\n\
         pred hasEdge { some next }\n\
         assert NoSelf { all n: N | n not in n.next }\n\
         run hasEdge for 3 expect 1\n\
         check NoSelf for 3 expect 0\n",
    )];

    #[test]
    fn generates_exact_count() {
        let problems = generate_domain(BenchmarkId::Alloy4Fun, "toy", EXS, 12);
        assert_eq!(problems.len(), 12);
        for (i, p) in problems.iter().enumerate() {
            assert!(p.id.contains("toy"), "{}", p.id);
            assert_eq!(p.benchmark, BenchmarkId::Alloy4Fun);
            assert!(!p.edits.is_empty());
            assert_eq!(p.edits.len(), p.fault_spans.len());
            if i > 0 {
                // ids unique
                assert_ne!(problems[i - 1].id, p.id);
            }
        }
    }

    #[test]
    fn faulty_specs_violate_their_oracle() {
        let problems = generate_domain(BenchmarkId::ARepair, "toy", EXS, 6);
        for p in &problems {
            let analyzer = mualloy_analyzer::Analyzer::new(p.faulty.clone());
            assert!(
                !analyzer.satisfies_oracle().unwrap_or(true),
                "{} should be observably faulty",
                p.id
            );
            let truth_analyzer = mualloy_analyzer::Analyzer::new(p.truth.clone());
            assert!(truth_analyzer.satisfies_oracle().unwrap());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_domain(BenchmarkId::Alloy4Fun, "toy", EXS, 8);
        let b = generate_domain(BenchmarkId::Alloy4Fun, "toy", EXS, 8);
        let srcs_a: Vec<_> = a.iter().map(|p| p.faulty_source.clone()).collect();
        let srcs_b: Vec<_> = b.iter().map(|p| p.faulty_source.clone()).collect();
        assert_eq!(srcs_a, srcs_b);
    }

    #[test]
    fn variants_are_mostly_distinct() {
        let problems = generate_domain(BenchmarkId::Alloy4Fun, "toy", EXS, 10);
        let distinct: HashSet<_> = problems.iter().map(|p| p.faulty_source.clone()).collect();
        assert!(
            distinct.len() >= 8,
            "only {} distinct of 10",
            distinct.len()
        );
    }

    #[test]
    fn benchmark_labels() {
        assert_eq!(BenchmarkId::Alloy4Fun.label(), "A4F");
        assert_eq!(BenchmarkId::ARepair.label(), "ARepair");
    }
}
