//! # specrepair-benchmarks
//!
//! Native reproductions of the study's two benchmark corpora:
//!
//! - **Alloy4Fun** ([`alloy4fun`]): 1,936 faulty specifications across six
//!   domains (classroom 999, cv 138, graphs 283, lts 249, production 61,
//!   trash 206);
//! - **ARepair** ([`arepair`]): 38 faulty specifications across twelve
//!   problems (addr, arr, balancedBSt, bempl, cd, ctree, dll, farmer, fsm,
//!   grade, other, student).
//!
//! Each corpus entry pairs a hand-written ground-truth μAlloy specification
//! with a seeded, semantically-observable injected fault (DESIGN.md §1
//! documents why this substitutes faithfully for the human-written buggy
//! submissions of the original corpora). A `scale` parameter shrinks the
//! per-domain counts proportionally for tests and benchmarks.
//!
//! # Example
//!
//! ```
//! use specrepair_benchmarks::{alloy4fun, arepair};
//!
//! let small = alloy4fun(0.01); // ~1% of the full corpus
//! assert!(!small.is_empty());
//! let full_arepair = arepair(1.0);
//! assert_eq!(full_arepair.len(), 38);
//! ```

#![warn(missing_docs)]

pub mod a4f;
pub mod arepair_bench;
pub mod corpus;

pub use corpus::{generate_domain, BenchmarkId, RepairProblem};

/// Scales a full-corpus count down, keeping at least one entry.
fn scaled(count: usize, scale: f64) -> usize {
    ((count as f64) * scale).round().max(1.0) as usize
}

/// Generates the Alloy4Fun corpus at the given scale (1.0 = the paper's
/// 1,936 specifications).
pub fn alloy4fun(scale: f64) -> Vec<RepairProblem> {
    let mut out = Vec::new();
    for (domain, count) in a4f::DOMAIN_COUNTS {
        out.extend(generate_domain(
            BenchmarkId::Alloy4Fun,
            domain,
            a4f::exercises(domain),
            scaled(count, scale),
        ));
    }
    out
}

/// Generates the ARepair corpus at the given scale (1.0 = the paper's 38
/// specifications).
pub fn arepair(scale: f64) -> Vec<RepairProblem> {
    let mut out = Vec::new();
    for (problem, count) in arepair_bench::PROBLEM_COUNTS {
        let src = arepair_bench::ground_truth(problem).expect("known problem");
        out.extend(generate_domain(
            BenchmarkId::ARepair,
            problem,
            &[(problem, src)],
            scaled(count, scale),
        ));
    }
    out
}

/// Both corpora at the given scale, A4F first (the study's spec universe of
/// 1,974 at scale 1.0).
pub fn full_study(scale: f64) -> Vec<RepairProblem> {
    let mut out = alloy4fun(scale);
    out.extend(arepair(scale));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arepair_full_scale_has_38_specs() {
        let problems = arepair(1.0);
        assert_eq!(problems.len(), 38);
        let student: Vec<_> = problems.iter().filter(|p| p.domain == "student").collect();
        assert_eq!(student.len(), 19);
    }

    #[test]
    fn a4f_scaled_respects_proportions() {
        let problems = alloy4fun(0.02);
        let classroom = problems.iter().filter(|p| p.domain == "classroom").count();
        let production = problems.iter().filter(|p| p.domain == "production").count();
        assert_eq!(classroom, 20); // 999 * 0.02 ≈ 20
        assert_eq!(production, 1); // 61 * 0.02 ≈ 1
    }

    #[test]
    fn every_generated_problem_is_well_formed_and_faulty() {
        for p in full_study(0.005) {
            assert!(mualloy_syntax::check_spec(&p.faulty).is_empty(), "{}", p.id);
            let analyzer = mualloy_analyzer::Analyzer::new(p.faulty.clone());
            assert!(!analyzer.satisfies_oracle().unwrap_or(true), "{}", p.id);
        }
    }
}
