//! Ground-truth specifications for the 12 problems of the ARepair
//! benchmark (Wang, Sullivan, Khurshid, ICSE'19 companion).
//!
//! Six problems originate from the Alloy distribution (addr, cd, ctree,
//! farmer, bempl, other) and six from graduate assignments (arr,
//! balancedBST, dll, fsm, grade, student). The per-problem counts below
//! match the paper's Table I rows exactly (38 specs in total).

/// Per-problem target counts, as in Table I.
pub const PROBLEM_COUNTS: [(&str, usize); 12] = [
    ("addr", 1),
    ("arr", 2),
    ("balancedBSt", 3),
    ("bempl", 1),
    ("cd", 2),
    ("ctree", 1),
    ("dll", 4),
    ("farmer", 1),
    ("fsm", 2),
    ("grade", 1),
    ("other", 1),
    ("student", 19),
];

/// The ground-truth source of a problem.
pub fn ground_truth(problem: &str) -> Option<&'static str> {
    Some(match problem {
        "addr" => ADDR,
        "arr" => ARR,
        "balancedBSt" => BALANCED_BST,
        "bempl" => BEMPL,
        "cd" => CD,
        "ctree" => CTREE,
        "dll" => DLL,
        "farmer" => FARMER,
        "fsm" => FSM,
        "grade" => GRADE,
        "other" => OTHER,
        "student" => STUDENT,
        _ => return None,
    })
}

/// All problem names, in the paper's row order.
pub fn problems() -> impl Iterator<Item = &'static str> {
    PROBLEM_COUNTS.iter().map(|(p, _)| *p)
}

const ADDR: &str = "sig Name {}\n\
    sig Addr {}\n\
    one sig Book { addr: Name -> lone Addr }\n\
    fact SomeEntries { some Book.addr }\n\
    pred hasEntry { some Book.addr }\n\
    assert LoneTarget { all n: Name | lone n.(Book.addr) }\n\
    run hasEntry for 3 expect 1\n\
    check LoneTarget for 3 expect 0\n\
    pred unmapped { some n: Name | no n.(Book.addr) }\n\
    run unmapped for 3 expect 1\n\n";

const ARR: &str = "sig Idx { nextI: lone Idx }\n\
    sig Val {}\n\
    one sig Arr { at: Idx -> lone Val }\n\
    fact ArrayShape {\n\
      no i: Idx | i in i.^nextI\n\
    }\n\
    pred filled { some Arr.at }\n\
    assert Functional { all i: Idx | lone i.(Arr.at) }\n\
    run filled for 3 expect 1\n\
    check Functional for 3 expect 0\n\
    pred emptySlot { some i: Idx | no i.(Arr.at) }\n\
    assert NoIdxCycle { no i: Idx | i in i.^nextI }\n\
    run emptySlot for 3 expect 1\n\
    check NoIdxCycle for 3 expect 0\n\n";

const BALANCED_BST: &str = "sig BNode { left: lone BNode, right: lone BNode }\n\
    fact BST {\n\
      no n: BNode | n in n.^(left + right)\n\
      all n: BNode | no n.left & n.right\n\
    }\n\
    pred nontrivial { some n: BNode | some n.left || some n.right }\n\
    assert Distinct { all n: BNode | no n.left & n.right }\n\
    assert NoCycle { no n: BNode | n in n.^(left + right) }\n\
    run nontrivial for 3 expect 1\n\
    check Distinct for 3 expect 0\n\
    check NoCycle for 3 expect 0\n\
    pred leaf { some n: BNode | no n.left && no n.right }\n\
    run leaf for 3 expect 1\n\n";

const BEMPL: &str = "sig Employee { boss: lone Employee }\n\
    fact Hierarchy {\n\
      no e: Employee | e in e.^boss\n\
    }\n\
    pred managed { some e: Employee | some e.boss }\n\
    assert NoSelfBoss { all e: Employee | e not in e.boss }\n\
    run managed for 3 expect 1\n\
    check NoSelfBoss for 3 expect 0\n\
    pred topBoss { some e: Employee | no e.boss }\n\
    run topBoss for 3 expect 1\n\n";

const CD: &str = "sig ClassD { ext: lone ClassD, methods: set Method }\n\
    sig Method {}\n\
    fact Inheritance {\n\
      no c: ClassD | c in c.^ext\n\
      all m: Method | lone methods.m\n\
    }\n\
    pred inherits { some c: ClassD | some c.ext }\n\
    assert NoCircular { no c: ClassD | c in c.^ext }\n\
    run inherits for 3 expect 1\n\
    check NoCircular for 3 expect 0\n\
    pred rootClass { some c: ClassD | no c.ext }\n\
    assert MethodOwner { all m: Method | lone methods.m }\n\
    run rootClass for 3 expect 1\n\
    check MethodOwner for 3 expect 0\n\n";

const CTREE: &str = "abstract sig Color {}\n\
    one sig Red extends Color {}\n\
    one sig Black extends Color {}\n\
    sig CNode { color: one Color, cparent: lone CNode }\n\
    fact CTree {\n\
      no n: CNode | n in n.^cparent\n\
      all n: CNode | n.color in Red => no n.cparent.color & Red\n\
    }\n\
    pred colored { some n: CNode | n.color in Red }\n\
    assert NoRedRed { all n: CNode | (n.color in Red && some n.cparent) => n.cparent.color not in Red }\n\
    run colored for 3 expect 1\n\
    check NoRedRed for 3 expect 0\n\
    pred blackNode { some n: CNode | n.color in Black }\n\
    assert RootsExist { some CNode => some n: CNode | no n.cparent }\n\
    run blackNode for 3 expect 1\n\
    check RootsExist for 3 expect 0\n\n";

const DLL: &str = "sig DNode { dnext: lone DNode, dprev: lone DNode }\n\
    fact DLL {\n\
      dprev = ~dnext\n\
      no n: DNode | n in n.^dnext\n\
    }\n\
    pred linked { some dnext }\n\
    assert Inverse { all n, m: DNode | m in n.dnext <=> n in m.dprev }\n\
    assert NoDCycle { no n: DNode | n in n.^dnext }\n\
    run linked for 3 expect 1\n\
    check Inverse for 3 expect 0\n\
    check NoDCycle for 3 expect 0\n\
    pred endNode { some n: DNode | no n.dnext }\n\
    run endNode for 3 expect 1\n\n";

const FARMER: &str = "abstract sig Object {}\n\
    one sig Farmer, Wolf, Goat, Cabbage extends Object {}\n\
    sig Crossing { near: set Object, far: set Object }\n\
    fact States {\n\
      all c: Crossing | c.near + c.far = Object\n\
      all c: Crossing | no c.near & c.far\n\
      all c: Crossing | (Wolf + Goat in c.near) => Farmer in c.near\n\
      all c: Crossing | (Wolf + Goat in c.far) => Farmer in c.far\n\
      all c: Crossing | (Goat + Cabbage in c.near) => Farmer in c.near\n\
      all c: Crossing | (Goat + Cabbage in c.far) => Farmer in c.far\n\
    }\n\
    pred solved { some c: Crossing | Object in c.far }\n\
    assert GoatSafe { all c: Crossing | (Wolf + Goat in c.near) => Farmer in c.near }\n\
    run solved for 3 expect 1\n\
    check GoatSafe for 3 expect 0\n\
    pred startState { some c: Crossing | Object in c.near }\n\
    run startState for 3 expect 1\n\n";

const FSM: &str = "abstract sig FState { fnext: set FState }\n\
    one sig StartS extends FState {}\n\
    one sig StopS extends FState {}\n\
    sig MidS extends FState {}\n\
    fact Machine {\n\
      no StopS.fnext\n\
      FState in StartS.*fnext\n\
    }\n\
    pred running { some StartS.fnext }\n\
    assert Reachable { all s: FState | s in StartS.*fnext }\n\
    run running for 3 expect 1\n\
    check Reachable for 3 expect 0\n\
    pred terminalMid { some s: MidS | no s.fnext }\n\
    run terminalMid for 3 expect 1\n\n";

const GRADE: &str = "sig StudentG {}\n\
    abstract sig Grade {}\n\
    one sig GA, GB, GC extends Grade {}\n\
    sig Assignment { score: StudentG -> lone Grade }\n\
    fact Grading {\n\
      all a: Assignment | some a.score\n\
    }\n\
    pred graded { some a: Assignment | some a.score }\n\
    assert OneGrade { all a: Assignment, s: StudentG | lone s.(a.score) }\n\
    run graded for 3 expect 1\n\
    check OneGrade for 3 expect 0\n\
    pred ungraded { some s: StudentG, a: Assignment | no s.(a.score) }\n\
    run ungraded for 3 expect 1\n\n";

const OTHER: &str = "sig Item { rel: set Item }\n\
    fact OtherFact {\n\
      rel = ~rel\n\
      no iden & rel\n\
    }\n\
    pred related { some rel }\n\
    assert Irreflexive { all i: Item | i not in i.rel }\n\
    run related for 3 expect 1\n\
    check Irreflexive for 3 expect 0\n\
    pred pairRelated { some disj i, j: Item | j in i.rel }\n\
    run pairRelated for 3 expect 1\n\n";

const STUDENT: &str = "sig UserS { followsS: set UserS, blockedS: set UserS }\n\
    fact Network {\n\
      no u: UserS | u in u.followsS\n\
      all u: UserS | no u.followsS & u.blockedS\n\
    }\n\
    pred active { some followsS }\n\
    assert NotBlockedFollow { all u: UserS, v: u.followsS | v not in u.blockedS }\n\
    assert NoSelfFollow { no u: UserS | u in u.followsS }\n\
    run active for 3 expect 1\n\
    check NotBlockedFollow for 3 expect 0\n\
    check NoSelfFollow for 3 expect 0\n\
    pred lonely { some u: UserS | no u.followsS && no u.blockedS }\n\
    run lonely for 3 expect 1\n\n";

#[cfg(test)]
mod tests {
    use super::*;
    use mualloy_analyzer::Analyzer;
    use mualloy_syntax::{check_spec, parse_spec};

    #[test]
    fn counts_match_paper_table() {
        let total: usize = PROBLEM_COUNTS.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 38);
        assert_eq!(PROBLEM_COUNTS.len(), 12);
    }

    #[test]
    fn every_problem_parses_checks_and_satisfies_its_oracle() {
        for p in problems() {
            let src = ground_truth(p).unwrap();
            let spec = parse_spec(src).unwrap_or_else(|e| panic!("{p} parse error: {e}"));
            let errs = check_spec(&spec);
            assert!(errs.is_empty(), "{p} check errors: {errs:?}");
            assert!(spec.commands.iter().all(|c| c.expect.is_some()));
            let analyzer = Analyzer::new(spec);
            assert!(
                analyzer.satisfies_oracle().unwrap_or(false),
                "{p} violates its own oracle"
            );
        }
    }

    #[test]
    fn unknown_problem_is_none() {
        assert!(ground_truth("nope").is_none());
    }
}
