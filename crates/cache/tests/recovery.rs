//! Property tests for cache-log recovery (DESIGN.md §14): under any
//! prefix truncation (a kill mid-write) or single-byte corruption (media
//! damage), recovery yields a *consistent* cache — every recovered entry
//! was written, with a byte-identical verdict — and never panics.

use mualloy_analyzer::VerdictStore;
use mualloy_syntax::Fingerprint;
use proptest::prelude::*;
use proptest::test_runner::ProptestConfig;
use specrepair_cache::PersistentCache;
use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn tmp_dir(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "specrepair-cache-prop-{name}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Writes `n` deterministic entries derived from `seed`, returning the map
/// and the raw log bytes after a clean seal.
fn written_log(dir: &PathBuf, seed: u64, n: usize) -> (HashMap<u128, bool>, Vec<u8>) {
    fs::remove_dir_all(dir).ok();
    let cache = PersistentCache::open(dir).unwrap();
    let mut written = HashMap::new();
    for i in 0..n {
        let key = (seed as u128).wrapping_mul(0x1000_0000_0000_0061) ^ ((i as u128) << 3);
        let verdict = (seed ^ i as u64).count_ones().is_multiple_of(2);
        cache.record(Fingerprint(key), verdict);
        written.insert(key, verdict);
    }
    cache.seal();
    drop(cache);
    let bytes = fs::read(dir.join("verdicts.log")).unwrap();
    (written, bytes)
}

/// Opens the cache over damaged log bytes and checks consistency:
/// recovered ⊆ written, verdicts byte-identical, no panic.
fn check_recovery(dir: &Path, written: &HashMap<u128, bool>, damaged: &[u8]) -> Result<(), String> {
    fs::write(dir.join("verdicts.log"), damaged).map_err(|e| e.to_string())?;
    let cache = PersistentCache::open(dir).unwrap();
    for (&key, &verdict) in written {
        match cache.lookup(Fingerprint(key)) {
            None => {} // lost to the damage: allowed
            Some(v) if v == verdict => {}
            Some(v) => {
                return Err(format!(
                    "entry {key:#x} recovered with verdict {v}, written {verdict}"
                ))
            }
        }
    }
    let stats = cache.stats();
    if stats.live_entries > written.len() as u64 {
        return Err(format!(
            "recovered {} entries, only {} were written",
            stats.live_entries,
            written.len()
        ));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any prefix truncation of the log (a kill mid-write persists an
    /// arbitrary prefix) recovers to a consistent subset.
    #[test]
    fn prefix_truncation_recovers_consistently(
        seed in any::<u64>(),
        n in 1usize..24,
        cut_ppm in 0u32..1_000_000,
    ) {
        let dir = tmp_dir("truncate");
        let (written, bytes) = written_log(&dir, seed, n);
        let cut = (bytes.len() as u64 * cut_ppm as u64 / 1_000_000) as usize;
        let res = check_recovery(&dir, &written, &bytes[..cut]);
        fs::remove_dir_all(&dir).ok();
        prop_assert!(res.is_ok(), "{}", res.unwrap_err());
    }

    /// Any single-byte corruption anywhere in the log quarantines at most
    /// the damaged record; everything else recovers byte-identically.
    #[test]
    fn single_byte_corruption_recovers_consistently(
        seed in any::<u64>(),
        n in 1usize..24,
        pos_ppm in 0u32..1_000_000,
        flip in 1u8..=255,
    ) {
        let dir = tmp_dir("flip");
        let (written, bytes) = written_log(&dir, seed, n);
        let mut damaged = bytes.clone();
        let pos = (damaged.len() as u64 * pos_ppm as u64 / 1_000_000) as usize;
        let pos = pos.min(damaged.len() - 1);
        damaged[pos] ^= flip;
        let res = check_recovery(&dir, &written, &damaged);
        let quarantined_ok = {
            // At most 2 records can be lost (a flip to '\n' splits one
            // line in two, damaging only that record either way).
            let cache = PersistentCache::open(&dir).unwrap();
            cache.stats().live_entries + 1 >= written.len() as u64 - 1
        };
        fs::remove_dir_all(&dir).ok();
        prop_assert!(res.is_ok(), "{}", res.unwrap_err());
        prop_assert!(quarantined_ok, "more than one record lost to one byte");
    }
}
