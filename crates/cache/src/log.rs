//! The log-structured verdict file: append-only records over the shared
//! [`LineLog`] discipline, torn-tail-tolerant recovery, and kill-safe
//! compaction (write a fresh segment, fsync, atomic rename).
//!
//! Every I/O path is deterministic-chaos-capable: a [`DiskFaultPlan`]
//! injected under the append seam produces write errors, short (torn)
//! writes and bit-flip corruption on schedule, so recovery code is
//! exercised by tests and chaos CI rather than only by real disk failures.

use std::collections::HashMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use mualloy_syntax::Fingerprint;
use parking_lot::Mutex;
use specrepair_core::logio::{read_lines, LineLog};
use specrepair_faults::{DiskFaultKind, DiskFaultPlan};
use specrepair_trace::Phase;

use crate::record;

/// File name of the live log inside a cache directory.
pub const LOG_FILE: &str = "verdicts.log";

/// File name of the in-progress compaction segment. A crash can leave it
/// behind in any state; recovery ignores and deletes it — only the atomic
/// rename onto [`LOG_FILE`] ever publishes a segment.
pub const TMP_FILE: &str = "verdicts.log.tmp";

/// What recovery found in an existing log.
#[derive(Debug)]
pub struct Recovered {
    /// All valid entries, in file order (duplicates resolved last-wins;
    /// a fingerprint only ever maps to one verdict, so order is moot).
    pub entries: HashMap<u128, bool>,
    /// Lines rejected by the frame/checksum codec (torn tails, bit flips,
    /// foreign garbage) — skipped and counted, never fatal.
    pub quarantined: u64,
    /// Total lines seen (valid + quarantined).
    pub lines: u64,
}

/// The on-disk verdict log: one [`LineLog`] handle guarded for swap-out by
/// compaction, plus the fault-injection seam and its counters.
pub struct VerdictLog {
    dir: PathBuf,
    log: Mutex<LineLog>,
    plan: DiskFaultPlan,
    /// Per-append fault schedule index.
    appends: AtomicU64,
    /// Injected disk faults, per kind (`DiskFaultKind::ALL` order).
    injected: [AtomicU64; 3],
    /// Lines currently in the file (valid or not).
    disk_lines: AtomicU64,
    /// Valid records currently in the file.
    disk_good: AtomicU64,
}

impl VerdictLog {
    fn live_path(dir: &Path) -> PathBuf {
        dir.join(LOG_FILE)
    }

    fn tmp_path(dir: &Path) -> PathBuf {
        dir.join(TMP_FILE)
    }

    /// Opens (creating the directory and log as needed) and recovers the
    /// live log. A leftover compaction segment is deleted unread: it was
    /// never published, so the live log is the only truth.
    pub fn open(dir: &Path, plan: DiskFaultPlan) -> io::Result<(VerdictLog, Recovered)> {
        let _span = specrepair_trace::span("persist.recover", Phase::OracleCache);
        fs::create_dir_all(dir)?;
        fs::remove_file(Self::tmp_path(dir)).ok();
        let live = Self::live_path(dir);
        let recovered = if live.exists() {
            let loaded = read_lines(&live)?;
            let mut entries = HashMap::new();
            let mut quarantined = 0u64;
            let mut lines = 0u64;
            for line in &loaded.lines {
                lines += 1;
                match record::decode(line) {
                    Some((key, verdict)) => {
                        entries.insert(key.0, verdict);
                    }
                    None => quarantined += 1,
                }
            }
            Recovered {
                entries,
                quarantined,
                lines,
            }
        } else {
            Recovered {
                entries: HashMap::new(),
                quarantined: 0,
                lines: 0,
            }
        };
        let log = if live.exists() {
            LineLog::append_to(&live)?
        } else {
            LineLog::create(&live)?
        };
        let verdict_log = VerdictLog {
            dir: dir.to_path_buf(),
            log: Mutex::new(log),
            plan,
            appends: AtomicU64::new(0),
            injected: Default::default(),
            disk_lines: AtomicU64::new(recovered.lines),
            disk_good: AtomicU64::new(recovered.lines - recovered.quarantined),
        };
        Ok((verdict_log, recovered))
    }

    fn count_injected(&self, kind: DiskFaultKind) {
        self.injected[kind as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Count injected so far for one kind.
    pub fn injected(&self, kind: DiskFaultKind) -> u64 {
        self.injected[kind as usize].load(Ordering::Relaxed)
    }

    /// Lines currently in the file (valid or not).
    pub fn disk_lines(&self) -> u64 {
        self.disk_lines.load(Ordering::Relaxed)
    }

    /// Valid records currently in the file.
    pub fn disk_good(&self) -> u64 {
        self.disk_good.load(Ordering::Relaxed)
    }

    /// Appends one verdict record, routed through the fault seam.
    ///
    /// # Errors
    ///
    /// Real I/O errors, injected write errors, and injected short writes
    /// (the torn fragment is sealed so the log stays line-framed; the
    /// record did not land). An injected bit flip returns `Ok` — silent
    /// media corruption *is* an acknowledged write — and the damage
    /// surfaces as a quarantined line on the next recovery or compaction.
    pub fn append(&self, key: Fingerprint, verdict: bool) -> io::Result<()> {
        let span = specrepair_trace::span("persist.append", Phase::OracleCache);
        let idx = self.appends.fetch_add(1, Ordering::Relaxed);
        let line = record::encode(key, verdict);
        let fault = self.plan.fault_at(idx);
        if span.is_active() {
            span.attr_bool("injected", fault.is_some());
        }
        match fault {
            None => {
                let log = self.log.lock();
                log.append_line(&line)?;
                self.disk_lines.fetch_add(1, Ordering::Relaxed);
                self.disk_good.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Some(DiskFaultKind::WriteError) => {
                self.count_injected(DiskFaultKind::WriteError);
                Err(io::Error::other("injected disk write error"))
            }
            Some(DiskFaultKind::ShortWrite) => {
                self.count_injected(DiskFaultKind::ShortWrite);
                let log = self.log.lock();
                // Half the record lands, then the "failure"; seal the
                // fragment so later appends stay line-framed (recovery
                // would do the same after a real kill).
                let cut = line.len() / 2;
                log.append_bytes(&line.as_bytes()[..cut]).ok();
                log.append_bytes(b"\n").ok();
                self.disk_lines.fetch_add(1, Ordering::Relaxed);
                Err(io::Error::other("injected short write"))
            }
            Some(DiskFaultKind::BitFlip) => {
                self.count_injected(DiskFaultKind::BitFlip);
                let mut bytes = line.into_bytes();
                let pos = (specrepair_faults::DiskFaultPlan::new(self.plan.seed, 1.0).seed
                    ^ idx.wrapping_mul(0x9e37_79b9_7f4a_7c15)) as usize
                    % bytes.len();
                bytes[pos] ^= 0x01;
                let corrupted = String::from_utf8_lossy(&bytes).into_owned();
                let log = self.log.lock();
                log.append_line(&corrupted)?;
                self.disk_lines.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
        }
    }

    /// Forces the log to stable storage.
    pub fn sync(&self) -> io::Result<()> {
        self.log.lock().sync()
    }

    /// Rewrites the log from `entries` — the kill-safe compaction protocol:
    ///
    /// 1. write every record to a fresh `verdicts.log.tmp`,
    /// 2. `fsync` the segment,
    /// 3. atomically `rename` it onto `verdicts.log`,
    /// 4. reopen the append handle on the new file.
    ///
    /// A kill before (3) leaves the live log untouched (the tmp segment is
    /// deleted unread on next open); a kill after (3) leaves the complete
    /// new segment as the live log. There is no instant at which a reader
    /// can observe a partially compacted live log.
    ///
    /// # Errors
    ///
    /// Any I/O failure; the live log is still intact and the handle still
    /// appends to it (the failed tmp segment is removed best-effort).
    pub fn compact(&self, entries: &HashMap<u128, bool>) -> io::Result<()> {
        let span = specrepair_trace::span("persist.compact", Phase::OracleCache);
        if span.is_active() {
            span.attr_u64("entries", entries.len() as u64);
        }
        let tmp = Self::tmp_path(&self.dir);
        let live = Self::live_path(&self.dir);
        // Hold the append handle across the whole swap: no append may
        // interleave between segment write and rename, or it would land on
        // the doomed old inode.
        let mut guard = self.log.lock();
        let write_segment = || -> io::Result<()> {
            let mut keys: Vec<&u128> = entries.keys().collect();
            keys.sort_unstable();
            let mut file = io::BufWriter::new(fs::File::create(&tmp)?);
            for key in keys {
                let line = record::encode(Fingerprint(*key), entries[key]);
                file.write_all(line.as_bytes())?;
                file.write_all(b"\n")?;
            }
            let file = file.into_inner().map_err(|e| e.into_error())?;
            file.sync_all()?;
            fs::rename(&tmp, &live)?;
            Ok(())
        };
        match write_segment() {
            Ok(()) => {
                *guard = LineLog::append_to(&live)?;
                self.disk_lines
                    .store(entries.len() as u64, Ordering::Relaxed);
                self.disk_good
                    .store(entries.len() as u64, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => {
                fs::remove_file(&tmp).ok();
                Err(e)
            }
        }
    }
}
