//! The fixed-frame verdict record codec.
//!
//! One record per line, exactly [`RECORD_LEN`] ASCII characters:
//!
//! ```text
//! SRV1 <32-hex fingerprint> <0|1> <8-hex crc32>
//! ^^^^                                          magic + version
//!      ^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^         128-bit spec fingerprint
//!                                      ^        oracle verdict
//!                                        ^^^^^^^^ CRC32 (IEEE) of the
//!                                                 preceding 39 characters
//! ```
//!
//! A fixed frame means every corruption is detectable by construction:
//! wrong length, bad magic, a non-hex digit, or a checksum mismatch all
//! reject the line. The CRC covers magic, key and verdict, so a bit flip
//! anywhere in the record (including inside the CRC itself) quarantines it.

use mualloy_syntax::Fingerprint;

/// Magic + version prefix of every record.
pub const MAGIC: &str = "SRV1";

/// Exact character count of a well-formed record line (without newline).
pub const RECORD_LEN: usize = 48;

/// Length of the checksummed prefix (`SRV1 <32hex> <0|1>`).
const BODY_LEN: usize = 39;

/// CRC32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — implemented
/// here because the offline workspace vendors no checksum crate.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Encodes one verdict as a record line (no trailing newline).
pub fn encode(key: Fingerprint, verdict: bool) -> String {
    let body = format!("{MAGIC} {:032x} {}", key.0, u8::from(verdict));
    debug_assert_eq!(body.len(), BODY_LEN);
    let line = format!("{body} {:08x}", crc32(body.as_bytes()));
    debug_assert_eq!(line.len(), RECORD_LEN);
    line
}

/// Decodes one line; `None` on any framing or checksum violation.
pub fn decode(line: &str) -> Option<(Fingerprint, bool)> {
    if line.len() != RECORD_LEN || !line.is_ascii() {
        return None;
    }
    let (body, crc_part) = (line.get(..BODY_LEN)?, line.get(BODY_LEN..)?);
    let crc_hex = crc_part.strip_prefix(' ')?;
    let stored = u32::from_str_radix(crc_hex, 16).ok()?;
    if stored != crc32(body.as_bytes()) {
        return None;
    }
    let rest = body.strip_prefix(MAGIC)?.strip_prefix(' ')?;
    let (key_hex, verdict_part) = (rest.get(..32)?, rest.get(32..)?);
    let key = u128::from_str_radix(key_hex, 16).ok()?;
    let verdict = match verdict_part {
        " 0" => false,
        " 1" => true,
        _ => return None,
    };
    // Canonical-form check: re-encoding must reproduce the line exactly
    // (rejects e.g. upper-case hex that happens to checksum consistently).
    let fp = Fingerprint(key);
    if encode(fp, verdict) != line {
        return None;
    }
    Some((fp, verdict))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_decode_round_trips() {
        for (raw, verdict) in [(0u128, true), (u128::MAX, false), (0xdead_beef, true)] {
            let line = encode(Fingerprint(raw), verdict);
            assert_eq!(line.len(), RECORD_LEN);
            assert_eq!(decode(&line), Some((Fingerprint(raw), verdict)));
        }
    }

    #[test]
    fn any_single_byte_change_is_rejected() {
        let line = encode(Fingerprint(0x0123_4567_89ab_cdef), true);
        let original = line.as_bytes().to_vec();
        for i in 0..original.len() {
            for flip in [0x01u8, 0x20, 0x80] {
                let mut bytes = original.clone();
                bytes[i] ^= flip;
                if bytes == original.as_slice() {
                    continue;
                }
                let corrupted = String::from_utf8_lossy(&bytes).into_owned();
                assert_eq!(
                    decode(&corrupted),
                    None,
                    "byte {i} xor {flip:#x} must be rejected"
                );
            }
        }
    }

    #[test]
    fn truncations_and_extensions_are_rejected() {
        let line = encode(Fingerprint(42), false);
        for cut in 0..line.len() {
            assert_eq!(decode(&line[..cut]), None, "prefix of length {cut}");
        }
        assert_eq!(decode(&format!("{line} ")), None);
        assert_eq!(decode(&format!("{line}{line}")), None);
        assert_eq!(decode(""), None);
        assert_eq!(decode("not a record at all"), None);
    }
}
