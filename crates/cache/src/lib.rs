//! # specrepair-cache
//!
//! The crash-safe persistent oracle cache tier (DESIGN.md §14).
//!
//! [`PersistentCache`] implements [`VerdictStore`] over a log-structured,
//! append-only file of checksummed fixed-frame verdict records keyed by the
//! 128-bit canonical spec fingerprint:
//!
//! - **Recovery** tolerates any torn tail or corrupt record: a bad line is
//!   quarantined (skipped and counted), never a panic — the same loader
//!   discipline as the study journal, shared via `specrepair_core::logio`.
//! - **Compaction** writes a fresh segment, fsyncs, and atomically renames
//!   it over the live log; a kill at any instant leaves either the old or
//!   the new log whole, never a mix.
//! - **Degradation** is breaker-style: consecutive append failures trip the
//!   store into memory-only mode (lookups keep working, records stop
//!   touching disk), with periodic half-open probes to heal; a sealing
//!   compaction at drain re-persists what the degraded period skipped.
//! - **Chaos**: a deterministic [`DiskFaultPlan`] under the append seam
//!   injects write errors, short writes and bit flips on schedule, so every
//!   recovery path above is exercised by tests and CI.
//!
//! The store is *infallible at the [`VerdictStore`] interface*: once open,
//! lookups and records never surface an error to the oracle.

#![warn(missing_docs)]

pub mod log;
pub mod record;

use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use mualloy_analyzer::VerdictStore;
use mualloy_syntax::Fingerprint;
use parking_lot::RwLock;
use serde::Serialize;
use specrepair_faults::{CallBreaker, DiskFaultKind, DiskFaultPlan};

use crate::log::VerdictLog;

/// Consecutive append failures before the breaker opens (memory-only mode).
const TRIP_AFTER: u32 = 3;

/// Skipped records while open before one half-open probe append is allowed.
const HALFOPEN_AFTER: u32 = 32;

/// Non-record lines tolerated in the live log before an automatic
/// compaction rewrites it.
const COMPACT_GARBAGE: u64 = 16;

/// A point-in-time snapshot of the persistent tier's counters, embedded in
/// `GET /metrics` (`persistent` section) and the study's stderr report.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct PersistStats {
    /// Entries recovered from disk when the store opened (warm boot size).
    pub preloaded: u64,
    /// Corrupt or torn records skipped (at open and across compactions).
    pub quarantined: u64,
    /// Entries currently held (memory map = disk union degraded-period).
    pub live_entries: u64,
    /// Lines currently in the live log file (valid or not).
    pub disk_lines: u64,
    /// Valid records currently in the live log file.
    pub disk_good: u64,
    /// Store lookups that found a verdict.
    pub hits: u64,
    /// Store lookups in total.
    pub lookups: u64,
    /// Records durably appended.
    pub appends: u64,
    /// Appends that failed (real or injected I/O errors).
    pub append_errors: u64,
    /// Records skipped because the breaker was open (memory-only mode).
    pub skipped_degraded: u64,
    /// Times the breaker tripped open.
    pub breaker_trips: u64,
    /// Whether the store is currently degraded (breaker open).
    pub degraded: bool,
    /// Completed compactions.
    pub compactions: u64,
    /// Failed compaction attempts (live log left intact).
    pub compaction_failures: u64,
    /// Injected write errors (chaos mode).
    pub injected_write_errors: u64,
    /// Injected short writes (chaos mode).
    pub injected_short_writes: u64,
    /// Injected bit flips (chaos mode).
    pub injected_bit_flips: u64,
}

impl PersistStats {
    /// The telemetry `persistent` section for this snapshot.
    pub fn section(&self) -> specrepair_telemetry::PersistSection {
        specrepair_telemetry::PersistSection {
            degraded: self.degraded,
            preloaded: self.preloaded,
            quarantined: self.quarantined,
            live_entries: self.live_entries,
            disk_lines: self.disk_lines,
            disk_good: self.disk_good,
            lookups: self.lookups,
            hits: self.hits,
            appends: self.appends,
            append_errors: self.append_errors,
            skipped_degraded: self.skipped_degraded,
            breaker_trips: self.breaker_trips,
            compactions: self.compactions,
            compaction_failures: self.compaction_failures,
            injected_write_errors: self.injected_write_errors,
            injected_short_writes: self.injected_short_writes,
            injected_bit_flips: self.injected_bit_flips,
        }
    }
}

/// The disk-tier circuit breaker: the shared call-count
/// [`CallBreaker`] discipline (no wall clock, so chaos runs stay
/// deterministic), instantiated with this tier's trip and cooldown counts.
fn disk_breaker() -> CallBreaker {
    CallBreaker::new(TRIP_AFTER, HALFOPEN_AFTER)
}

/// The crash-safe persistent verdict store. Cheap to share behind an
/// `Arc`; all methods take `&self` and are safe from concurrent workers.
pub struct PersistentCache {
    log: VerdictLog,
    /// Every known entry: disk contents at open plus everything recorded
    /// since (including records the degraded mode kept memory-only).
    map: RwLock<HashMap<u128, bool>>,
    breaker: CallBreaker,
    preloaded: u64,
    quarantined: AtomicU64,
    hits: AtomicU64,
    lookups: AtomicU64,
    appends: AtomicU64,
    append_errors: AtomicU64,
    skipped_degraded: AtomicU64,
    breaker_trips: AtomicU64,
    compactions: AtomicU64,
    compaction_failures: AtomicU64,
}

impl std::fmt::Debug for PersistentCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PersistentCache")
            .field("stats", &self.stats())
            .finish()
    }
}

impl PersistentCache {
    /// Opens (creating as needed) the cache under `dir` with no fault
    /// injection — the production path.
    ///
    /// # Errors
    ///
    /// Fails when the directory or log cannot be created/read at all; the
    /// caller (e.g. `specrepaird`) degrades to memory-only operation.
    pub fn open(dir: &Path) -> io::Result<PersistentCache> {
        PersistentCache::open_with_faults(dir, DiskFaultPlan::none())
    }

    /// [`PersistentCache::open`] with a deterministic disk fault plan
    /// injected under the append seam (chaos mode).
    ///
    /// # Errors
    ///
    /// Fails when the directory or log cannot be created/read at all.
    pub fn open_with_faults(dir: &Path, plan: DiskFaultPlan) -> io::Result<PersistentCache> {
        let (log, recovered) = VerdictLog::open(dir, plan)?;
        let cache = PersistentCache {
            log,
            preloaded: recovered.entries.len() as u64,
            quarantined: AtomicU64::new(recovered.quarantined),
            map: RwLock::new(recovered.entries),
            breaker: disk_breaker(),
            hits: AtomicU64::new(0),
            lookups: AtomicU64::new(0),
            appends: AtomicU64::new(0),
            append_errors: AtomicU64::new(0),
            skipped_degraded: AtomicU64::new(0),
            breaker_trips: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            compaction_failures: AtomicU64::new(0),
        };
        if recovered.quarantined > 0 {
            // Boot-time cleanup: rewrite the log without the corrupt lines
            // so quarantine never accumulates across lives.
            cache.compact_now();
        }
        Ok(cache)
    }

    /// Entries recovered from disk at open (0 on a cold boot).
    pub fn preloaded(&self) -> u64 {
        self.preloaded
    }

    /// Whether the store is currently degraded to memory-only mode.
    pub fn degraded(&self) -> bool {
        self.breaker.is_open()
    }

    /// Snapshot of every counter.
    pub fn stats(&self) -> PersistStats {
        PersistStats {
            preloaded: self.preloaded,
            quarantined: self.quarantined.load(Ordering::Relaxed),
            live_entries: self.map.read().len() as u64,
            disk_lines: self.log.disk_lines(),
            disk_good: self.log.disk_good(),
            hits: self.hits.load(Ordering::Relaxed),
            lookups: self.lookups.load(Ordering::Relaxed),
            appends: self.appends.load(Ordering::Relaxed),
            append_errors: self.append_errors.load(Ordering::Relaxed),
            skipped_degraded: self.skipped_degraded.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            degraded: self.degraded(),
            compactions: self.compactions.load(Ordering::Relaxed),
            compaction_failures: self.compaction_failures.load(Ordering::Relaxed),
            injected_write_errors: self.log.injected(DiskFaultKind::WriteError),
            injected_short_writes: self.log.injected(DiskFaultKind::ShortWrite),
            injected_bit_flips: self.log.injected(DiskFaultKind::BitFlip),
        }
    }

    /// Rewrites the live log from the in-memory map (kill-safe: segment +
    /// fsync + atomic rename). Returns whether the compaction completed;
    /// on failure the live log is untouched.
    pub fn compact_now(&self) -> bool {
        let snapshot = self.map.read().clone();
        match self.log.compact(&snapshot) {
            Ok(()) => {
                self.compactions.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(_) => {
                self.compaction_failures.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// The drain hook: makes the log as clean and complete as the disk
    /// allows — a sealing compaction when the log carries garbage or lacks
    /// entries the degraded period kept memory-only — then fsyncs.
    pub fn seal(&self) {
        let live = self.map.read().len() as u64;
        let needs_compact = self.log.disk_good() != live || self.log.disk_lines() != live;
        if needs_compact {
            self.compact_now();
        }
        self.log.sync().ok();
    }

    fn maybe_auto_compact(&self) {
        let garbage = self.log.disk_lines().saturating_sub(self.log.disk_good());
        if garbage >= COMPACT_GARBAGE {
            self.compact_now();
        }
    }
}

impl VerdictStore for PersistentCache {
    fn lookup(&self, key: Fingerprint) -> Option<bool> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let verdict = self.map.read().get(&key.0).copied();
        if verdict.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        verdict
    }

    fn record(&self, key: Fingerprint, verdict: bool) {
        let fresh = self.map.write().insert(key.0, verdict).is_none();
        if !fresh {
            return;
        }
        if !self.breaker.allow() {
            self.skipped_degraded.fetch_add(1, Ordering::Relaxed);
            return;
        }
        match self.log.append(key, verdict) {
            Ok(()) => {
                self.appends.fetch_add(1, Ordering::Relaxed);
                self.breaker.success();
                self.maybe_auto_compact();
            }
            Err(_) => {
                self.append_errors.fetch_add(1, Ordering::Relaxed);
                if self.breaker.failure() {
                    self.breaker_trips.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::log::{LOG_FILE, TMP_FILE};
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("specrepair-cache-{name}-{}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        dir
    }

    fn fp(n: u128) -> Fingerprint {
        Fingerprint(n)
    }

    #[test]
    fn warm_boot_round_trips_verdicts() {
        let dir = tmp_dir("warm");
        {
            let cache = PersistentCache::open(&dir).unwrap();
            assert_eq!(cache.preloaded(), 0, "cold boot");
            cache.record(fp(1), true);
            cache.record(fp(2), false);
            cache.record(fp(1), true); // duplicate: no second append
            assert_eq!(cache.stats().appends, 2);
            cache.seal();
        }
        let cache = PersistentCache::open(&dir).unwrap();
        assert_eq!(cache.preloaded(), 2, "warm boot");
        assert_eq!(cache.lookup(fp(1)), Some(true));
        assert_eq!(cache.lookup(fp(2)), Some(false));
        assert_eq!(cache.lookup(fp(3)), None);
        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.lookups, 3);
        assert_eq!(stats.quarantined, 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_byte_is_quarantined_and_cleaned() {
        let dir = tmp_dir("quarantine");
        {
            let cache = PersistentCache::open(&dir).unwrap();
            cache.record(fp(10), true);
            cache.record(fp(20), false);
        }
        // Flip one byte of the first record on disk.
        let log_path = dir.join(LOG_FILE);
        let mut bytes = fs::read(&log_path).unwrap();
        bytes[7] ^= 0x01;
        fs::write(&log_path, &bytes).unwrap();
        let cache = PersistentCache::open(&dir).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.quarantined, 1, "one corrupt record counted");
        assert_eq!(stats.preloaded, 1, "the other record survived");
        assert_eq!(cache.lookup(fp(20)), Some(false));
        assert_eq!(cache.lookup(fp(10)), None, "corrupt entry is gone");
        // Boot-time cleanup compacted the corruption away.
        assert_eq!(stats.compactions, 1);
        assert_eq!(stats.disk_lines, 1);
        let reloaded = PersistentCache::open(&dir).unwrap();
        assert_eq!(reloaded.stats().quarantined, 0, "quarantine not sticky");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_quarantined_not_fatal() {
        let dir = tmp_dir("torn");
        {
            let cache = PersistentCache::open(&dir).unwrap();
            cache.record(fp(77), true);
        }
        // Simulate a kill mid-append: half a record, no newline.
        let log_path = dir.join(LOG_FILE);
        let mut bytes = fs::read(&log_path).unwrap();
        let half = record::encode(fp(88), false);
        bytes.extend_from_slice(&half.as_bytes()[..20]);
        fs::write(&log_path, &bytes).unwrap();
        let cache = PersistentCache::open(&dir).unwrap();
        assert_eq!(cache.lookup(fp(77)), Some(true), "acknowledged entry kept");
        assert_eq!(cache.lookup(fp(88)), None, "torn entry never landed");
        assert_eq!(cache.stats().quarantined, 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn leftover_compaction_segment_is_ignored() {
        let dir = tmp_dir("tmp-segment");
        {
            let cache = PersistentCache::open(&dir).unwrap();
            cache.record(fp(5), true);
        }
        // A kill mid-compaction can leave any tmp state: partial garbage …
        fs::write(dir.join(TMP_FILE), b"partial segment garb").unwrap();
        {
            let cache = PersistentCache::open(&dir).unwrap();
            assert_eq!(cache.lookup(fp(5)), Some(true));
            assert!(!dir.join(TMP_FILE).exists(), "stale tmp deleted");
        }
        // … or a complete segment that never got renamed: still ignored,
        // the live log is the only truth.
        let complete = format!("{}\n", record::encode(fp(999), true));
        fs::write(dir.join(TMP_FILE), complete).unwrap();
        let cache = PersistentCache::open(&dir).unwrap();
        assert_eq!(cache.lookup(fp(999)), None, "unpublished segment unread");
        assert_eq!(cache.lookup(fp(5)), Some(true));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_is_kill_safe_at_the_rename_boundary() {
        let dir = tmp_dir("compact-rename");
        let entries: Vec<u128> = (0..20).collect();
        {
            let cache = PersistentCache::open(&dir).unwrap();
            for &k in &entries {
                cache.record(fp(k), k % 2 == 0);
            }
            cache.compact_now();
        }
        // Post-rename crash state: the new segment IS the live log.
        let cache = PersistentCache::open(&dir).unwrap();
        for &k in &entries {
            assert_eq!(cache.lookup(fp(k)), Some(k % 2 == 0));
        }
        assert_eq!(cache.stats().quarantined, 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_errors_trip_the_breaker_into_memory_only_mode() {
        let dir = tmp_dir("breaker");
        // Every append fails.
        let plan = DiskFaultPlan::new(1, 1.0).with_kinds(&[DiskFaultKind::WriteError]);
        let cache = PersistentCache::open_with_faults(&dir, plan).unwrap();
        for k in 0..10u128 {
            cache.record(fp(k), true);
        }
        let stats = cache.stats();
        assert!(stats.degraded, "breaker open after consecutive failures");
        assert_eq!(stats.breaker_trips, 1);
        assert_eq!(stats.append_errors as u32, TRIP_AFTER);
        assert_eq!(stats.skipped_degraded, 10 - TRIP_AFTER as u64);
        // Memory-only mode still serves every acknowledged verdict.
        for k in 0..10u128 {
            assert_eq!(cache.lookup(fp(k)), Some(true));
        }
        assert_eq!(stats.appends, 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn breaker_heals_through_a_half_open_probe() {
        let dir = tmp_dir("halfopen");
        // Faults 0..TRIP_AFTER fail, then the disk "recovers": rate 1.0
        // cannot model that, so drive the breaker directly through a
        // fault-free cache by tripping it by hand.
        let cache = PersistentCache::open(&dir).unwrap();
        for _ in 0..TRIP_AFTER {
            assert!(cache.breaker.allow());
            cache.breaker.failure();
        }
        assert!(cache.degraded());
        // While open, the next HALFOPEN_AFTER - 1 records are skipped …
        let mut allowed = 0;
        for _ in 0..HALFOPEN_AFTER {
            if cache.breaker.allow() {
                allowed += 1;
            }
        }
        assert_eq!(allowed, 1, "exactly one half-open probe per cooldown");
        // … and a successful probe closes the breaker.
        cache.breaker.success();
        assert!(!cache.degraded());
        cache.record(fp(1), true);
        assert_eq!(cache.stats().appends, 1, "healed store persists again");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn seal_persists_entries_the_degraded_period_skipped() {
        let dir = tmp_dir("seal-heal");
        let plan = DiskFaultPlan::new(2, 1.0).with_kinds(&[DiskFaultKind::WriteError]);
        {
            let cache = PersistentCache::open_with_faults(&dir, plan).unwrap();
            for k in 0..8u128 {
                cache.record(fp(k), true);
            }
            assert_eq!(cache.stats().appends, 0, "everything failed or skipped");
            // The injected plan only covers the append seam; compaction
            // goes through the segment writer, which works — exactly the
            // "disk came back" healing scenario.
            cache.seal();
            assert_eq!(cache.stats().compactions, 1);
        }
        let cache = PersistentCache::open(&dir).unwrap();
        assert_eq!(cache.preloaded(), 8, "sealing compaction saved them all");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flips_are_acknowledged_but_quarantined_on_reload() {
        let dir = tmp_dir("bitflip");
        let plan = DiskFaultPlan::new(3, 1.0).with_kinds(&[DiskFaultKind::BitFlip]);
        {
            let cache = PersistentCache::open_with_faults(&dir, plan).unwrap();
            cache.record(fp(123), true);
            let stats = cache.stats();
            assert_eq!(stats.injected_bit_flips, 1);
            assert_eq!(stats.appends, 1, "silent corruption is an ack'd write");
            // In-process the verdict is still served from memory.
            assert_eq!(cache.lookup(fp(123)), Some(true));
        }
        let cache = PersistentCache::open(&dir).unwrap();
        // Reload quarantines the corrupt record; boot cleanup scrubs it.
        assert_eq!(cache.stats().quarantined, 1);
        assert_eq!(cache.lookup(fp(123)), None);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn short_writes_leave_a_sealed_fragment_and_fail_the_append() {
        let dir = tmp_dir("shortwrite");
        let plan = DiskFaultPlan::new(4, 1.0).with_kinds(&[DiskFaultKind::ShortWrite]);
        {
            let cache = PersistentCache::open_with_faults(&dir, plan).unwrap();
            cache.record(fp(9), true);
            let stats = cache.stats();
            assert_eq!(stats.injected_short_writes, 1);
            assert_eq!(stats.append_errors, 1);
            assert_eq!(cache.lookup(fp(9)), Some(true), "memory still serves it");
        }
        let cache = PersistentCache::open(&dir).unwrap();
        assert_eq!(cache.stats().quarantined, 1, "the fragment is quarantined");
        assert_eq!(cache.lookup(fp(9)), None);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn garbage_accumulation_triggers_auto_compaction() {
        let dir = tmp_dir("autocompact");
        // Bit-flip every record: each append is acknowledged garbage.
        let plan = DiskFaultPlan::new(5, 1.0).with_kinds(&[DiskFaultKind::BitFlip]);
        let cache = PersistentCache::open_with_faults(&dir, plan).unwrap();
        for k in 0..(COMPACT_GARBAGE + 4) {
            cache.record(fp(k as u128), true);
        }
        let stats = cache.stats();
        assert!(stats.compactions >= 1, "garbage threshold compacted");
        // Compaction rewrote from memory, resetting the garbage ratio;
        // only post-compaction bit flips remain in the log.
        assert!(stats.disk_lines - stats.disk_good < COMPACT_GARBAGE);
        fs::remove_dir_all(&dir).ok();
    }
}
