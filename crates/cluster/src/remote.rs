//! The remote verdict tier: `VerdictStore` over the shard `/verdict` API.
//!
//! A shard (or a study/loadgen client) attaches this store behind its
//! in-memory memo and local persistent log, giving the probe order
//! **memo → local log → remote shard**; every freshly solved verdict is
//! written through to the key's owning peer, so the whole cluster pools
//! one verdict cache across the fingerprint space.
//!
//! The store is infallible at the `VerdictStore` seam, like every tier: a
//! dead or misbehaving peer yields `None` (the caller solves locally —
//! byte-identical output, just slower) and trips that peer's call-count
//! [`CallBreaker`], so a down shard costs one failed connect per cooldown
//! window instead of one per lookup. One retry on transport failure
//! absorbs the single-connect races a restarting peer produces.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use mualloy_analyzer::VerdictStore;
use mualloy_syntax::Fingerprint;
use specrepair_faults::CallBreaker;

use crate::client;
use crate::ring::ShardRing;

/// Consecutive transport failures before a peer's breaker opens.
const TRIP_AFTER: u32 = 3;

/// Skipped calls while open before one half-open probe is allowed.
const HALFOPEN_AFTER: u32 = 32;

/// Read timeout on peer calls: a verdict probe is a memo/log lookup on
/// the peer, never a solve, so anything slow is a sick peer.
const PEER_TIMEOUT: Duration = Duration::from_secs(5);

/// A point-in-time snapshot of the remote tier's counters, embedded in
/// the shard `/metrics` `cluster` section and the loadgen report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RemoteStats {
    /// Remote lookups attempted (keys owned by a peer, breaker willing).
    pub lookups: u64,
    /// Lookups a peer answered with a verdict.
    pub hits: u64,
    /// Lookups a peer answered with "unknown fingerprint".
    pub misses: u64,
    /// Write-through records sent to owning peers.
    pub puts: u64,
    /// Lookups/records skipped because this node owns the key itself.
    pub self_owned: u64,
    /// Calls that failed in transport (after the single retry).
    pub transport_errors: u64,
    /// Transport retries taken (one per failed first attempt).
    pub retries: u64,
    /// Times a peer breaker tripped open.
    pub breaker_trips: u64,
    /// Calls skipped because the peer's breaker was open.
    pub skipped_open: u64,
}

impl RemoteStats {
    /// Fraction of attempted remote lookups a peer answered (0.0 idle).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// The telemetry shard `cluster` section for this snapshot. Ring
    /// identity and breaker occupancy live outside the counters, so the
    /// caller supplies them.
    pub fn cluster_section(
        &self,
        shard_id: usize,
        peers: usize,
        open_breakers: usize,
    ) -> specrepair_telemetry::ShardClusterSection {
        specrepair_telemetry::ShardClusterSection {
            shard_id: shard_id as u64,
            peers: peers as u64,
            remote_lookups: self.lookups,
            remote_hits: self.hits,
            remote_misses: self.misses,
            remote_hit_rate: self.hit_rate(),
            remote_puts: self.puts,
            self_owned: self.self_owned,
            transport_errors: self.transport_errors,
            retries: self.retries,
            breaker_trips: self.breaker_trips,
            skipped_open: self.skipped_open,
            open_breakers: open_breakers as u64,
        }
    }
}

/// The `VerdictStore` tier that asks the owning peer shard.
pub struct RemoteVerdictStore {
    ring: ShardRing,
    /// This node's own ring identity, when it is itself a shard: keys it
    /// owns never leave the process (its memo/log already answered).
    self_id: Option<String>,
    breakers: Vec<CallBreaker>,
    lookups: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    puts: AtomicU64,
    self_owned: AtomicU64,
    transport_errors: AtomicU64,
    retries: AtomicU64,
    breaker_trips: AtomicU64,
    skipped_open: AtomicU64,
}

impl std::fmt::Debug for RemoteVerdictStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteVerdictStore")
            .field("nodes", &self.ring.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl RemoteVerdictStore {
    /// A remote tier over `ring`. `self_id` names this process's own ring
    /// node (shard daemons pass their own address; pure clients pass
    /// `None` and probe every owner remotely).
    pub fn new(ring: ShardRing, self_id: Option<String>) -> RemoteVerdictStore {
        let breakers = (0..ring.len())
            .map(|_| CallBreaker::new(TRIP_AFTER, HALFOPEN_AFTER))
            .collect();
        RemoteVerdictStore {
            ring,
            self_id,
            breakers,
            lookups: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            puts: AtomicU64::new(0),
            self_owned: AtomicU64::new(0),
            transport_errors: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            breaker_trips: AtomicU64::new(0),
            skipped_open: AtomicU64::new(0),
        }
    }

    /// The ring this store routes over.
    pub fn ring(&self) -> &ShardRing {
        &self.ring
    }

    /// Snapshot of the tier's counters.
    pub fn stats(&self) -> RemoteStats {
        RemoteStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            self_owned: self.self_owned.load(Ordering::Relaxed),
            transport_errors: self.transport_errors.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            skipped_open: self.skipped_open.load(Ordering::Relaxed),
        }
    }

    /// How many peer breakers are currently open.
    pub fn open_breakers(&self) -> usize {
        self.breakers.iter().filter(|b| b.is_open()).count()
    }

    /// The peer owning `key`, unless this node owns it itself or the
    /// peer's breaker refuses the call.
    fn admitted_owner(&self, key: Fingerprint) -> Option<usize> {
        let index = self.ring.owner_index(key);
        if self.self_id.as_deref() == Some(self.ring.nodes()[index].id.as_str()) {
            self.self_owned.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        if !self.breakers[index].allow() {
            self.skipped_open.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        Some(index)
    }

    /// One call to peer `index` with a single retry on transport failure,
    /// feeding the peer's breaker. `Some((status, body))` on success.
    fn call_peer(
        &self,
        index: usize,
        method: &str,
        path: &str,
        body: &str,
    ) -> Option<(u16, String)> {
        let addr = self.ring.nodes()[index].addr.as_str();
        let mut outcome = client::call(addr, method, path, body, PEER_TIMEOUT);
        if outcome.is_err() {
            self.retries.fetch_add(1, Ordering::Relaxed);
            outcome = client::call(addr, method, path, body, PEER_TIMEOUT);
        }
        match outcome {
            Ok(answer) => {
                self.breakers[index].success();
                Some(answer)
            }
            Err(_) => {
                self.transport_errors.fetch_add(1, Ordering::Relaxed);
                if self.breakers[index].failure() {
                    self.breaker_trips.fetch_add(1, Ordering::Relaxed);
                }
                None
            }
        }
    }
}

/// Extracts the `verdict` boolean from a shard's `GET /verdict` body.
fn parse_verdict(body: &str) -> Option<bool> {
    let value: serde::Value = serde_json::from_str(body).ok()?;
    let serde::Value::Map(doc) = value else {
        return None;
    };
    doc.iter().find_map(|(k, v)| match v {
        serde::Value::Bool(b) if k == "verdict" => Some(*b),
        _ => None,
    })
}

impl VerdictStore for RemoteVerdictStore {
    fn lookup(&self, key: Fingerprint) -> Option<bool> {
        let index = self.admitted_owner(key)?;
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let (status, body) = self.call_peer(index, "GET", &format!("/verdict/{key}"), "")?;
        match status {
            200 => match parse_verdict(&body) {
                Some(verdict) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    Some(verdict)
                }
                None => {
                    // A 200 without a boolean verdict is a peer bug; treat
                    // it as a miss, never as an answer.
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    None
                }
            },
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn record(&self, key: Fingerprint, verdict: bool) {
        let Some(index) = self.admitted_owner(key) else {
            return;
        };
        let body = if verdict { "1" } else { "0" };
        if self
            .call_peer(index, "PUT", &format!("/verdict/{key}"), body)
            .is_some()
        {
            self.puts.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_verdict_reads_compact_and_pretty_bodies() {
        assert_eq!(
            parse_verdict(r#"{"verdict":true,"source":"memo"}"#),
            Some(true)
        );
        assert_eq!(parse_verdict("{\n  \"verdict\": false\n}"), Some(false));
        assert_eq!(parse_verdict(r#"{"error":"unknown fingerprint"}"#), None);
        assert_eq!(parse_verdict("not json"), None);
        assert_eq!(parse_verdict(r#"{"verdict":"yes"}"#), None);
    }

    #[test]
    fn self_owned_keys_never_go_remote() {
        let ring = ShardRing::from_addrs(&["127.0.0.1:1", "127.0.0.1:2"]);
        let store = RemoteVerdictStore::new(ring.clone(), None);
        // Find one key per owner.
        let mut keys = [None, None];
        for k in 0..64u128 {
            let key = Fingerprint(k.wrapping_mul(0x2545_f491_4f6c_dd1d));
            keys[ring.owner_index(key)].get_or_insert(key);
        }
        let (a, b) = (keys[0].unwrap(), keys[1].unwrap());
        // As node 1's own store, keys owned by node 1 are skipped without
        // any transport attempt; keys owned by node 2 attempt (and fail —
        // nothing listens).
        let own = RemoteVerdictStore::new(ring, Some("127.0.0.1:1".to_string()));
        assert_eq!(own.lookup(a), None);
        assert_eq!(own.stats().self_owned, 1);
        assert_eq!(own.stats().transport_errors, 0);
        assert_eq!(own.lookup(b), None);
        assert_eq!(own.stats().transport_errors, 1);
        assert_eq!(own.stats().retries, 1);
        // A client store (no self) attempts both.
        assert_eq!(store.lookup(a), None);
        assert_eq!(store.stats().self_owned, 0);
        assert_eq!(store.stats().transport_errors, 1);
    }

    #[test]
    fn dead_peer_trips_the_breaker_and_skips_further_calls() {
        let ring = ShardRing::from_addrs(&["127.0.0.1:9"]);
        let store = RemoteVerdictStore::new(ring, None);
        let key = Fingerprint(7);
        for _ in 0..TRIP_AFTER {
            assert_eq!(store.lookup(key), None);
        }
        let stats = store.stats();
        assert_eq!(stats.breaker_trips, 1);
        assert_eq!(store.open_breakers(), 1);
        // Further traffic is skipped, not attempted.
        store.record(key, true);
        assert_eq!(store.stats().skipped_open, 1);
        assert_eq!(store.stats().transport_errors, stats.transport_errors);
    }
}
