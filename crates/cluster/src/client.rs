//! The tiny blocking HTTP/1.1 client shared across the workspace: the
//! router forwards with it, [`crate::RemoteVerdictStore`] probes peers
//! with it, and the load generator, CLI and integration tests drive
//! daemons with it. One request per connection (`connection: close`), no
//! async runtime — the same hand-rolled `std::net` stack as the server.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use specrepair_core::CancelToken;

/// Writes an HTTP request to `stream` and reads back `(status, body)`.
///
/// # Errors
///
/// Propagates connection and read errors; a malformed status line is an
/// `InvalidData` error.
pub fn roundtrip(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    stream.write_all(
        format!(
            "{method} {path} HTTP/1.1\r\nhost: specrepaird\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    read_response(&mut reader)
}

/// Reads one HTTP response from a buffered stream.
///
/// # Errors
///
/// `InvalidData` for malformed status lines or bodies, plus socket errors.
pub fn read_response<R: BufRead>(reader: &mut R) -> std::io::Result<(u16, String)> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad(&format!("bad status line {line:?}")))?;
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad("bad content-length"))?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    String::from_utf8(body)
        .map(|text| (status, text))
        .map_err(|_| bad("response body is not utf-8"))
}

/// One complete call over a fresh connection with a read timeout.
///
/// # Errors
///
/// Propagates connect, write and read errors as [`roundtrip`].
pub fn call(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
    read_timeout: Duration,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(read_timeout))?;
    stream.set_nodelay(true)?;
    roundtrip(&mut stream, method, path, body)
}

/// Connects with a bounded deterministic retry loop: up to `attempts`
/// connect tries spaced by `backoff`, each wait polled through the
/// [`CancelToken`] so a deadline or cancellation cuts the loop short
/// instead of blocking the thread. Returns the stream together with how
/// many retries (attempts beyond the first) it took — the boot-race fix
/// for probing a daemon that is still binding its listener.
///
/// # Errors
///
/// The last connect error once the attempt budget (or the cancel token)
/// is exhausted.
pub fn connect_with_retry(
    addr: &str,
    attempts: usize,
    backoff: Duration,
    cancel: &CancelToken,
) -> Result<(TcpStream, usize), std::io::Error> {
    let attempts = attempts.max(1);
    let mut retries = 0usize;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok((stream, retries)),
            Err(e) => {
                if retries + 1 >= attempts || !cancel.sleep(backoff) {
                    return Err(e);
                }
                retries += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn roundtrip_parses_a_minimal_response() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(line.starts_with("GET /healthz"));
            stream
                .write_all(b"HTTP/1.1 200 OK\r\ncontent-length: 2\r\n\r\nok")
                .unwrap();
        });
        let (status, body) = call(&addr, "GET", "/healthz", "", Duration::from_secs(5)).unwrap();
        assert_eq!((status, body.as_str()), (200, "ok"));
        server.join().unwrap();
    }

    #[test]
    fn read_response_rejects_garbage() {
        let mut bad = BufReader::new(&b"not a status line\r\n\r\n"[..]);
        assert!(read_response(&mut bad).is_err());
    }

    #[test]
    fn connect_retry_is_bounded_and_counts_retries() {
        // A port with (almost surely) no listener: bind-and-drop reserves
        // one the OS will refuse connections to.
        let addr = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().to_string()
        };
        let cancel = CancelToken::none();
        let err = connect_with_retry(&addr, 3, Duration::from_millis(1), &cancel);
        assert!(err.is_err(), "no listener means the budget runs out");
        // A live listener connects on the first try: zero retries.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let live = listener.local_addr().unwrap().to_string();
        let (_stream, retries) =
            connect_with_retry(&live, 3, Duration::from_millis(1), &cancel).unwrap();
        assert_eq!(retries, 0);
    }
}
