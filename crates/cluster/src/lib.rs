//! # specrepair-cluster
//!
//! Distributed oracle cluster primitives: N `specrepaird` processes shard
//! the 128-bit canonical spec-fingerprint space and pool their verdict
//! caches, so the huge, heavily overlapping candidate streams of
//! BeAFix-style exhaustive search and LLM re-prompting loops are solved
//! once cluster-wide instead of once per node.
//!
//! Three pieces, all deterministic:
//!
//! - [`ShardRing`] — consistent hashing with fixed per-node virtual points
//!   seeded from the node id via SplitMix64. No RNG at lookup; the same
//!   node list yields the same ring in every process, and removing a node
//!   remaps only the keys that node owned.
//! - [`client`] — the tiny blocking `std::net` HTTP/1.1 client shared by
//!   the router, the remote store, the load generator and the tests (the
//!   build environment is offline: no async runtime, no HTTP crate).
//! - [`RemoteVerdictStore`] — the analyzer's `VerdictStore` seam over the
//!   shard daemons' compact `GET/PUT /verdict/<fingerprint>` API, with a
//!   per-shard call-count [`specrepair_faults::CallBreaker`] so a dead
//!   peer degrades into local solving instead of hanging the pipeline.
//!
//! The invariant carried over from the single-node tiers: a remote verdict
//! is only ever the output of the same deterministic solve a local miss
//! would run, so cluster-mode artifacts stay byte-identical to single-node
//! runs at any shard count.

#![warn(missing_docs)]

pub mod client;
pub mod remote;
pub mod ring;

pub use remote::{RemoteStats, RemoteVerdictStore};
pub use ring::{ShardNode, ShardRing};
