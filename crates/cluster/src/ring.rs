//! The deterministic consistent-hash shard ring.
//!
//! Every node contributes [`VNODES`] virtual points on a `u64` ring; the
//! points are a pure function of the node id (FNV-1a over the id bytes,
//! then a SplitMix64 stream), so two processes given the same node list
//! build bit-identical rings — the property that lets the router and every
//! shard agree on ownership without any coordination. A fingerprint is
//! owned by the node whose point is the first at or clockwise after the
//! key's folded position.
//!
//! Consistent hashing gives the minimal-remap guarantee: removing a node
//! deletes only that node's points, so every key it did *not* own keeps
//! its owner; adding a node steals only the arcs its new points cover.

use mualloy_syntax::Fingerprint;

/// Virtual points per node. 128 keeps the per-node load within a few
/// percent of uniform at the 3–8 node cluster sizes the study targets,
/// for 2 KiB of ring state per node.
pub const VNODES: usize = 128;

/// SplitMix64: the same tiny mixer the fault plans use — enough to turn a
/// node seed and a replica index into well-spread ring positions.
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over the node id bytes: the stable cross-process node seed.
fn node_seed(id: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in id.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    mix(hash)
}

/// Folds a 128-bit canonical fingerprint onto the 64-bit ring. The
/// fingerprint is already a strong Merkle hash; one extra mix decorrelates
/// ring positions from the memo table's shard-picking low bits.
fn ring_position(key: Fingerprint) -> u64 {
    mix(key.0 as u64 ^ mix((key.0 >> 64) as u64))
}

/// One shard node: a stable identity (which seeds its ring points) plus
/// the address traffic for its keys is sent to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardNode {
    /// Stable node identity; the ring points are a pure function of it.
    pub id: String,
    /// The node's `host:port` service address.
    pub addr: String,
}

/// The consistent-hash ring mapping fingerprints to shard nodes.
#[derive(Debug, Clone)]
pub struct ShardRing {
    nodes: Vec<ShardNode>,
    /// `(position, node index)` sorted by position — the binary-search
    /// lookup structure. Rebuilt on membership changes; lookups allocate
    /// nothing and draw no randomness.
    points: Vec<(u64, u32)>,
}

impl ShardRing {
    /// A ring over the given nodes.
    pub fn new(nodes: Vec<ShardNode>) -> ShardRing {
        let mut ring = ShardRing {
            nodes,
            points: Vec::new(),
        };
        ring.rebuild();
        ring
    }

    /// A ring where each address is its own node identity — the common
    /// cluster configuration, where the ordered `--shards` list *is* the
    /// membership and every process derives the same ring from it.
    pub fn from_addrs<S: AsRef<str>>(addrs: &[S]) -> ShardRing {
        ShardRing::new(
            addrs
                .iter()
                .map(|a| ShardNode {
                    id: a.as_ref().to_string(),
                    addr: a.as_ref().to_string(),
                })
                .collect(),
        )
    }

    fn rebuild(&mut self) {
        self.points.clear();
        for (index, node) in self.nodes.iter().enumerate() {
            let seed = node_seed(&node.id);
            for replica in 0..VNODES {
                let position = mix(seed ^ mix(replica as u64 + 1));
                self.points.push((position, index as u32));
            }
        }
        // Position collisions across nodes are astronomically unlikely but
        // must still resolve identically everywhere: lowest node index wins.
        self.points.sort_unstable();
        self.points.dedup_by_key(|(position, _)| *position);
    }

    /// The member nodes, in insertion order.
    pub fn nodes(&self) -> &[ShardNode] {
        &self.nodes
    }

    /// Number of member nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The index (into [`ShardRing::nodes`]) of the node owning `key`.
    ///
    /// # Panics
    ///
    /// Panics on an empty ring — ownership of *something* is the whole
    /// point; callers construct rings from non-empty shard lists.
    pub fn owner_index(&self, key: Fingerprint) -> usize {
        assert!(!self.points.is_empty(), "lookup on an empty shard ring");
        let position = ring_position(key);
        // First point at or clockwise after the key, wrapping at the top.
        let at = match self.points.binary_search(&(position, 0)) {
            Ok(i) => i,
            Err(i) => i,
        };
        let (_, index) = self.points[if at == self.points.len() { 0 } else { at }];
        index as usize
    }

    /// The node owning `key`.
    ///
    /// # Panics
    ///
    /// Panics on an empty ring, as [`ShardRing::owner_index`].
    pub fn owner(&self, key: Fingerprint) -> &ShardNode {
        &self.nodes[self.owner_index(key)]
    }

    /// Adds a node (no-op when a node with the same id is already a
    /// member) and rebuilds the point set.
    pub fn add(&mut self, node: ShardNode) {
        if self.nodes.iter().any(|n| n.id == node.id) {
            return;
        }
        self.nodes.push(node);
        self.rebuild();
    }

    /// Removes the node with the given id, rebuilding the point set.
    /// Returns whether a node was removed. Only keys the removed node
    /// owned change owner — the consistent-hashing minimal-remap
    /// guarantee the proptests pin down.
    pub fn remove(&mut self, id: &str) -> bool {
        let before = self.nodes.len();
        self.nodes.retain(|n| n.id != id);
        if self.nodes.len() == before {
            return false;
        }
        self.rebuild();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(n: u128) -> Fingerprint {
        Fingerprint(n.wrapping_mul(0x9e37_79b9_7f4a_7c15_f39c_c060_5ced_c835))
    }

    fn ring(n: usize) -> ShardRing {
        let addrs: Vec<String> = (0..n).map(|i| format!("127.0.0.1:79{i:02}")).collect();
        ShardRing::from_addrs(&addrs)
    }

    #[test]
    fn lookup_is_deterministic_and_cross_process_stable() {
        let a = ring(3);
        let b = ring(3);
        for k in 0..1_000u128 {
            assert_eq!(a.owner_index(fp(k)), b.owner_index(fp(k)));
        }
        // Pinned expected owners: these values must never change across
        // releases — a drifted ring would silently split every deployed
        // cluster's cache in two. If a ring change is ever intentional,
        // this test is the place that documents the migration.
        let owners: Vec<usize> = (0..8u128).map(|k| a.owner_index(fp(k))).collect();
        assert_eq!(owners, vec![2, 1, 0, 0, 2, 2, 1, 2]);
    }

    #[test]
    fn empty_ring_lookup_panics() {
        let empty = ShardRing::new(Vec::new());
        assert!(empty.is_empty());
        assert!(std::panic::catch_unwind(|| empty.owner_index(fp(1))).is_err());
    }

    #[test]
    fn add_is_idempotent_by_id() {
        let mut r = ring(3);
        let before = r.len();
        r.add(ShardNode {
            id: "127.0.0.1:7900".to_string(),
            addr: "elsewhere:1".to_string(),
        });
        assert_eq!(r.len(), before, "duplicate id is not re-added");
        assert!(!r.remove("not-a-member"));
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Same node list ⇒ same owner for every key, and the owner is
            /// a valid member — determinism across independently built
            /// rings (i.e. across processes).
            #[test]
            fn lookup_determinism(nodes in 1usize..=8, key in any::<u64>()) {
                let a = ring(nodes);
                let b = ring(nodes);
                let key = Fingerprint((key as u128) << 64 | mix(key) as u128);
                let owner = a.owner_index(key);
                prop_assert!(owner < nodes);
                prop_assert_eq!(owner, b.owner_index(key));
            }

            /// At the study's 3–8 node cluster sizes, 4096 spread keys land
            /// within [mean/4, 2·mean] per node: the balance bound VNODES
            /// was sized for.
            #[test]
            fn balance_within_bound(nodes in 3usize..=8) {
                let r = ring(nodes);
                let mut counts = vec![0usize; nodes];
                const KEYS: usize = 4096;
                for k in 0..KEYS as u128 {
                    counts[r.owner_index(fp(k))] += 1;
                }
                let mean = KEYS as f64 / nodes as f64;
                for (node, &count) in counts.iter().enumerate() {
                    prop_assert!(
                        (count as f64) <= 2.0 * mean && (count as f64) >= mean / 4.0,
                        "node {} owns {} of {} keys (mean {:.0})",
                        node, count, KEYS, mean
                    );
                }
            }

            /// Removing one node remaps only the keys it owned (≤ K/N in
            /// expectation): every other key keeps its owner node.
            #[test]
            fn removal_remaps_only_the_removed_nodes_keys(
                nodes in 2usize..=8,
                victim in 0usize..8,
            ) {
                let before = ring(nodes);
                let victim = victim % nodes;
                let victim_id = before.nodes()[victim].id.clone();
                let mut after = before.clone();
                prop_assert!(after.remove(&victim_id));
                let mut remapped = 0usize;
                const KEYS: usize = 1024;
                for k in 0..KEYS as u128 {
                    let old = before.owner(fp(k)).id.clone();
                    let new = after.owner(fp(k)).id.clone();
                    if old == victim_id {
                        remapped += 1;
                        prop_assert!(new != victim_id);
                    } else {
                        prop_assert!(old == new, "a surviving node's key moved");
                    }
                }
                // The victim owned roughly KEYS/nodes keys; remap exactly
                // equals its ownership, and that stays near-minimal.
                prop_assert!(
                    remapped <= 2 * KEYS / nodes,
                    "removal remapped {} of {} keys at {} nodes",
                    remapped, KEYS, nodes
                );
            }
        }
    }
}
