//! Propositional variables, literals and CNF formulas.

use std::fmt;
use std::ops::Not;

/// A propositional variable, numbered from 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    /// The positive literal of this variable.
    pub fn positive(self) -> Lit {
        Lit::new(self, true)
    }

    /// The negative literal of this variable.
    pub fn negative(self) -> Lit {
        Lit::new(self, false)
    }

    /// Index usable for dense arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable together with a polarity.
///
/// Encoded as `2 * var + (1 - polarity)` so that the negation is a cheap
/// XOR and literals index watch lists densely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// Creates a literal from a variable and a polarity (`true` = positive).
    pub fn new(var: Var, positive: bool) -> Lit {
        Lit(var.0 * 2 + u32::from(!positive))
    }

    /// The literal's variable.
    pub fn var(self) -> Var {
        Var(self.0 / 2)
    }

    /// Whether the literal is positive.
    pub fn is_positive(self) -> bool {
        self.0.is_multiple_of(2)
    }

    /// Dense index (for watch lists): `2 * var + (1 - polarity)`.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a literal from its dense index.
    pub fn from_index(index: usize) -> Lit {
        Lit(index as u32)
    }
}

impl Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "{}", self.var())
        } else {
            write!(f, "!{}", self.var())
        }
    }
}

/// A CNF formula: a conjunction of clauses over `num_vars` variables.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cnf {
    num_vars: u32,
    clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Creates an empty formula with no variables.
    pub fn new() -> Cnf {
        Cnf::default()
    }

    /// Allocates a fresh variable.
    pub fn fresh_var(&mut self) -> Var {
        let v = Var(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// The clauses of the formula.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Adds a clause (a disjunction of literals).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if a literal references an unallocated
    /// variable.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        let clause: Vec<Lit> = lits.into_iter().collect();
        debug_assert!(clause.iter().all(|l| l.var().0 < self.num_vars));
        self.clauses.push(clause);
    }

    /// Evaluates the formula under a total assignment (`assignment[v]` is the
    /// value of variable `v`). Returns `None` if the assignment is too short.
    pub fn eval(&self, assignment: &[bool]) -> Option<bool> {
        if assignment.len() < self.num_vars as usize {
            return None;
        }
        Some(self.clauses.iter().all(|c| {
            c.iter()
                .any(|l| assignment[l.var().index()] == l.is_positive())
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding_roundtrips() {
        let v = Var(7);
        let p = v.positive();
        let n = v.negative();
        assert!(p.is_positive());
        assert!(!n.is_positive());
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert_eq!(!p, n);
        assert_eq!(!n, p);
        assert_eq!(Lit::from_index(p.index()), p);
    }

    #[test]
    fn cnf_eval() {
        let mut cnf = Cnf::new();
        let a = cnf.fresh_var();
        let b = cnf.fresh_var();
        cnf.add_clause([a.positive(), b.positive()]);
        cnf.add_clause([a.negative(), b.negative()]);
        assert_eq!(cnf.eval(&[true, false]), Some(true));
        assert_eq!(cnf.eval(&[true, true]), Some(false));
        assert_eq!(cnf.eval(&[false, false]), Some(false));
        assert_eq!(cnf.eval(&[true]), None);
    }

    #[test]
    fn display_forms() {
        let v = Var(3);
        assert_eq!(v.positive().to_string(), "v3");
        assert_eq!(v.negative().to_string(), "!v3");
    }
}
