//! Per-solve solver statistics and a thread-local collection scope.
//!
//! The solver's counters never used to leave the solver; the oracle layer
//! needs them per *query* (one query may run many incremental solves), and
//! the memo table needs to replay them on cache hits so a hit reports the
//! same counters the original solve did. [`collect`] opens a thread-local
//! accumulation scope: every [`Solver`](crate::Solver) solve that
//! completes on this thread while the scope is open adds its counter
//! deltas to the scope.
//!
//! Scopes nest: an inner scope's deltas also count toward every enclosing
//! scope, so a coarse "whole query" scope and a fine "one probe" scope can
//! coexist.

use std::cell::RefCell;

/// Counter deltas of one or more CDCL solves.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SolverStats {
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Decisions made.
    pub decisions: u64,
    /// Literal propagations performed.
    pub propagations: u64,
    /// Restarts taken.
    pub restarts: u64,
    /// Clauses learned from conflict analysis.
    pub learned_clauses: u64,
    /// `solve` / `solve_with_assumptions` calls that completed.
    pub solves: u64,
}

impl SolverStats {
    /// Accumulates another stats record into this one.
    pub fn add(&mut self, other: &SolverStats) {
        self.conflicts += other.conflicts;
        self.decisions += other.decisions;
        self.propagations += other.propagations;
        self.restarts += other.restarts;
        self.learned_clauses += other.learned_clauses;
        self.solves += other.solves;
    }

    /// Whether every counter is zero (no solving happened).
    pub fn is_empty(&self) -> bool {
        *self == SolverStats::default()
    }

    /// The counter-wise difference `self - before` (counters only grow,
    /// so this is the delta of one solve given snapshots around it).
    pub fn delta_since(&self, before: &SolverStats) -> SolverStats {
        SolverStats {
            conflicts: self.conflicts - before.conflicts,
            decisions: self.decisions - before.decisions,
            propagations: self.propagations - before.propagations,
            restarts: self.restarts - before.restarts,
            learned_clauses: self.learned_clauses - before.learned_clauses,
            solves: self.solves.saturating_sub(before.solves),
        }
    }
}

thread_local! {
    static SCOPES: RefCell<Vec<SolverStats>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` under a statistics scope and returns its result together with
/// the aggregated counter deltas of every solve completed inside.
pub fn collect<T>(f: impl FnOnce() -> T) -> (T, SolverStats) {
    SCOPES.with(|s| s.borrow_mut().push(SolverStats::default()));
    let out = f();
    let stats = SCOPES.with(|s| s.borrow_mut().pop().unwrap_or_default());
    (out, stats)
}

/// Adds a solve's deltas to every open scope on this thread (no-op when
/// none is open). Called by the solver at the end of each solve.
pub(crate) fn record(delta: &SolverStats) {
    SCOPES.with(|s| {
        for scope in s.borrow_mut().iter_mut() {
            scope.add(delta);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Solver;

    #[test]
    fn collect_captures_solve_deltas() {
        let ((), stats) = collect(|| {
            let mut s = Solver::new();
            let a = s.new_var();
            let b = s.new_var();
            s.add_clause([a.positive(), b.positive()]);
            s.add_clause([a.negative(), b.negative()]);
            assert!(s.solve().is_sat());
        });
        assert_eq!(stats.solves, 1);
        assert!(stats.decisions > 0 || stats.propagations > 0);
    }

    #[test]
    fn scopes_nest_and_outer_sees_inner() {
        let ((inner_stats,), outer) = collect(|| {
            let ((), inner) = collect(|| {
                let mut s = Solver::new();
                let a = s.new_var();
                s.add_clause([a.positive()]);
                assert!(s.solve().is_sat());
            });
            (inner,)
        });
        assert_eq!(inner_stats.solves, 1);
        assert_eq!(outer, inner_stats, "outer scope saw the inner solve");
    }

    #[test]
    fn no_scope_records_nothing_and_no_solve_is_empty() {
        let ((), stats) = collect(|| {});
        assert!(stats.is_empty());
        // Solving outside any scope must not panic.
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause([a.positive()]);
        assert!(s.solve().is_sat());
    }
}
