//! A CDCL (conflict-driven clause learning) SAT solver.
//!
//! Features: two-watched-literal propagation, first-UIP conflict analysis
//! with non-chronological backjumping, VSIDS variable activity with an
//! indexed max-heap, phase saving, geometric restarts and incremental
//! solving under assumptions. Clause deletion is intentionally omitted: the
//! μAlloy translations solved in this workspace are small (thousands of
//! variables) and keeping all learnt clauses is faster than managing a
//! reduction schedule at that scale.

use crate::cnf::{Cnf, Lit, Var};
use crate::stats::{self, SolverStats};

/// Result of a [`Solver::solve`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveResult {
    /// Satisfiable, with a model mapping each variable index to a value.
    Sat(Vec<bool>),
    /// Unsatisfiable (under the given assumptions, if any).
    Unsat,
}

impl SolveResult {
    /// Whether the result is SAT.
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveResult::Sat(_))
    }

    /// The model, if SAT.
    pub fn model(&self) -> Option<&[bool]> {
        match self {
            SolveResult::Sat(m) => Some(m),
            SolveResult::Unsat => None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LBool {
    True,
    False,
    Undef,
}

type ClauseRef = u32;

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
}

#[derive(Debug, Clone, Copy)]
struct Watcher {
    clause: ClauseRef,
    blocker: Lit,
}

/// An incremental CDCL SAT solver.
///
/// # Example
///
/// ```
/// use mualloy_sat::{Solver, SolveResult};
///
/// let mut solver = Solver::new();
/// let a = solver.new_var();
/// let b = solver.new_var();
/// solver.add_clause([a.positive(), b.positive()]);
/// solver.add_clause([a.negative()]);
/// match solver.solve() {
///     SolveResult::Sat(model) => assert!(model[b.index()]),
///     SolveResult::Unsat => unreachable!(),
/// }
/// ```
#[derive(Debug)]
pub struct Solver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watcher>>, // indexed by Lit::index()
    assign: Vec<LBool>,         // indexed by Var::index()
    phase: Vec<bool>,           // saved phases
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    reason: Vec<Option<ClauseRef>>,
    level: Vec<u32>,
    activity: Vec<f64>,
    var_inc: f64,
    heap: Vec<Var>,         // binary max-heap on activity
    heap_index: Vec<usize>, // var -> position in heap (usize::MAX if absent)
    seen: Vec<bool>,
    qhead: usize,
    ok: bool,
    conflicts: u64,
    decisions: u64,
    propagations: u64,
    restarts: u64,
    learned_clauses: u64,
}

const HEAP_ABSENT: usize = usize::MAX;

impl Default for Solver {
    /// Same as [`Solver::new`]: an empty solver ready to accept clauses.
    fn default() -> Solver {
        Solver::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Solver {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            phase: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            reason: Vec::new(),
            level: Vec::new(),
            activity: Vec::new(),
            var_inc: 1.0,
            heap: Vec::new(),
            heap_index: Vec::new(),
            seen: Vec::new(),
            qhead: 0,
            ok: true,
            conflicts: 0,
            decisions: 0,
            propagations: 0,
            restarts: 0,
            learned_clauses: 0,
        }
    }

    /// Creates a solver preloaded with a CNF formula.
    pub fn from_cnf(cnf: &Cnf) -> Solver {
        let mut s = Solver::new();
        for _ in 0..cnf.num_vars() {
            s.new_var();
        }
        for c in cnf.clauses() {
            s.add_clause(c.iter().copied());
        }
        s
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assign.len() as u32);
        self.assign.push(LBool::Undef);
        self.phase.push(false);
        self.reason.push(None);
        self.level.push(0);
        self.activity.push(0.0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap_index.push(HEAP_ABSENT);
        self.heap_insert(v);
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of conflicts encountered so far.
    pub fn num_conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Number of decisions made so far.
    pub fn num_decisions(&self) -> u64 {
        self.decisions
    }

    /// Number of literal propagations performed so far.
    pub fn num_propagations(&self) -> u64 {
        self.propagations
    }

    /// Number of restarts taken so far.
    pub fn num_restarts(&self) -> u64 {
        self.restarts
    }

    /// Number of clauses learned from conflict analysis so far.
    pub fn num_learned_clauses(&self) -> u64 {
        self.learned_clauses
    }

    /// Number of attached (non-unit) clauses, including learnt ones.
    /// Incremental sessions use this to measure clause retention across
    /// solves.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// A snapshot of all statistics counters (with `solves` left at 0 —
    /// the per-call bookkeeping lives in [`Solver::solve_with_assumptions`]).
    pub fn stats(&self) -> SolverStats {
        SolverStats {
            conflicts: self.conflicts,
            decisions: self.decisions,
            propagations: self.propagations,
            restarts: self.restarts,
            learned_clauses: self.learned_clauses,
            solves: 0,
        }
    }

    /// Adds a clause. Returns `false` if the solver became trivially UNSAT.
    ///
    /// Tautologies are silently dropped and duplicate literals removed. The
    /// solver must be at decision level 0 (which it always is between
    /// `solve` calls).
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) -> bool {
        if !self.ok {
            return false;
        }
        debug_assert_eq!(self.decision_level(), 0);
        let mut clause: Vec<Lit> = lits.into_iter().collect();
        clause.sort_unstable();
        clause.dedup();
        // Tautology or satisfied-at-root detection; drop false literals.
        let mut filtered = Vec::with_capacity(clause.len());
        for (i, &l) in clause.iter().enumerate() {
            if i + 1 < clause.len() && clause[i + 1] == !l {
                return true; // tautology: contains l and !l adjacent after sort
            }
            match self.value(l) {
                LBool::True => return true,
                LBool::False => continue,
                LBool::Undef => filtered.push(l),
            }
        }
        match filtered.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(filtered[0], None);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                self.attach_clause(filtered);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let cref = self.clauses.len() as ClauseRef;
        let w0 = Watcher {
            clause: cref,
            blocker: lits[1],
        };
        let w1 = Watcher {
            clause: cref,
            blocker: lits[0],
        };
        self.watches[(!lits[0]).index()].push(w0);
        self.watches[(!lits[1]).index()].push(w1);
        self.clauses.push(Clause { lits });
        cref
    }

    fn value(&self, l: Lit) -> LBool {
        match self.assign[l.var().index()] {
            LBool::Undef => LBool::Undef,
            LBool::True => {
                if l.is_positive() {
                    LBool::True
                } else {
                    LBool::False
                }
            }
            LBool::False => {
                if l.is_positive() {
                    LBool::False
                } else {
                    LBool::True
                }
            }
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn unchecked_enqueue(&mut self, l: Lit, reason: Option<ClauseRef>) {
        debug_assert_eq!(self.value(l), LBool::Undef);
        let v = l.var();
        self.assign[v.index()] = if l.is_positive() {
            LBool::True
        } else {
            LBool::False
        };
        self.phase[v.index()] = l.is_positive();
        self.reason[v.index()] = reason;
        self.level[v.index()] = self.decision_level();
        self.trail.push(l);
    }

    /// Unit propagation; returns the conflicting clause if any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.propagations += 1;
            let mut i = 0;
            // Take the watch list to satisfy the borrow checker; we put
            // retained watchers back as we go.
            let mut ws = std::mem::take(&mut self.watches[p.index()]);
            let mut j = 0;
            let mut conflict = None;
            'watchers: while i < ws.len() {
                let w = ws[i];
                i += 1;
                // Quick skip when the blocker is already true.
                if self.value(w.blocker) == LBool::True {
                    ws[j] = w;
                    j += 1;
                    continue;
                }
                let cref = w.clause;
                // Normalize so lits[0] is the other watched literal.
                let (first, len) = {
                    let c = &mut self.clauses[cref as usize];
                    if c.lits[0] == !p {
                        c.lits.swap(0, 1);
                    }
                    debug_assert_eq!(c.lits[1], !p);
                    (c.lits[0], c.lits.len())
                };
                if first != w.blocker && self.value(first) == LBool::True {
                    ws[j] = Watcher {
                        clause: cref,
                        blocker: first,
                    };
                    j += 1;
                    continue;
                }
                // Look for a new literal to watch.
                for k in 2..len {
                    let lk = self.clauses[cref as usize].lits[k];
                    if self.value(lk) != LBool::False {
                        self.clauses[cref as usize].lits.swap(1, k);
                        self.watches[(!lk).index()].push(Watcher {
                            clause: cref,
                            blocker: first,
                        });
                        continue 'watchers;
                    }
                }
                // Clause is unit or conflicting.
                ws[j] = Watcher {
                    clause: cref,
                    blocker: first,
                };
                j += 1;
                if self.value(first) == LBool::False {
                    // Conflict: copy remaining watchers back and bail.
                    while i < ws.len() {
                        ws[j] = ws[i];
                        j += 1;
                        i += 1;
                    }
                    conflict = Some(cref);
                } else {
                    self.unchecked_enqueue(first, Some(cref));
                }
            }
            ws.truncate(j);
            self.watches[p.index()] = ws;
            if let Some(c) = conflict {
                return Some(c);
            }
        }
        None
    }

    // -------------------------------------------------------------- VSIDS

    fn var_bump(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap_sift_up(v);
    }

    fn var_decay(&mut self) {
        self.var_inc /= 0.95;
    }

    fn heap_insert(&mut self, v: Var) {
        if self.heap_index[v.index()] != HEAP_ABSENT {
            return;
        }
        self.heap_index[v.index()] = self.heap.len();
        self.heap.push(v);
        self.heap_sift_up(v);
    }

    fn heap_sift_up(&mut self, v: Var) {
        let mut i = match self.heap_index.get(v.index()) {
            Some(&idx) if idx != HEAP_ABSENT => idx,
            _ => return,
        };
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.activity[self.heap[parent].index()] >= self.activity[self.heap[i].index()] {
                break;
            }
            self.heap_swap(i, parent);
            i = parent;
        }
    }

    fn heap_sift_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len()
                && self.activity[self.heap[l].index()] > self.activity[self.heap[best].index()]
            {
                best = l;
            }
            if r < self.heap.len()
                && self.activity[self.heap[r].index()] > self.activity[self.heap[best].index()]
            {
                best = r;
            }
            if best == i {
                break;
            }
            self.heap_swap(i, best);
            i = best;
        }
    }

    fn heap_swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.heap_index[self.heap[i].index()] = i;
        self.heap_index[self.heap[j].index()] = j;
    }

    fn heap_pop(&mut self) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        self.heap_index[top.index()] = HEAP_ABSENT;
        let last = self.heap.pop().expect("non-empty heap");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.heap_index[last.index()] = 0;
            self.heap_sift_down(0);
        }
        Some(top)
    }

    // ----------------------------------------------------------- analysis

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, confl: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::new(Var(0), true)]; // placeholder for UIP
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut confl = Some(confl);
        loop {
            let cref = confl.expect("conflict clause must exist during analysis");
            let start = usize::from(p.is_some());
            for k in start..self.clauses[cref as usize].lits.len() {
                let q = self.clauses[cref as usize].lits[k];
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.var_bump(v);
                    if self.level[v.index()] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next literal on the trail to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            p = Some(lit);
            self.seen[lit.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                break;
            }
            confl = self.reason[lit.var().index()];
        }
        learnt[0] = !p.expect("first UIP exists");

        // Compute the backjump level (second-highest level in the clause).
        let backjump = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        for l in &learnt {
            self.seen[l.var().index()] = false;
        }
        (learnt, backjump)
    }

    fn backtrack_to(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let target = self.trail_lim[level as usize];
        for i in (target..self.trail.len()).rev() {
            let v = self.trail[i].var();
            self.assign[v.index()] = LBool::Undef;
            self.reason[v.index()] = None;
            self.heap_insert(v);
        }
        self.trail.truncate(target);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    // -------------------------------------------------------------- solve

    /// Solves the current formula with no assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves under the given assumption literals.
    ///
    /// Returns [`SolveResult::Unsat`] if the formula is unsatisfiable when
    /// every assumption is forced true. The solver remains usable (and the
    /// assumptions are dropped) afterwards.
    ///
    /// Each completed call records its counter deltas into any open
    /// [`stats::collect`] scope and, when tracing is enabled, a
    /// `sat.solve` span carrying the deltas as attributes.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        let before = self.stats();
        let span = specrepair_trace::span("sat.solve", specrepair_trace::Phase::Sat);
        let result = self.search(assumptions);
        let mut delta = self.stats().delta_since(&before);
        delta.solves = 1;
        stats::record(&delta);
        if span.is_active() {
            span.attr_bool("sat", result.is_sat());
            span.attr_u64("vars", self.num_vars() as u64);
            span.attr_u64("conflicts", delta.conflicts);
            span.attr_u64("decisions", delta.decisions);
            span.attr_u64("propagations", delta.propagations);
            span.attr_u64("restarts", delta.restarts);
            span.attr_u64("learned_clauses", delta.learned_clauses);
        }
        result
    }

    /// The CDCL search loop behind [`Solver::solve_with_assumptions`].
    fn search(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.backtrack_to(0);
        if !self.ok {
            return SolveResult::Unsat;
        }
        if self.propagate().is_some() {
            self.ok = false;
            return SolveResult::Unsat;
        }
        let mut restart_limit = 64u64;
        let mut conflicts_since_restart = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                self.conflicts += 1;
                conflicts_since_restart += 1;
                if self.decision_level() <= assumptions.len() as u32 {
                    // Conflict at or below the assumption levels: check if it
                    // depends on assumptions; at level 0 it is a real UNSAT.
                    if self.decision_level() == 0 {
                        self.ok = false;
                    } else {
                        self.backtrack_to(0);
                    }
                    return SolveResult::Unsat;
                }
                let (learnt, backjump) = self.analyze(confl);
                self.learned_clauses += 1;
                // Never backjump below the assumption levels.
                let backjump = backjump.max(self.assumption_safe_level(&learnt, assumptions));
                self.backtrack_to(backjump);
                if learnt.len() == 1 {
                    if self.value(learnt[0]) == LBool::Undef {
                        self.unchecked_enqueue(learnt[0], None);
                    } else if self.value(learnt[0]) == LBool::False {
                        self.ok = self.decision_level() > 0;
                        if !self.ok {
                            return SolveResult::Unsat;
                        }
                    }
                } else {
                    let cref = self.attach_clause(learnt.clone());
                    if self.value(learnt[0]) == LBool::Undef {
                        self.unchecked_enqueue(learnt[0], Some(cref));
                    }
                }
                self.var_decay();
                if conflicts_since_restart >= restart_limit {
                    conflicts_since_restart = 0;
                    restart_limit = restart_limit.saturating_mul(3) / 2;
                    self.restarts += 1;
                    self.backtrack_to((assumptions.len() as u32).min(self.decision_level()));
                }
            } else {
                // Place assumptions as pseudo-decisions first.
                let dl = self.decision_level() as usize;
                if dl < assumptions.len() {
                    let a = assumptions[dl];
                    match self.value(a) {
                        LBool::True => {
                            // Already implied: open an empty decision level.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => {
                            self.backtrack_to(0);
                            return SolveResult::Unsat;
                        }
                        LBool::Undef => {
                            self.trail_lim.push(self.trail.len());
                            self.unchecked_enqueue(a, None);
                        }
                    }
                    continue;
                }
                // Normal decision.
                let next = loop {
                    match self.heap_pop() {
                        None => break None,
                        Some(v) if self.assign[v.index()] == LBool::Undef => break Some(v),
                        Some(_) => continue,
                    }
                };
                match next {
                    None => {
                        // All variables assigned: SAT.
                        let model: Vec<bool> = self
                            .assign
                            .iter()
                            .map(|a| matches!(a, LBool::True))
                            .collect();
                        self.backtrack_to(0);
                        return SolveResult::Sat(model);
                    }
                    Some(v) => {
                        self.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let phase = self.phase[v.index()];
                        self.unchecked_enqueue(Lit::new(v, phase), None);
                    }
                }
            }
        }
    }

    /// The minimum level the solver may backjump to without discarding
    /// assumption decisions that the learnt clause depends on.
    ///
    /// Only the assumption levels actually present among the learnt
    /// clause's literals pin the backjump: a conflict whose learnt clause
    /// touches no assumption may jump all the way to level 0 (the search
    /// loop re-places missing assumptions before the next real decision),
    /// while one whose deepest assumption literal sits at level `k` must
    /// keep levels `1..=k` intact so the clause stays asserting. Capped
    /// below the current decision level so the backjump always undoes at
    /// least the conflicting level.
    fn assumption_safe_level(&self, learnt: &[Lit], assumptions: &[Lit]) -> u32 {
        if assumptions.is_empty() {
            return 0;
        }
        let n = assumptions.len() as u32;
        let dl = self.decision_level();
        let mut safe = 0;
        for l in learnt {
            let lv = self.level[l.var().index()];
            if lv <= n && lv > safe {
                safe = lv;
            }
        }
        safe.min(dl.saturating_sub(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: Var, pos: bool) -> Lit {
        Lit::new(v, pos)
    }

    #[test]
    fn trivial_sat() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause([a.positive()]);
        let r = s.solve();
        assert!(r.is_sat());
        assert!(r.model().unwrap()[a.index()]);
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause([a.positive()]);
        s.add_clause([a.negative()]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert!(s.solve().is_sat());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        let _ = s.new_var();
        assert!(!s.add_clause([]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // p[i][j]: pigeon i in hole j; 3 pigeons, 2 holes.
        let mut s = Solver::new();
        let mut p = [[Var(0); 2]; 3];
        for row in p.iter_mut() {
            for cell in row.iter_mut() {
                *cell = s.new_var();
            }
        }
        for row in &p {
            s.add_clause([row[0].positive(), row[1].positive()]);
        }
        for (i1, row1) in p.iter().enumerate() {
            for row2 in &p[i1 + 1..] {
                for (a, b) in row1.iter().zip(row2) {
                    s.add_clause([a.negative(), b.negative()]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn chain_of_implications_propagates() {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..50).map(|_| s.new_var()).collect();
        for w in vars.windows(2) {
            s.add_clause([w[0].negative(), w[1].positive()]);
        }
        s.add_clause([vars[0].positive()]);
        match s.solve() {
            SolveResult::Sat(m) => assert!(vars.iter().all(|v| m[v.index()])),
            SolveResult::Unsat => panic!("expected SAT"),
        }
    }

    #[test]
    fn model_satisfies_formula() {
        let mut cnf = Cnf::new();
        let vars: Vec<Var> = (0..6).map(|_| cnf.fresh_var()).collect();
        cnf.add_clause([lit(vars[0], true), lit(vars[1], false), lit(vars[2], true)]);
        cnf.add_clause([lit(vars[3], false), lit(vars[4], true)]);
        cnf.add_clause([lit(vars[1], true), lit(vars[5], false)]);
        cnf.add_clause([lit(vars[2], false), lit(vars[3], true)]);
        let mut s = Solver::from_cnf(&cnf);
        match s.solve() {
            SolveResult::Sat(m) => assert_eq!(cnf.eval(&m), Some(true)),
            SolveResult::Unsat => panic!("expected SAT"),
        }
    }

    #[test]
    fn assumptions_constrain_and_release() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([a.positive(), b.positive()]);
        // Assuming !a forces b.
        match s.solve_with_assumptions(&[a.negative()]) {
            SolveResult::Sat(m) => {
                assert!(!m[a.index()]);
                assert!(m[b.index()]);
            }
            SolveResult::Unsat => panic!("expected SAT"),
        }
        // Conflicting assumptions: UNSAT, but solver still usable.
        s.add_clause([a.positive()]);
        assert_eq!(
            s.solve_with_assumptions(&[a.negative()]),
            SolveResult::Unsat
        );
        assert!(s.solve().is_sat());
    }

    #[test]
    fn incremental_blocking_clauses_enumerate_models() {
        // 2 free variables -> 4 models.
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([a.positive(), a.negative()]); // touch both vars
        s.add_clause([b.positive(), b.negative()]);
        let mut count = 0;
        while let SolveResult::Sat(m) = s.solve() {
            count += 1;
            assert!(count <= 4, "enumerated too many models");
            let block: Vec<Lit> = [a, b].iter().map(|&v| Lit::new(v, !m[v.index()])).collect();
            if !s.add_clause(block) {
                break;
            }
        }
        assert_eq!(count, 4);
    }

    #[test]
    fn statistics_accumulate() {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..20).map(|_| s.new_var()).collect();
        for w in vars.chunks(3) {
            if w.len() == 3 {
                s.add_clause([w[0].positive(), w[1].positive(), w[2].positive()]);
                s.add_clause([w[0].negative(), w[1].negative()]);
            }
        }
        let _ = s.solve();
        assert!(s.num_decisions() > 0 || s.num_propagations() > 0);
        assert_eq!(s.num_vars(), 20);
        let stats = s.stats();
        assert_eq!(stats.conflicts, s.num_conflicts());
        assert_eq!(stats.decisions, s.num_decisions());
        assert_eq!(stats.propagations, s.num_propagations());
        assert_eq!(stats.restarts, s.num_restarts());
        assert_eq!(stats.learned_clauses, s.num_learned_clauses());
    }

    #[test]
    fn assumption_safe_level_inspects_the_learnt_clause() {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..5).map(|_| s.new_var()).collect();
        let assumptions: Vec<Lit> = vars[..3].iter().map(|v| v.positive()).collect();
        // Mirror the search loop: three assumption pseudo-decisions at
        // levels 1..=3, then one real decision at level 4.
        for &a in &assumptions {
            s.trail_lim.push(s.trail.len());
            s.unchecked_enqueue(a, None);
        }
        s.trail_lim.push(s.trail.len());
        s.unchecked_enqueue(vars[3].positive(), None);
        assert_eq!(s.decision_level(), 4);
        // A learnt clause touching only assumption level 2 pins the
        // backjump there, not at the full prefix depth of 3.
        let learnt = [vars[4].negative(), vars[1].negative()];
        assert_eq!(s.assumption_safe_level(&learnt, &assumptions), 2);
        // One touching no assumption at all releases the jump to level 0.
        let learnt = [vars[4].negative()];
        assert_eq!(s.assumption_safe_level(&learnt, &assumptions), 0);
        // With no assumptions the prefix never constrains anything.
        assert_eq!(s.assumption_safe_level(&learnt, &[]), 0);
    }

    #[test]
    fn backjumps_below_unrelated_assumptions_stay_sound() {
        // Pigeonhole 6-into-5 with six extra free variables assumed
        // positive: every core conflict learns a clause over pigeon
        // variables only, so the backjump may now cross the assumption
        // prefix entirely. The verdict and the follow-up solves must match
        // what adding the assumptions as unit clauses yields.
        let build = |s: &mut Solver| -> (Vec<Lit>, Vec<Vec<Var>>) {
            let free: Vec<Lit> = (0..6).map(|_| s.new_var().positive()).collect();
            let p: Vec<Vec<Var>> = (0..6)
                .map(|_| (0..5).map(|_| s.new_var()).collect())
                .collect();
            for row in &p {
                s.add_clause(row.iter().map(|v| v.positive()));
            }
            for (i1, row1) in p.iter().enumerate() {
                for row2 in &p[i1 + 1..] {
                    for (a, b) in row1.iter().zip(row2) {
                        s.add_clause([a.negative(), b.negative()]);
                    }
                }
            }
            (free, p)
        };
        let mut s = Solver::new();
        let (free, p) = build(&mut s);
        assert_eq!(s.solve_with_assumptions(&free), SolveResult::Unsat);
        // The solver survives the UNSAT answer: releasing pigeon 5 (allow
        // it to share hole 0 with anyone) makes the core satisfiable, and
        // the model must honor every assumption despite the deep backjumps
        // the search performed.
        for row in &p[..5] {
            s.add_clause([row[0].negative(), p[5][0].positive()]);
        }
        let relax = s.new_var();
        s.add_clause([relax.positive()]);
        let mut assumptions = free.clone();
        assumptions.push(relax.positive());
        match s.solve_with_assumptions(&assumptions) {
            SolveResult::Sat(_) => panic!("pigeonhole stays UNSAT"),
            SolveResult::Unsat => {}
        }
        // A satisfiable formula under many unrelated assumptions: chain of
        // implications plus the free prefix.
        let mut s2 = Solver::new();
        let free2: Vec<Lit> = (0..8).map(|_| s2.new_var().positive()).collect();
        let chain: Vec<Var> = (0..30).map(|_| s2.new_var()).collect();
        for w in chain.windows(2) {
            s2.add_clause([w[0].negative(), w[1].positive()]);
        }
        s2.add_clause([chain[0].positive()]);
        match s2.solve_with_assumptions(&free2) {
            SolveResult::Sat(m) => {
                for a in &free2 {
                    assert_eq!(m[a.var().index()], a.is_positive());
                }
                assert!(chain.iter().all(|v| m[v.index()]));
            }
            SolveResult::Unsat => panic!("expected SAT"),
        }
    }

    #[test]
    fn conflicts_learn_clauses_and_hard_instances_restart() {
        // Pigeonhole 7-into-6: plenty of conflicts, enough to trip the
        // 64-conflict geometric restart schedule.
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..7)
            .map(|_| (0..6).map(|_| s.new_var()).collect())
            .collect();
        for row in &p {
            s.add_clause(row.iter().map(|v| v.positive()));
        }
        for (i1, row1) in p.iter().enumerate() {
            for row2 in &p[i1 + 1..] {
                for (a, b) in row1.iter().zip(row2) {
                    s.add_clause([a.negative(), b.negative()]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.num_conflicts() > 64, "conflicts: {}", s.num_conflicts());
        assert!(s.num_learned_clauses() > 0);
        assert!(
            s.num_learned_clauses() <= s.num_conflicts(),
            "at most one learnt clause per conflict"
        );
        assert!(s.num_restarts() > 0, "restart schedule never fired");
    }
}
