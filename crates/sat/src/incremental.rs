//! Incremental candidate checking: one persistent solver shared across a
//! sequence of activation-guarded roots.
//!
//! Repair candidates are tiny mutations of one specification, so their
//! circuits share nearly every gate. An [`IncrementalSession`] keeps a
//! single [`Solver`] alive across checks: each candidate's root is Tseitin
//! encoded into the shared solver via [`Circuit::encode_literal`] (gates
//! already encoded by earlier candidates cost nothing), guarded by a fresh
//! *activation literal* `act` through the clause `¬act ∨ root`, and solved
//! under the assumption `act`. Because assumptions are decisions rather
//! than clauses, every clause the solver learns is a resolvent of real
//! (definitional or guard) clauses and therefore globally valid — learnt
//! clauses over the shared skeleton transfer to every later check. A
//! retired candidate is invalidated by asserting `¬act` as a unit clause,
//! which permanently satisfies its guard clause; the positive activation
//! literal never occurs in any clause, so retirement can never conflict.

use crate::circuit::{BoolRef, Circuit};
use crate::cnf::Lit;
use crate::solver::{SolveResult, Solver};

/// Counters of one [`IncrementalSession`], all monotonic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Candidate checks performed.
    pub checks: u64,
    /// Activation variables allocated (one per check).
    pub activation_vars: u64,
    /// Clauses already present in the solver at the start of each check,
    /// summed over checks — the work retained from earlier candidates.
    pub clauses_reused: u64,
    /// Clauses present after each check's encoding, summed over checks.
    pub clauses_total: u64,
    /// Learnt clauses carried into each check from earlier ones, summed
    /// over checks.
    pub learned_retained: u64,
}

impl SessionStats {
    /// Fraction of per-check clauses that were retained from earlier
    /// checks rather than re-encoded (0.0 before the first check).
    pub fn clause_reuse_rate(&self) -> f64 {
        if self.clauses_total == 0 {
            0.0
        } else {
            self.clauses_reused as f64 / self.clauses_total as f64
        }
    }
}

/// A persistent solve-under-assumptions session over one growing
/// [`Circuit`].
///
/// # Example
///
/// ```
/// use mualloy_sat::{Circuit, IncrementalSession};
///
/// let mut c = Circuit::new();
/// let x = c.input();
/// let y = c.input();
/// let mut session = IncrementalSession::new();
/// let both = c.and(x, y);
/// assert!(session.check(&c, both).is_sat());
/// let neither = c.and(!x, !y);
/// assert!(session.check(&c, neither).is_sat());
/// let contradiction = c.and(both, neither);
/// assert!(!session.check(&c, contradiction).is_sat());
/// assert_eq!(session.stats().checks, 3);
/// ```
#[derive(Debug, Default)]
pub struct IncrementalSession {
    solver: Solver,
    input_lits: Vec<Lit>,
    node_lit: Vec<Option<Lit>>,
    /// The activation literal of the current (most recent) candidate;
    /// retired with a `¬act` unit clause when the next one arrives.
    active: Option<Lit>,
    stats: SessionStats,
}

impl IncrementalSession {
    /// Creates an empty session.
    pub fn new() -> IncrementalSession {
        IncrementalSession::default()
    }

    /// Checks the satisfiability of `root` over `circuit`, reusing every
    /// clause (encoded and learnt) from earlier checks.
    ///
    /// `circuit` must be the same circuit across all checks of one session
    /// (it may have grown since the last call). The previously checked
    /// root, if any, is invalidated first.
    ///
    /// On SAT, the returned model is indexed by solver variable; decode
    /// inputs through [`IncrementalSession::input_lits`].
    pub fn check(&mut self, circuit: &Circuit, root: BoolRef) -> SolveResult {
        let span = specrepair_trace::span("sat.incremental_check", specrepair_trace::Phase::Sat);
        if let Some(prev) = self.active.take() {
            // Invalidate the retired variant: its guard clause is satisfied
            // forever and its activation literal can never be assumed again.
            self.solver.add_clause([!prev]);
        }
        let clauses_before = self.solver.num_clauses() as u64;
        let learned_before = self.solver.num_learned_clauses();
        let root_lit = circuit.encode_literal(
            root,
            &mut self.solver,
            &mut self.input_lits,
            &mut self.node_lit,
        );
        let act = self.solver.new_var().positive();
        self.solver.add_clause([!act, root_lit]);
        self.active = Some(act);
        self.stats.checks += 1;
        self.stats.activation_vars += 1;
        self.stats.clauses_reused += clauses_before;
        self.stats.clauses_total += self.solver.num_clauses() as u64;
        self.stats.learned_retained += learned_before;
        let result = self.solver.solve_with_assumptions(&[act]);
        if span.is_active() {
            span.attr_bool("sat", result.is_sat());
            span.attr_u64("check", self.stats.checks);
            span.attr_u64("clauses", self.solver.num_clauses() as u64);
        }
        result
    }

    /// The solver literal of each circuit input encoded so far
    /// (`input_lits()[i]` is circuit input `i`). Models returned by
    /// [`IncrementalSession::check`] are decoded through this map.
    pub fn input_lits(&self) -> &[Lit] {
        &self.input_lits
    }

    /// The session's counters.
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// The underlying persistent solver (read-only).
    pub fn solver(&self) -> &Solver {
        &self.solver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Decodes a model into circuit-input values.
    fn inputs_of(session: &IncrementalSession, model: &[bool]) -> Vec<bool> {
        session
            .input_lits()
            .iter()
            .map(|l| model[l.var().index()] == l.is_positive())
            .collect()
    }

    #[test]
    fn agrees_with_cold_solver_across_mutations() {
        let mut c = Circuit::new();
        let xs: Vec<BoolRef> = (0..4).map(|_| c.input()).collect();
        let skeleton = c.exactly_one(&xs[..3]);
        let mut session = IncrementalSession::new();
        // A sequence of "candidates": the skeleton conjoined with varying
        // mutated fragments, including an UNSAT one.
        let variants: Vec<BoolRef> = vec![
            xs[3],
            !xs[3],
            c.and(xs[0], xs[1]), // contradicts exactly-one: UNSAT
            c.or(xs[0], xs[3]),
            Circuit::TRUE,
            Circuit::FALSE,
        ];
        for &v in &variants {
            let root = c.and(skeleton, v);
            let incremental = session.check(&c, root);
            let mut cold = Solver::new();
            let _ = c.encode(root, &mut cold);
            assert_eq!(incremental.is_sat(), cold.solve().is_sat());
            if let SolveResult::Sat(m) = &incremental {
                let vals = inputs_of(&session, m);
                assert!(c.eval(root, &vals), "witness must satisfy the root");
            }
        }
        assert_eq!(session.stats().checks, variants.len() as u64);
        assert!(session.stats().clause_reuse_rate() > 0.0);
    }

    #[test]
    fn unsat_candidates_do_not_poison_later_checks() {
        let mut c = Circuit::new();
        let x = c.input();
        let contradiction = c.and(x, !x);
        let mut session = IncrementalSession::new();
        assert!(!session.check(&c, contradiction).is_sat());
        assert!(!session.check(&c, Circuit::FALSE).is_sat());
        assert!(session.check(&c, x).is_sat());
        assert!(session.check(&c, Circuit::TRUE).is_sat());
    }

    #[test]
    fn learned_clauses_are_retained() {
        // A pigeonhole-style core forces conflicts; the second check over
        // the same skeleton starts with the first check's learnt clauses.
        let mut c = Circuit::new();
        let p: Vec<Vec<BoolRef>> = (0..4)
            .map(|_| (0..3).map(|_| c.input()).collect())
            .collect();
        let mut parts: Vec<BoolRef> = p.iter().map(|row| c.or_many(row.clone())).collect();
        for i in 0..p.len() {
            for j in (i + 1)..p.len() {
                let (pi, pj) = (p[i].clone(), p[j].clone());
                for (&a, &b) in pi.iter().zip(&pj) {
                    let both = c.and(a, b);
                    parts.push(!both);
                }
            }
        }
        let skeleton = c.and_many(parts);
        let extra = c.input();
        let mut session = IncrementalSession::new();
        let first = c.and(skeleton, extra);
        assert!(!session.check(&c, first).is_sat());
        let second = c.and(skeleton, !extra);
        assert!(!session.check(&c, second).is_sat());
        let stats = session.stats();
        assert_eq!(stats.checks, 2);
        assert_eq!(stats.activation_vars, 2);
        assert!(
            stats.learned_retained > 0,
            "second check must inherit learnt clauses: {stats:?}"
        );
    }

    #[test]
    fn stats_reuse_rate_bounds() {
        let stats = SessionStats::default();
        assert_eq!(stats.clause_reuse_rate(), 0.0);
        let mut c = Circuit::new();
        let x = c.input();
        let y = c.input();
        let mut session = IncrementalSession::new();
        let a = c.and(x, y);
        session.check(&c, a);
        let b = c.or(x, y);
        let b = c.and(a, b);
        session.check(&c, b);
        let rate = session.stats().clause_reuse_rate();
        assert!((0.0..=1.0).contains(&rate), "rate {rate}");
        assert!(rate > 0.0, "shared gates must be reused");
    }
}
