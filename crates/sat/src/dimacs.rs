//! DIMACS CNF import/export.
//!
//! The de-facto interchange format for SAT problems, supported so the
//! μAlloy translation can be inspected with (or cross-checked against)
//! off-the-shelf solvers, and so standard benchmark instances can exercise
//! the CDCL core.

use crate::cnf::{Cnf, Lit, Var};
use std::fmt::Write as _;

/// Error raised when parsing a DIMACS file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimacsError {
    message: String,
    line: usize,
}

impl ParseDimacsError {
    fn new(message: impl Into<String>, line: usize) -> Self {
        ParseDimacsError {
            message: message.into(),
            line,
        }
    }

    /// Human-readable description.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// 1-based line number of the offending input.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl std::fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DIMACS parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseDimacsError {}

/// Parses a DIMACS CNF document.
///
/// Comment lines (`c …`) are skipped; the `p cnf V C` header is validated;
/// clauses are zero-terminated integer lists and may span lines.
///
/// # Errors
///
/// Returns [`ParseDimacsError`] on malformed headers, non-integer tokens,
/// variables exceeding the declared count, or a clause count mismatch.
pub fn parse_dimacs(input: &str) -> Result<Cnf, ParseDimacsError> {
    let mut declared: Option<(usize, usize)> = None;
    let mut cnf = Cnf::new();
    let mut current: Vec<Lit> = Vec::new();
    let mut clauses_read = 0usize;

    for (lineno, raw) in input.lines().enumerate() {
        let line = raw.trim();
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with('c') || line.starts_with('%') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            if declared.is_some() {
                return Err(ParseDimacsError::new("duplicate problem line", lineno));
            }
            let parts: Vec<&str> = rest.split_whitespace().collect();
            if parts.len() != 3 || parts[0] != "cnf" {
                return Err(ParseDimacsError::new(
                    "expected `p cnf <vars> <clauses>`",
                    lineno,
                ));
            }
            let vars: usize = parts[1]
                .parse()
                .map_err(|_| ParseDimacsError::new("bad variable count", lineno))?;
            let clauses: usize = parts[2]
                .parse()
                .map_err(|_| ParseDimacsError::new("bad clause count", lineno))?;
            for _ in 0..vars {
                cnf.fresh_var();
            }
            declared = Some((vars, clauses));
            continue;
        }
        let Some((vars, _)) = declared else {
            return Err(ParseDimacsError::new("clause before problem line", lineno));
        };
        for tok in line.split_whitespace() {
            let v: i64 = tok
                .parse()
                .map_err(|_| ParseDimacsError::new(format!("bad literal `{tok}`"), lineno))?;
            if v == 0 {
                cnf.add_clause(current.drain(..));
                clauses_read += 1;
            } else {
                let idx = v.unsigned_abs() as usize;
                if idx > vars {
                    return Err(ParseDimacsError::new(
                        format!("literal {v} exceeds declared {vars} variables"),
                        lineno,
                    ));
                }
                current.push(Lit::new(Var((idx - 1) as u32), v > 0));
            }
        }
    }
    let Some((_, clauses)) = declared else {
        return Err(ParseDimacsError::new("missing problem line", 0));
    };
    if !current.is_empty() {
        return Err(ParseDimacsError::new("unterminated final clause", 0));
    }
    if clauses_read != clauses {
        return Err(ParseDimacsError::new(
            format!("declared {clauses} clauses, found {clauses_read}"),
            0,
        ));
    }
    Ok(cnf)
}

/// Renders a formula as a DIMACS CNF document.
pub fn to_dimacs(cnf: &Cnf) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p cnf {} {}", cnf.num_vars(), cnf.clauses().len());
    for clause in cnf.clauses() {
        for &l in clause {
            let v = (l.var().0 + 1) as i64;
            let _ = write!(out, "{} ", if l.is_positive() { v } else { -v });
        }
        let _ = writeln!(out, "0");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{SolveResult, Solver};

    const SAMPLE: &str = "c a tiny instance\np cnf 3 2\n1 -2 0\n2 3 0\n";

    #[test]
    fn parse_roundtrips_through_render() {
        let cnf = parse_dimacs(SAMPLE).unwrap();
        assert_eq!(cnf.num_vars(), 3);
        assert_eq!(cnf.clauses().len(), 2);
        let rendered = to_dimacs(&cnf);
        let back = parse_dimacs(&rendered).unwrap();
        assert_eq!(cnf, back);
    }

    #[test]
    fn clauses_may_span_lines() {
        let cnf = parse_dimacs("p cnf 2 1\n1\n-2\n0\n").unwrap();
        assert_eq!(cnf.clauses().len(), 1);
        assert_eq!(cnf.clauses()[0].len(), 2);
    }

    #[test]
    fn parsed_instances_solve() {
        // (x1 | !x2) & (x2 | x3) & (!x1) & (!x3) => x2 & !x2 path: UNSAT?
        // !x1, so clause1 needs !x2; clause2 needs x3; but !x3 -> UNSAT.
        let cnf = parse_dimacs("p cnf 3 4\n1 -2 0\n2 3 0\n-1 0\n-3 0\n").unwrap();
        let mut s = Solver::from_cnf(&cnf);
        assert_eq!(s.solve(), SolveResult::Unsat);
        let sat = parse_dimacs(SAMPLE).unwrap();
        let mut s = Solver::from_cnf(&sat);
        match s.solve() {
            SolveResult::Sat(m) => assert_eq!(sat.eval(&m[..3]), Some(true)),
            SolveResult::Unsat => panic!("expected SAT"),
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_dimacs("").is_err());
        assert!(parse_dimacs("1 2 0").is_err()); // clause before header
        assert!(parse_dimacs("p cnf x 2").is_err());
        assert!(parse_dimacs("p cnf 2 1\n3 0\n").is_err()); // var out of range
        assert!(parse_dimacs("p cnf 2 2\n1 0\n").is_err()); // count mismatch
        assert!(parse_dimacs("p cnf 2 1\n1 2\n").is_err()); // unterminated
        assert!(parse_dimacs("p cnf 1 0\np cnf 1 0").is_err()); // dup header
        let e = parse_dimacs("p cnf 2 1\nfoo 0\n").unwrap_err();
        assert_eq!(e.line(), 2);
        assert!(e.to_string().contains("foo"));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let cnf = parse_dimacs("c hi\n\n% weird but seen in the wild\np cnf 1 1\n1 0\n").unwrap();
        assert_eq!(cnf.clauses().len(), 1);
    }
}
