//! # mualloy-sat
//!
//! A from-scratch CDCL SAT solver and boolean-circuit layer, playing the
//! role MiniSat/Kodkod's backend plays for the real Alloy Analyzer.
//!
//! - [`Solver`]: conflict-driven clause learning with two-watched literals,
//!   first-UIP learning, VSIDS, phase saving, restarts and assumptions;
//! - [`Circuit`]: hash-consed AND/OR/NOT circuits with constant folding,
//!   cardinality gates and Tseitin encoding into a [`Solver`];
//! - [`Cnf`]: plain clause storage for tests and cross-checking.
//!
//! # Example
//!
//! ```
//! use mualloy_sat::{Circuit, Solver, SolveResult};
//!
//! let mut circuit = Circuit::new();
//! let a = circuit.input();
//! let b = circuit.input();
//! let one_of = circuit.exactly_one(&[a, b]);
//! let mut solver = Solver::new();
//! let inputs = circuit.encode(one_of, &mut solver);
//! let SolveResult::Sat(model) = solver.solve() else { panic!("satisfiable") };
//! let a_val = model[inputs[0].var().index()];
//! let b_val = model[inputs[1].var().index()];
//! assert!(a_val ^ b_val);
//! ```

#![warn(missing_docs)]

pub mod circuit;
pub mod cnf;
pub mod dimacs;
pub mod incremental;
pub mod solver;
pub mod stats;

pub use circuit::{BoolRef, Circuit};
pub use cnf::{Cnf, Lit, Var};
pub use dimacs::{parse_dimacs, to_dimacs, ParseDimacsError};
pub use incremental::{IncrementalSession, SessionStats};
pub use solver::{SolveResult, Solver};
pub use stats::SolverStats;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Brute-force satisfiability over all assignments (for small n).
    fn brute_force_sat(cnf: &Cnf) -> bool {
        let n = cnf.num_vars() as usize;
        assert!(n <= 16);
        (0..(1u32 << n)).any(|bits| {
            let assignment: Vec<bool> = (0..n).map(|i| bits & (1 << i) != 0).collect();
            cnf.eval(&assignment) == Some(true)
        })
    }

    fn arb_cnf() -> impl Strategy<Value = Cnf> {
        // Up to 8 variables, up to 24 clauses of width 1..=4.
        (
            1u32..=8,
            proptest::collection::vec(
                proptest::collection::vec((0u32..8, any::<bool>()), 1..=4),
                0..24,
            ),
        )
            .prop_map(|(nvars, raw)| {
                let mut cnf = Cnf::new();
                for _ in 0..nvars {
                    cnf.fresh_var();
                }
                for clause in raw {
                    let lits: Vec<Lit> = clause
                        .into_iter()
                        .map(|(v, pos)| Lit::new(Var(v % nvars), pos))
                        .collect();
                    cnf.add_clause(lits);
                }
                cnf
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// CDCL agrees with brute force on random small CNFs, and when SAT
        /// the returned model satisfies the formula.
        #[test]
        fn cdcl_matches_brute_force(cnf in arb_cnf()) {
            let expected = brute_force_sat(&cnf);
            let mut solver = Solver::from_cnf(&cnf);
            match solver.solve() {
                SolveResult::Sat(m) => {
                    prop_assert!(expected, "solver said SAT but formula is UNSAT");
                    prop_assert_eq!(cnf.eval(&m[..cnf.num_vars() as usize]), Some(true));
                }
                SolveResult::Unsat => prop_assert!(!expected, "solver said UNSAT but formula is SAT"),
            }
        }

        /// Solving under assumptions equals solving the formula with the
        /// assumptions added as unit clauses — including multi-assumption
        /// prefixes, which exercise backjumps across unrelated assumption
        /// levels.
        #[test]
        fn assumptions_equal_units(
            cnf in arb_cnf(),
            polarities in proptest::collection::vec(any::<bool>(), 1..=4),
        ) {
            let n = cnf.num_vars();
            let assumptions: Vec<Lit> = polarities
                .iter()
                .enumerate()
                .map(|(i, &pos)| Lit::new(Var(i as u32 % n), pos))
                .collect();
            let mut with_assumption = Solver::from_cnf(&cnf);
            let r1 = with_assumption.solve_with_assumptions(&assumptions).is_sat();
            let mut with_unit = Solver::from_cnf(&cnf);
            for &a in &assumptions {
                with_unit.add_clause([a]);
            }
            let r2 = with_unit.solve().is_sat();
            prop_assert_eq!(r1, r2);
        }
    }
}
