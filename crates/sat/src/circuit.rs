//! Hash-consed boolean circuits with Tseitin CNF encoding.
//!
//! The μAlloy translator compiles relational formulas into a [`Circuit`] —
//! a DAG of AND/OR gates over input variables, with negation represented by
//! signed references. Structural hashing plus constant folding keep the
//! circuit compact before it is encoded into a [`Solver`] via the Tseitin
//! transformation.

use crate::cnf::Lit;
use crate::solver::Solver;
use std::collections::HashMap;

/// A signed reference to a circuit node; negative means negated.
///
/// The constants are [`Circuit::TRUE`] and [`Circuit::FALSE`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BoolRef(i32);

impl BoolRef {
    /// The negation of this reference.
    pub fn negate(self) -> BoolRef {
        BoolRef(-self.0)
    }

    fn node(self) -> usize {
        (self.0.unsigned_abs() as usize) - 1
    }

    fn is_negated(self) -> bool {
        self.0 < 0
    }
}

impl std::ops::Not for BoolRef {
    type Output = BoolRef;

    fn not(self) -> BoolRef {
        self.negate()
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Node {
    ConstTrue,
    Input(u32),
    And(Vec<BoolRef>),
    Or(Vec<BoolRef>),
}

/// A boolean circuit builder with structural sharing.
///
/// # Example
///
/// ```
/// use mualloy_sat::{Circuit, Solver, SolveResult};
///
/// let mut c = Circuit::new();
/// let x = c.input();
/// let y = c.input();
/// let both = c.and(x, y);
/// let root = c.or(both, !x);
/// let mut solver = Solver::new();
/// let inputs = c.encode(root, &mut solver);
/// assert!(solver.solve().is_sat());
/// assert_eq!(inputs.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    nodes: Vec<Node>,
    dedup: HashMap<Node, i32>,
    num_inputs: u32,
}

impl Circuit {
    /// The constant-true reference.
    pub const TRUE: BoolRef = BoolRef(1);
    /// The constant-false reference.
    pub const FALSE: BoolRef = BoolRef(-1);

    /// Creates an empty circuit.
    pub fn new() -> Circuit {
        let mut c = Circuit::default();
        c.nodes.push(Node::ConstTrue);
        c
    }

    /// Number of input variables allocated so far.
    pub fn num_inputs(&self) -> u32 {
        self.num_inputs
    }

    /// Number of nodes (gates + inputs + the constant).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Allocates a fresh input variable.
    pub fn input(&mut self) -> BoolRef {
        let id = self.num_inputs;
        self.num_inputs += 1;
        self.nodes.push(Node::Input(id));
        BoolRef(self.nodes.len() as i32)
    }

    /// Returns the input id if the reference is a (possibly negated) input.
    pub fn as_input(&self, r: BoolRef) -> Option<(u32, bool)> {
        match &self.nodes[r.node()] {
            Node::Input(id) => Some((*id, !r.is_negated())),
            _ => None,
        }
    }

    fn constant(value: bool) -> BoolRef {
        if value {
            Circuit::TRUE
        } else {
            Circuit::FALSE
        }
    }

    /// Whether the reference is the constant true/false.
    pub fn as_constant(&self, r: BoolRef) -> Option<bool> {
        if r == Circuit::TRUE {
            Some(true)
        } else if r == Circuit::FALSE {
            Some(false)
        } else {
            None
        }
    }

    fn mk_gate(&mut self, is_and: bool, mut children: Vec<BoolRef>) -> BoolRef {
        let absorbing = Circuit::constant(!is_and);
        let identity = Circuit::constant(is_and);
        children.retain(|&c| c != identity);
        if children.contains(&absorbing) {
            return absorbing;
        }
        children.sort_unstable();
        children.dedup();
        // Complementary pair detection (sorted so x and !x may not be
        // adjacent; scan pairwise via set membership).
        for i in 0..children.len() {
            if children[i..].binary_search(&children[i].negate()).is_ok()
                || children[..i].binary_search(&children[i].negate()).is_ok()
            {
                return absorbing;
            }
        }
        match children.len() {
            0 => identity,
            1 => children[0],
            _ => {
                let node = if is_and {
                    Node::And(children)
                } else {
                    Node::Or(children)
                };
                if let Some(&idx) = self.dedup.get(&node) {
                    return BoolRef(idx);
                }
                self.nodes.push(node.clone());
                let idx = self.nodes.len() as i32;
                self.dedup.insert(node, idx);
                BoolRef(idx)
            }
        }
    }

    /// Conjunction of two references.
    pub fn and(&mut self, a: BoolRef, b: BoolRef) -> BoolRef {
        self.and_many(vec![a, b])
    }

    /// Disjunction of two references.
    pub fn or(&mut self, a: BoolRef, b: BoolRef) -> BoolRef {
        self.or_many(vec![a, b])
    }

    /// Conjunction of many references.
    pub fn and_many(&mut self, children: Vec<BoolRef>) -> BoolRef {
        self.mk_gate(true, children)
    }

    /// Disjunction of many references.
    pub fn or_many(&mut self, children: Vec<BoolRef>) -> BoolRef {
        self.mk_gate(false, children)
    }

    /// Implication `a -> b`.
    pub fn implies(&mut self, a: BoolRef, b: BoolRef) -> BoolRef {
        self.or(!a, b)
    }

    /// Biconditional `a <-> b`.
    pub fn iff(&mut self, a: BoolRef, b: BoolRef) -> BoolRef {
        let pos = self.or(!a, b);
        let neg = self.or(a, !b);
        self.and(pos, neg)
    }

    /// If-then-else `c ? t : e`.
    pub fn ite(&mut self, c: BoolRef, t: BoolRef, e: BoolRef) -> BoolRef {
        let pos = self.or(!c, t);
        let neg = self.or(c, e);
        self.and(pos, neg)
    }

    /// True iff at most one of `lits` is true (pairwise encoding).
    pub fn at_most_one(&mut self, lits: &[BoolRef]) -> BoolRef {
        let mut constraints = Vec::new();
        for i in 0..lits.len() {
            for j in (i + 1)..lits.len() {
                let pair = self.and(lits[i], lits[j]);
                constraints.push(!pair);
            }
        }
        self.and_many(constraints)
    }

    /// True iff exactly one of `lits` is true.
    pub fn exactly_one(&mut self, lits: &[BoolRef]) -> BoolRef {
        let amo = self.at_most_one(lits);
        let alo = self.or_many(lits.to_vec());
        self.and(amo, alo)
    }

    /// True iff at least `k` of `lits` are true (sequential-counter DP).
    pub fn count_ge(&mut self, lits: &[BoolRef], k: usize) -> BoolRef {
        if k == 0 {
            return Circuit::TRUE;
        }
        if k > lits.len() {
            return Circuit::FALSE;
        }
        // dp[j] = "at least j of the literals seen so far are true".
        let mut dp: Vec<BoolRef> = vec![Circuit::FALSE; k + 1];
        dp[0] = Circuit::TRUE;
        for &l in lits {
            for j in (1..=k).rev() {
                let carry = self.and(dp[j - 1], l);
                dp[j] = self.or(dp[j], carry);
            }
        }
        dp[k]
    }

    /// True iff exactly `k` of `lits` are true.
    pub fn count_eq(&mut self, lits: &[BoolRef], k: usize) -> BoolRef {
        let ge_k = self.count_ge(lits, k);
        let ge_k1 = self.count_ge(lits, k + 1);
        self.and(ge_k, !ge_k1)
    }

    /// Evaluates `root` under the given input assignment.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is shorter than [`Circuit::num_inputs`].
    pub fn eval(&self, root: BoolRef, inputs: &[bool]) -> bool {
        assert!(inputs.len() >= self.num_inputs as usize);
        let mut memo: Vec<Option<bool>> = vec![None; self.nodes.len()];
        self.eval_node(root, inputs, &mut memo)
    }

    fn eval_node(&self, r: BoolRef, inputs: &[bool], memo: &mut Vec<Option<bool>>) -> bool {
        let idx = r.node();
        let v = match memo[idx] {
            Some(v) => v,
            None => {
                let v = match &self.nodes[idx] {
                    Node::ConstTrue => true,
                    Node::Input(i) => inputs[*i as usize],
                    Node::And(cs) => {
                        let cs = cs.clone();
                        cs.iter().all(|&c| self.eval_node(c, inputs, memo))
                    }
                    Node::Or(cs) => {
                        let cs = cs.clone();
                        cs.iter().any(|&c| self.eval_node(c, inputs, memo))
                    }
                };
                memo[idx] = Some(v);
                v
            }
        };
        v != r.is_negated()
    }

    /// Tseitin-encodes the constraint `root = true` into `solver`.
    ///
    /// Returns, for each circuit input id, the solver literal representing
    /// it (so callers can decode models and add further constraints). Every
    /// input is allocated a solver variable even if unreachable from `root`,
    /// keeping input ids stable across multiple encodes.
    pub fn encode(&self, root: BoolRef, solver: &mut Solver) -> Vec<Lit> {
        let input_lits: Vec<Lit> = (0..self.num_inputs)
            .map(|_| solver.new_var().positive())
            .collect();
        if let Some(c) = self.as_constant(root) {
            if !c {
                // Assert falsity via an empty clause.
                solver.add_clause([]);
            }
            return input_lits;
        }
        let mut node_lit: Vec<Option<Lit>> = vec![None; self.nodes.len()];
        let root_lit = self.encode_node(root.node(), solver, &input_lits, &mut node_lit);
        let asserted = if root.is_negated() {
            !root_lit
        } else {
            root_lit
        };
        solver.add_clause([asserted]);
        input_lits
    }

    /// Tseitin-encodes `root` into `solver` **without asserting it**,
    /// returning the literal that is true iff the root holds.
    ///
    /// Unlike [`Circuit::encode`] this supports persistent sessions: the
    /// caller owns the `input_lits` and `node_lit` caches and passes them
    /// back on every call against the same (growing) circuit, so gates
    /// shared between successive roots are encoded exactly once and their
    /// definitional clauses stay in the solver. Inputs and gates added to
    /// the circuit since the previous call are allocated on demand;
    /// constant roots flow through the shared `ConstTrue` node instead of
    /// poisoning the solver with an empty clause.
    pub fn encode_literal(
        &self,
        root: BoolRef,
        solver: &mut Solver,
        input_lits: &mut Vec<Lit>,
        node_lit: &mut Vec<Option<Lit>>,
    ) -> Lit {
        while input_lits.len() < self.num_inputs as usize {
            input_lits.push(solver.new_var().positive());
        }
        node_lit.resize(self.nodes.len(), None);
        let lit = self.encode_node(root.node(), solver, input_lits, node_lit);
        if root.is_negated() {
            !lit
        } else {
            lit
        }
    }

    fn encode_node(
        &self,
        idx: usize,
        solver: &mut Solver,
        input_lits: &[Lit],
        node_lit: &mut Vec<Option<Lit>>,
    ) -> Lit {
        if let Some(l) = node_lit[idx] {
            return l;
        }
        let lit = match &self.nodes[idx] {
            Node::ConstTrue => {
                let v = solver.new_var();
                solver.add_clause([v.positive()]);
                v.positive()
            }
            Node::Input(i) => input_lits[*i as usize],
            Node::And(cs) => {
                let child_lits: Vec<Lit> = cs
                    .iter()
                    .map(|c| {
                        let l = self.encode_node(c.node(), solver, input_lits, node_lit);
                        if c.is_negated() {
                            !l
                        } else {
                            l
                        }
                    })
                    .collect();
                let v = solver.new_var().positive();
                // v -> ci for each child; (c1 & ... & cn) -> v.
                let mut long = vec![v];
                for &c in &child_lits {
                    solver.add_clause([!v, c]);
                    long.push(!c);
                }
                solver.add_clause(long);
                v
            }
            Node::Or(cs) => {
                let child_lits: Vec<Lit> = cs
                    .iter()
                    .map(|c| {
                        let l = self.encode_node(c.node(), solver, input_lits, node_lit);
                        if c.is_negated() {
                            !l
                        } else {
                            l
                        }
                    })
                    .collect();
                let v = solver.new_var().positive();
                // ci -> v for each child; v -> (c1 | ... | cn).
                let mut long = vec![!v];
                for &c in &child_lits {
                    solver.add_clause([v, !c]);
                    long.push(c);
                }
                solver.add_clause(long);
                v
            }
        };
        node_lit[idx] = Some(lit);
        lit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveResult;

    #[test]
    fn constant_folding() {
        let mut c = Circuit::new();
        let x = c.input();
        assert_eq!(c.and(x, Circuit::TRUE), x);
        assert_eq!(c.and(x, Circuit::FALSE), Circuit::FALSE);
        assert_eq!(c.or(x, Circuit::TRUE), Circuit::TRUE);
        assert_eq!(c.or(x, Circuit::FALSE), x);
        assert_eq!(c.and(x, !x), Circuit::FALSE);
        assert_eq!(c.or(x, !x), Circuit::TRUE);
        assert_eq!(c.and(x, x), x);
    }

    #[test]
    fn hash_consing_shares_structure() {
        let mut c = Circuit::new();
        let x = c.input();
        let y = c.input();
        let a = c.and(x, y);
        let b = c.and(y, x);
        assert_eq!(a, b);
    }

    #[test]
    fn de_morgan_via_eval() {
        let mut c = Circuit::new();
        let x = c.input();
        let y = c.input();
        let lhs = {
            let a = c.and(x, y);
            !a
        };
        let rhs = c.or(!x, !y);
        for ins in [[false, false], [false, true], [true, false], [true, true]] {
            assert_eq!(c.eval(lhs, &ins), c.eval(rhs, &ins));
        }
    }

    #[test]
    fn iff_and_ite_truth_tables() {
        let mut c = Circuit::new();
        let x = c.input();
        let y = c.input();
        let z = c.input();
        let iff = c.iff(x, y);
        let ite = c.ite(x, y, z);
        for xs in [false, true] {
            for ys in [false, true] {
                for zs in [false, true] {
                    let ins = [xs, ys, zs];
                    assert_eq!(c.eval(iff, &ins), xs == ys);
                    assert_eq!(c.eval(ite, &ins), if xs { ys } else { zs });
                }
            }
        }
    }

    #[test]
    fn counting_gates() {
        let mut c = Circuit::new();
        let xs: Vec<BoolRef> = (0..4).map(|_| c.input()).collect();
        let amo = c.at_most_one(&xs);
        let exo = c.exactly_one(&xs);
        let ge2 = c.count_ge(&xs, 2);
        let eq2 = c.count_eq(&xs, 2);
        for bits in 0..16u32 {
            let ins: Vec<bool> = (0..4).map(|i| bits & (1 << i) != 0).collect();
            let n = ins.iter().filter(|&&b| b).count();
            assert_eq!(c.eval(amo, &ins), n <= 1, "amo n={n}");
            assert_eq!(c.eval(exo, &ins), n == 1, "exo n={n}");
            assert_eq!(c.eval(ge2, &ins), n >= 2, "ge2 n={n}");
            assert_eq!(c.eval(eq2, &ins), n == 2, "eq2 n={n}");
        }
    }

    #[test]
    fn count_ge_edge_cases() {
        let mut c = Circuit::new();
        let xs: Vec<BoolRef> = (0..3).map(|_| c.input()).collect();
        assert_eq!(c.count_ge(&xs, 0), Circuit::TRUE);
        assert_eq!(c.count_ge(&xs, 4), Circuit::FALSE);
        assert_eq!(c.count_ge(&[], 0), Circuit::TRUE);
        assert_eq!(c.count_ge(&[], 1), Circuit::FALSE);
    }

    #[test]
    fn encode_agrees_with_eval() {
        // Exhaustively compare the SAT models of an encoded circuit against
        // direct evaluation.
        let mut c = Circuit::new();
        let xs: Vec<BoolRef> = (0..3).map(|_| c.input()).collect();
        let f1 = c.and(xs[0], !xs[1]);
        let f2 = c.iff(xs[1], xs[2]);
        let root = c.or(f1, f2);

        let mut sat_models = Vec::new();
        let mut solver = Solver::new();
        let inputs = c.encode(root, &mut solver);
        while let SolveResult::Sat(m) = solver.solve() {
            let assignment: Vec<bool> = inputs
                .iter()
                .map(|l| m[l.var().index()] == l.is_positive())
                .collect();
            sat_models.push(assignment.clone());
            let block: Vec<_> = inputs
                .iter()
                .zip(&assignment)
                .map(|(&l, &v)| if v { !l } else { l })
                .collect();
            if !solver.add_clause(block) {
                break;
            }
        }
        let mut expected = Vec::new();
        for bits in 0..8u32 {
            let ins: Vec<bool> = (0..3).map(|i| bits & (1 << i) != 0).collect();
            if c.eval(root, &ins) {
                expected.push(ins);
            }
        }
        sat_models.sort();
        expected.sort();
        assert_eq!(sat_models, expected);
    }

    #[test]
    fn encode_constant_roots() {
        let c = Circuit::new();
        let mut s = Solver::new();
        c.encode(Circuit::TRUE, &mut s);
        assert!(s.solve().is_sat());
        let mut s2 = Solver::new();
        c.encode(Circuit::FALSE, &mut s2);
        assert_eq!(s2.solve(), SolveResult::Unsat);
    }

    #[test]
    fn unreferenced_inputs_still_get_literals() {
        let mut c = Circuit::new();
        let _x = c.input();
        let y = c.input();
        let mut s = Solver::new();
        let inputs = c.encode(y, &mut s);
        assert_eq!(inputs.len(), 2);
        assert!(s.solve().is_sat());
    }
}
