//! # specrepair-trace
//!
//! A dependency-light, always-compiled tracing layer for the repair
//! pipeline: spans flow from individual CDCL solves up through oracle
//! queries, technique phases, portfolio entrants and whole study cells.
//!
//! Design constraints (DESIGN.md §9):
//!
//! - **~zero disabled overhead.** The hot path is one relaxed atomic load
//!   ([`enabled`]); when tracing is off, [`span`] returns an inert guard
//!   and touches neither the clock nor thread-local state.
//! - **Lock-free hot path.** Open spans live on a thread-local stack;
//!   completed spans accumulate in a thread-local buffer that is flushed
//!   to the global sink only when the thread's span stack empties (one
//!   mutex acquisition per *top-level* span, not per span).
//! - **Deterministic span ids.** A span's id is a SplitMix64 mix of
//!   `(cell seed, logical thread ordinal, per-scope sequence number)` —
//!   none of which depend on wall-clock or OS thread identity — so the
//!   span ids of a `study --resume` run or an N-worker portfolio race
//!   match the 1-worker run span for span. Only timestamps differ.
//! - **Typed attributes, RAII guards.** [`SpanGuard`] closes its span on
//!   drop; [`AttrValue`] keeps counters as numbers all the way into the
//!   exporters.
//!
//! The exporters ([`chrome_trace_json`], [`folded_stacks`],
//! [`phase_breakdown`]) turn a drained span list into Chrome trace-event
//! JSON (Perfetto / `chrome://tracing`), folded-stacks text (inferno-style
//! flamegraphs) and the per-phase wall-clock breakdown table behind
//! `study --trace <dir>`.

#![warn(missing_docs)]

mod export;

pub use export::{
    chrome_trace_json, folded_stacks, phase_breakdown, phase_totals_ns, render_breakdown_json,
    render_breakdown_txt, Breakdown, BreakdownRow,
};

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// The four top-level cost buckets of the phase-breakdown artifact: where
/// a repair's wall-clock goes, per technique × benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// SAT solving and formula compilation (CDCL + encode).
    Sat,
    /// Oracle memo-table machinery: fingerprinting, shard probes, replay.
    OracleCache,
    /// Language-model rounds (prompt construction + completion).
    Lm,
    /// Everything else: search loops, mutation generation, feedback,
    /// scheduling — the residual bucket.
    Orchestration,
}

impl Phase {
    /// All phases, in breakdown-column order.
    pub const ALL: [Phase; 4] = [
        Phase::Sat,
        Phase::OracleCache,
        Phase::Lm,
        Phase::Orchestration,
    ];

    /// The column label used in exports.
    pub fn label(&self) -> &'static str {
        match self {
            Phase::Sat => "sat",
            Phase::OracleCache => "oracle-cache",
            Phase::Lm => "lm",
            Phase::Orchestration => "orchestration",
        }
    }

    /// The phase's index in [`Phase::ALL`].
    pub fn index(&self) -> usize {
        match self {
            Phase::Sat => 0,
            Phase::OracleCache => 1,
            Phase::Lm => 2,
            Phase::Orchestration => 3,
        }
    }
}

/// A typed span attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned counter (solver statistics, draft indices, …).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating-point measurement.
    F64(f64),
    /// Boolean flag (cache hit/miss, verdicts).
    Bool(bool),
    /// Free-form string (labels, problem ids).
    Str(String),
}

/// One completed span, as drained from the sink by [`take_spans`].
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Deterministic span id (never 0; 0 means "no parent").
    pub id: u64,
    /// Parent span id, or 0 for a root span.
    pub parent: u64,
    /// Static span name (`"sat.solve"`, `"oracle.query"`, …).
    pub name: &'static str,
    /// Cost bucket this span's *exclusive* time is attributed to.
    pub phase: Phase,
    /// The cell seed of the scope the span was recorded under.
    pub cell: u64,
    /// Logical thread ordinal within the cell (0 = the cell's own thread,
    /// 1 + rank for portfolio entrants).
    pub ordinal: u64,
    /// Start timestamp in nanoseconds since the process trace origin.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Typed attributes, in insertion order.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static ORIGIN: OnceLock<Instant> = OnceLock::new();
static SINK: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());

/// Turns span collection on or off process-wide. Spans opened while
/// disabled stay inert even if collection is enabled before they close.
pub fn set_enabled(on: bool) {
    if on {
        // Pin the time origin before the first span can be recorded.
        ORIGIN.get_or_init(Instant::now);
    }
    ENABLED.store(on, Ordering::SeqCst);
}

/// Whether span collection is currently enabled (one relaxed load — this
/// is the entire disabled-path cost of [`span`]).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn now_ns() -> u64 {
    ORIGIN.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// SplitMix64 finalizer: the deterministic id mixer.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic span id of `(cell seed, thread ordinal, sequence)`.
/// Exposed so callers can predict ids without recording (e.g. the daemon
/// derives a request's `trace_id` from its cell seed even when tracing is
/// off). Never returns 0 (reserved for "no parent").
pub fn span_id_for(cell: u64, ordinal: u64, seq: u64) -> u64 {
    let id = mix(mix(mix(cell) ^ ordinal) ^ seq);
    if id == 0 {
        1
    } else {
        id
    }
}

/// The id the *root* span of a cell scope will get — `(cell, 0, 0)`.
pub fn root_span_id(cell: u64) -> u64 {
    span_id_for(cell, 0, 0)
}

struct OpenSpan {
    id: u64,
    parent: u64,
    name: &'static str,
    phase: Phase,
    start_ns: u64,
    attrs: Vec<(&'static str, AttrValue)>,
}

struct ThreadState {
    cell: u64,
    ordinal: u64,
    seq: u64,
    /// Cross-thread parent adopted by this scope's root spans.
    adopted_parent: u64,
    stack: Vec<OpenSpan>,
    done: Vec<SpanRecord>,
}

impl ThreadState {
    const fn new() -> ThreadState {
        ThreadState {
            cell: 0,
            ordinal: 0,
            seq: 0,
            adopted_parent: 0,
            stack: Vec::new(),
            done: Vec::new(),
        }
    }

    fn flush(&mut self) {
        if !self.done.is_empty() {
            SINK.lock().unwrap().append(&mut self.done);
        }
    }
}

thread_local! {
    static STATE: RefCell<ThreadState> = const { RefCell::new(ThreadState::new()) };
}

/// An RAII span: closes (and records) the span when dropped. Created by
/// [`span`]; inert when tracing was disabled at creation. Must be dropped
/// on the thread that created it, in LIFO order — the natural shape of a
/// lexical scope guard.
#[must_use = "a span measures the scope it is alive for"]
pub struct SpanGuard {
    active: bool,
}

/// Opens a span in the current thread's scope. When tracing is disabled
/// this is one atomic load and returns an inert guard.
#[inline]
pub fn span(name: &'static str, phase: Phase) -> SpanGuard {
    if !enabled() {
        return SpanGuard { active: false };
    }
    start_span(name, phase)
}

#[cold]
fn start_span(name: &'static str, phase: Phase) -> SpanGuard {
    STATE.with(|s| {
        let mut st = s.borrow_mut();
        let parent = st.stack.last().map(|o| o.id).unwrap_or(st.adopted_parent);
        let id = span_id_for(st.cell, st.ordinal, st.seq);
        st.seq += 1;
        st.stack.push(OpenSpan {
            id,
            parent,
            name,
            phase,
            start_ns: now_ns(),
            attrs: Vec::new(),
        });
    });
    SpanGuard { active: true }
}

impl SpanGuard {
    /// Whether this guard is recording (tracing was enabled at creation).
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// This span's deterministic id (`None` when inert).
    pub fn id(&self) -> Option<u64> {
        if !self.active {
            return None;
        }
        STATE.with(|s| s.borrow().stack.last().map(|o| o.id))
    }

    fn push_attr(&self, key: &'static str, value: AttrValue) {
        if !self.active {
            return;
        }
        STATE.with(|s| {
            if let Some(open) = s.borrow_mut().stack.last_mut() {
                open.attrs.push((key, value));
            }
        });
    }

    /// Attaches an unsigned counter attribute.
    pub fn attr_u64(&self, key: &'static str, value: u64) {
        self.push_attr(key, AttrValue::U64(value));
    }

    /// Attaches a signed integer attribute.
    pub fn attr_i64(&self, key: &'static str, value: i64) {
        self.push_attr(key, AttrValue::I64(value));
    }

    /// Attaches a floating-point attribute.
    pub fn attr_f64(&self, key: &'static str, value: f64) {
        self.push_attr(key, AttrValue::F64(value));
    }

    /// Attaches a boolean attribute.
    pub fn attr_bool(&self, key: &'static str, value: bool) {
        self.push_attr(key, AttrValue::Bool(value));
    }

    /// Attaches a string attribute (only clones when recording).
    pub fn attr_str(&self, key: &'static str, value: &str) {
        if !self.active {
            return;
        }
        self.push_attr(key, AttrValue::Str(value.to_string()));
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        STATE.with(|s| {
            let mut st = s.borrow_mut();
            if let Some(open) = st.stack.pop() {
                let dur_ns = now_ns().saturating_sub(open.start_ns);
                let rec = SpanRecord {
                    id: open.id,
                    parent: open.parent,
                    name: open.name,
                    phase: open.phase,
                    cell: st.cell,
                    ordinal: st.ordinal,
                    start_ns: open.start_ns,
                    dur_ns,
                    attrs: open.attrs,
                };
                st.done.push(rec);
            }
            if st.stack.is_empty() {
                st.flush();
            }
        });
    }
}

/// An RAII cell scope: while alive, spans on this thread get ids derived
/// from `(cell, ordinal, seq)` with the sequence restarting at 0, and root
/// spans adopt `parent` (a span id from another thread) so cross-thread
/// traces nest. Restores the previous scope on drop. Created by
/// [`cell_scope`]; inert when tracing was disabled at creation.
pub struct CellScope {
    prev: Option<(u64, u64, u64, u64)>,
}

/// Enters a deterministic id scope for one study cell / portfolio entrant
/// / daemon request. `ordinal` is the *logical* thread ordinal (0 for the
/// cell's own thread, `1 + rank` for portfolio entrants); `parent` is an
/// optional cross-thread parent span id adopted by this scope's root
/// spans.
pub fn cell_scope(cell: u64, ordinal: u64, parent: Option<u64>) -> CellScope {
    if !enabled() {
        return CellScope { prev: None };
    }
    let prev = STATE.with(|s| {
        let mut st = s.borrow_mut();
        let prev = (st.cell, st.ordinal, st.seq, st.adopted_parent);
        st.cell = cell;
        st.ordinal = ordinal;
        st.seq = 0;
        st.adopted_parent = parent.unwrap_or(0);
        prev
    });
    CellScope { prev: Some(prev) }
}

impl Drop for CellScope {
    fn drop(&mut self) {
        let Some((cell, ordinal, seq, parent)) = self.prev else {
            return;
        };
        STATE.with(|s| {
            let mut st = s.borrow_mut();
            // Anything recorded under this scope is complete: hand it to
            // the sink even if an outer span (on this thread) is still
            // open.
            st.flush();
            st.cell = cell;
            st.ordinal = ordinal;
            st.seq = seq;
            st.adopted_parent = parent;
        });
    }
}

/// The current thread's cell seed (0 outside any scope or when disabled).
pub fn current_cell() -> u64 {
    if !enabled() {
        return 0;
    }
    STATE.with(|s| s.borrow().cell)
}

/// The id of the innermost open span on this thread (0 when none). Used
/// to hand a parent id to spans recorded on *other* threads (portfolio
/// entrants, daemon workers).
pub fn current_span_id() -> u64 {
    if !enabled() {
        return 0;
    }
    STATE.with(|s| s.borrow().stack.last().map(|o| o.id).unwrap_or(0))
}

/// Drains every completed span flushed to the global sink so far. Spans
/// still open (or buffered under a live cell scope on another thread) are
/// not included — drain after the traced region has fully joined.
pub fn take_spans() -> Vec<SpanRecord> {
    std::mem::take(&mut *SINK.lock().unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests in this module toggle the process-global enable flag, so they
    /// serialize on one mutex to stay independent of the test harness's
    /// thread scheduling.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = serial();
        set_enabled(false);
        take_spans();
        {
            let s = span("noop", Phase::Sat);
            s.attr_u64("k", 1);
            assert!(!s.is_active());
            assert_eq!(s.id(), None);
        }
        assert!(take_spans().is_empty());
    }

    #[test]
    fn nested_spans_record_parentage_and_attrs() {
        let _g = serial();
        set_enabled(true);
        take_spans();
        let _scope = cell_scope(0xC0FFEE, 0, None);
        let root_id;
        {
            let root = span("root", Phase::Orchestration);
            root.attr_str("technique", "ARepair");
            root_id = root.id().unwrap();
            {
                let child = span("child", Phase::Sat);
                child.attr_u64("conflicts", 7);
                assert_ne!(child.id().unwrap(), root_id);
            }
        }
        set_enabled(false);
        let spans = take_spans();
        assert_eq!(spans.len(), 2);
        // Children complete (and are buffered) before their parents.
        let child = &spans[0];
        let root = &spans[1];
        assert_eq!(root.name, "root");
        assert_eq!(root.parent, 0);
        assert_eq!(root.id, root_id);
        assert_eq!(child.parent, root.id);
        assert_eq!(child.cell, 0xC0FFEE);
        assert_eq!(child.attrs, vec![("conflicts", AttrValue::U64(7))]);
        assert!(root.start_ns <= child.start_ns);
        assert!(root.dur_ns >= child.dur_ns);
    }

    #[test]
    fn span_ids_are_deterministic_per_scope() {
        let _g = serial();
        set_enabled(true);
        take_spans();
        let run = || {
            let _scope = cell_scope(42, 3, None);
            let a = span("a", Phase::Sat);
            let a_id = a.id().unwrap();
            drop(a);
            let b = span("b", Phase::Lm);
            let b_id = b.id().unwrap();
            drop(b);
            (a_id, b_id)
        };
        let first = run();
        let second = run();
        set_enabled(false);
        take_spans();
        assert_eq!(first, second, "same (cell, ordinal, seq) → same ids");
        assert_eq!(first.0, span_id_for(42, 3, 0));
        assert_eq!(first.1, span_id_for(42, 3, 1));
        assert_ne!(first.0, first.1);
        assert_ne!(span_id_for(42, 0, 0), span_id_for(42, 1, 0));
        assert_eq!(root_span_id(42), span_id_for(42, 0, 0));
    }

    #[test]
    fn adopted_parent_links_cross_thread_roots() {
        let _g = serial();
        set_enabled(true);
        take_spans();
        let parent_id = {
            let _scope = cell_scope(9, 0, None);
            let parent = span("race", Phase::Orchestration);
            let pid = parent.id().unwrap();
            std::thread::scope(|s| {
                s.spawn(|| {
                    let _entrant = cell_scope(9, 1, Some(pid));
                    let e = span("entrant", Phase::Orchestration);
                    assert_eq!(e.id().unwrap(), span_id_for(9, 1, 0));
                });
            });
            pid
        };
        set_enabled(false);
        let spans = take_spans();
        let entrant = spans.iter().find(|s| s.name == "entrant").unwrap();
        assert_eq!(entrant.parent, parent_id);
        assert_eq!(entrant.ordinal, 1);
    }

    #[test]
    fn cell_scope_restores_previous_scope() {
        let _g = serial();
        set_enabled(true);
        take_spans();
        let _outer = cell_scope(1, 0, None);
        let a = span("a", Phase::Sat);
        drop(a);
        {
            let _inner = cell_scope(2, 0, None);
            let b = span("b", Phase::Sat);
            assert_eq!(b.id().unwrap(), span_id_for(2, 0, 0));
        }
        // Back in the outer scope: the sequence continues where it left.
        let c = span("c", Phase::Sat);
        assert_eq!(c.id().unwrap(), span_id_for(1, 0, 1));
        drop(c);
        set_enabled(false);
        take_spans();
    }
}
