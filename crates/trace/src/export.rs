//! Exporters over a drained span list: Chrome trace-event JSON, folded
//! stacks for flamegraphs, and the per-phase wall-clock breakdown table.
//!
//! All three are pure functions of `&[SpanRecord]` and produce
//! deterministic output given deterministic span ids (records are sorted
//! before rendering, so sink arrival order — which depends on thread
//! scheduling — never leaks into the artifacts' structure).

use crate::{AttrValue, Phase, SpanRecord};
use std::collections::HashMap;

/// Escapes a string into a JSON string literal (without the quotes).
fn escape_json(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn push_attr_value(out: &mut String, v: &AttrValue) {
    match v {
        AttrValue::U64(n) => out.push_str(&n.to_string()),
        AttrValue::I64(n) => out.push_str(&n.to_string()),
        AttrValue::F64(x) if x.is_finite() => out.push_str(&format!("{x}")),
        AttrValue::F64(_) => out.push_str("null"),
        AttrValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        AttrValue::Str(s) => {
            out.push('"');
            escape_json(out, s);
            out.push('"');
        }
    }
}

/// Microseconds with nanosecond remainder, as a JSON number string.
fn us_frac(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn str_attr<'a>(span: &'a SpanRecord, key: &str) -> Option<&'a str> {
    span.attrs.iter().find_map(|(k, v)| match v {
        AttrValue::Str(s) if *k == key => Some(s.as_str()),
        _ => None,
    })
}

/// Spans sorted into a deterministic order: by cell, ordinal, start, id.
fn sorted(spans: &[SpanRecord]) -> Vec<&SpanRecord> {
    let mut out: Vec<&SpanRecord> = spans.iter().collect();
    out.sort_by_key(|s| (s.cell, s.ordinal, s.start_ns, s.id));
    out
}

/// Renders Chrome trace-event JSON (the `{"traceEvents": [...]}` object
/// form) loadable in Perfetto or `chrome://tracing`. Each `(cell,
/// ordinal)` pair becomes one track; span attributes and the
/// deterministic ids land in `args`.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let ordered = sorted(spans);
    // One track per (cell, ordinal), numbered in sorted order.
    let mut lanes: Vec<(u64, u64)> = ordered.iter().map(|s| (s.cell, s.ordinal)).collect();
    lanes.dedup();
    let lane_of: HashMap<(u64, u64), usize> = lanes
        .iter()
        .enumerate()
        .map(|(i, key)| (*key, i + 1))
        .collect();

    let mut out = String::with_capacity(spans.len() * 160 + 64);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for (i, (cell, ordinal)) in lanes.iter().enumerate() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
             \"args\":{{\"name\":\"cell {:016x} #{}\"}}}}",
            i + 1,
            cell,
            ordinal
        ));
    }
    for span in ordered {
        if !first {
            out.push(',');
        }
        first = false;
        let tid = lane_of[&(span.cell, span.ordinal)];
        out.push_str("{\"name\":\"");
        escape_json(&mut out, span.name);
        out.push_str("\",\"cat\":\"");
        out.push_str(span.phase.label());
        out.push_str("\",\"ph\":\"X\",\"pid\":1,\"tid\":");
        out.push_str(&tid.to_string());
        out.push_str(",\"ts\":");
        out.push_str(&us_frac(span.start_ns));
        out.push_str(",\"dur\":");
        out.push_str(&us_frac(span.dur_ns));
        out.push_str(",\"args\":{\"span_id\":\"");
        out.push_str(&format!("{:016x}", span.id));
        out.push_str("\",\"parent\":\"");
        out.push_str(&format!("{:016x}", span.parent));
        out.push('"');
        for (k, v) in &span.attrs {
            out.push_str(",\"");
            escape_json(&mut out, k);
            out.push_str("\":");
            push_attr_value(&mut out, v);
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

/// Exclusive (self) time per span id: duration minus the summed durations
/// of direct children, clamped at zero (parallel children — portfolio
/// entrants — can legitimately overlap their parent).
fn exclusive_ns(spans: &[SpanRecord]) -> HashMap<u64, u64> {
    let mut child_total: HashMap<u64, u64> = HashMap::new();
    let known: HashMap<u64, u64> = spans.iter().map(|s| (s.id, s.dur_ns)).collect();
    for s in spans {
        if s.parent != 0 && known.contains_key(&s.parent) {
            *child_total.entry(s.parent).or_insert(0) += s.dur_ns;
        }
    }
    spans
        .iter()
        .map(|s| {
            let children = child_total.get(&s.id).copied().unwrap_or(0);
            (s.id, s.dur_ns.saturating_sub(children))
        })
        .collect()
}

/// Total exclusive nanoseconds per phase across a batch of spans, in
/// [`Phase::ALL`] order. The cheap aggregate behind `specrepaird`'s
/// `GET /trace/summary`: no cell grouping, just where the time went.
pub fn phase_totals_ns(spans: &[SpanRecord]) -> [u64; 4] {
    let excl = exclusive_ns(spans);
    let mut totals = [0u64; 4];
    for s in spans {
        totals[s.phase.index()] += excl.get(&s.id).copied().unwrap_or(0);
    }
    totals
}

/// Renders folded-stacks text (`frame;frame;frame value` per line, value
/// in microseconds of *exclusive* time) for inferno-style flamegraph
/// tools. Root frames of study cells are labelled
/// `cell:<technique>:<problem>` so one flamegraph spans the whole study.
pub fn folded_stacks(spans: &[SpanRecord]) -> String {
    let by_id: HashMap<u64, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
    let excl = exclusive_ns(spans);
    let frame = |s: &SpanRecord| -> String {
        match (str_attr(s, "technique"), str_attr(s, "problem")) {
            (Some(t), Some(p)) => format!("{}:{}:{}", s.name, t, p),
            (Some(t), None) => format!("{}:{}", s.name, t),
            _ => s.name.to_string(),
        }
    };
    let mut folded: HashMap<String, u64> = HashMap::new();
    for s in sorted(spans) {
        let us = excl.get(&s.id).copied().unwrap_or(0) / 1_000;
        if us == 0 {
            continue;
        }
        let mut path = vec![frame(s)];
        let mut cursor = s.parent;
        // Depth cap guards against a malformed parent cycle.
        for _ in 0..64 {
            let Some(p) = by_id.get(&cursor) else { break };
            path.push(frame(p));
            cursor = p.parent;
        }
        path.reverse();
        *folded.entry(path.join(";")).or_insert(0) += us;
    }
    let mut lines: Vec<(String, u64)> = folded.into_iter().collect();
    lines.sort();
    let mut out = String::new();
    for (stack, us) in lines {
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&us.to_string());
        out.push('\n');
    }
    out
}

/// One row of the phase-breakdown table.
#[derive(Debug, Clone)]
pub struct BreakdownRow {
    /// Technique label (from the cell root span's `technique` attribute).
    pub technique: String,
    /// Problem id for per-cell rows; `None` for per-technique aggregates.
    pub problem: Option<String>,
    /// Number of cells aggregated into this row.
    pub cells: usize,
    /// Sum of the cell root spans' wall-clock durations (ms).
    pub wall_ms: f64,
    /// Sum of exclusive time attributed across all phases (ms). For
    /// well-nested single-threaded cells this reconciles with `wall_ms`;
    /// portfolio cells can exceed it (parallel entrants burn CPU time).
    pub attributed_ms: f64,
    /// Exclusive milliseconds per phase, in [`Phase::ALL`] order.
    pub phase_ms: [f64; 4],
    /// Percentage of `attributed_ms` per phase (sums to ~100).
    pub phase_pct: [f64; 4],
}

/// The phase-breakdown artifact: per-technique aggregates plus the
/// underlying per-(technique, problem) cells.
#[derive(Debug, Clone, Default)]
pub struct Breakdown {
    /// One row per technique, in label order.
    pub techniques: Vec<BreakdownRow>,
    /// One row per (technique, problem) cell, in label order.
    pub cells: Vec<BreakdownRow>,
}

/// Attributes every span's exclusive time to its phase, grouped by the
/// owning cell's `(technique, problem)` — the cell is identified by the
/// root span (parent 0) carrying `technique`/`problem` string attributes.
pub fn phase_breakdown(spans: &[SpanRecord]) -> Breakdown {
    let excl = exclusive_ns(spans);
    // Cell identity: root spans with a technique attribute. Portfolio
    // entrant scopes reuse their parent cell's seed, so their spans fold
    // into the same row.
    let mut cell_key: HashMap<u64, (String, String)> = HashMap::new();
    let mut cell_wall: HashMap<(String, String), (usize, u64)> = HashMap::new();
    for s in spans {
        if s.parent != 0 {
            continue;
        }
        let Some(technique) = str_attr(s, "technique") else {
            continue;
        };
        let problem = str_attr(s, "problem").unwrap_or("-").to_string();
        cell_key.insert(s.cell, (technique.to_string(), problem.clone()));
        let entry = cell_wall
            .entry((technique.to_string(), problem))
            .or_insert((0, 0));
        entry.0 += 1;
        entry.1 += s.dur_ns;
    }
    let mut phase_ns: HashMap<(String, String), [u64; 4]> = HashMap::new();
    for s in spans {
        let Some(key) = cell_key.get(&s.cell) else {
            continue;
        };
        let ns = excl.get(&s.id).copied().unwrap_or(0);
        phase_ns.entry(key.clone()).or_insert([0; 4])[s.phase.index()] += ns;
    }

    let row = |technique: &str, problem: Option<&str>, cells: usize, wall: u64, ns: [u64; 4]| {
        let attributed: u64 = ns.iter().sum();
        let to_ms = |n: u64| n as f64 / 1e6;
        let pct = |n: u64| {
            if attributed == 0 {
                0.0
            } else {
                100.0 * n as f64 / attributed as f64
            }
        };
        BreakdownRow {
            technique: technique.to_string(),
            problem: problem.map(str::to_string),
            cells,
            wall_ms: to_ms(wall),
            attributed_ms: to_ms(attributed),
            phase_ms: [to_ms(ns[0]), to_ms(ns[1]), to_ms(ns[2]), to_ms(ns[3])],
            phase_pct: [pct(ns[0]), pct(ns[1]), pct(ns[2]), pct(ns[3])],
        }
    };

    let mut keys: Vec<(String, String)> = cell_wall.keys().cloned().collect();
    keys.sort();
    let mut cells_rows = Vec::with_capacity(keys.len());
    let mut by_technique: HashMap<String, (usize, u64, [u64; 4])> = HashMap::new();
    for key in &keys {
        let (count, wall) = cell_wall[key];
        let ns = phase_ns.get(key).copied().unwrap_or([0; 4]);
        cells_rows.push(row(&key.0, Some(&key.1), count, wall, ns));
        let agg = by_technique.entry(key.0.clone()).or_insert((0, 0, [0; 4]));
        agg.0 += count;
        agg.1 += wall;
        for (slot, n) in agg.2.iter_mut().zip(ns) {
            *slot += n;
        }
    }
    let mut technique_labels: Vec<String> = by_technique.keys().cloned().collect();
    technique_labels.sort();
    let technique_rows = technique_labels
        .iter()
        .map(|t| {
            let (count, wall, ns) = by_technique[t];
            row(t, None, count, wall, ns)
        })
        .collect();
    Breakdown {
        techniques: technique_rows,
        cells: cells_rows,
    }
}

/// Renders the per-technique breakdown as a fixed-width text table.
pub fn render_breakdown_txt(b: &Breakdown) -> String {
    let mut out = String::new();
    out.push_str("Per-phase wall-clock breakdown (exclusive time; % of attributed)\n\n");
    let width = b
        .techniques
        .iter()
        .map(|r| r.technique.len())
        .max()
        .unwrap_or(9)
        .max("technique".len());
    out.push_str(&format!(
        "{:width$}  {:>5}  {:>10}  {:>10}  {:>6}  {:>12}  {:>6}  {:>13}\n",
        "technique",
        "cells",
        "wall_ms",
        "attr_ms",
        "sat%",
        "oracle-cache%",
        "lm%",
        "orchestration%",
        width = width
    ));
    for r in &b.techniques {
        out.push_str(&format!(
            "{:width$}  {:>5}  {:>10.1}  {:>10.1}  {:>6.1}  {:>12.1}  {:>6.1}  {:>13.1}\n",
            r.technique,
            r.cells,
            r.wall_ms,
            r.attributed_ms,
            r.phase_pct[0],
            r.phase_pct[1],
            r.phase_pct[2],
            r.phase_pct[3],
            width = width
        ));
    }
    out
}

fn push_row_json(out: &mut String, r: &BreakdownRow) {
    out.push_str("{\"technique\":\"");
    escape_json(out, &r.technique);
    out.push('"');
    if let Some(p) = &r.problem {
        out.push_str(",\"problem\":\"");
        escape_json(out, p);
        out.push('"');
    }
    out.push_str(&format!(
        ",\"cells\":{},\"wall_ms\":{:.3},\"attributed_ms\":{:.3}",
        r.cells, r.wall_ms, r.attributed_ms
    ));
    for (i, phase) in Phase::ALL.iter().enumerate() {
        out.push_str(&format!(
            ",\"{}_ms\":{:.3},\"{}_pct\":{:.3}",
            phase.label(),
            r.phase_ms[i],
            phase.label(),
            r.phase_pct[i]
        ));
    }
    out.push('}');
}

/// Renders the breakdown as JSON: `{"techniques": [...], "cells": [...]}`.
pub fn render_breakdown_json(b: &Breakdown) -> String {
    let mut out = String::from("{\"techniques\":[");
    for (i, r) in b.techniques.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_row_json(&mut out, r);
    }
    out.push_str("],\"cells\":[");
    for (i, r) in b.cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_row_json(&mut out, r);
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::too_many_arguments)]
    fn span(
        id: u64,
        parent: u64,
        name: &'static str,
        phase: Phase,
        cell: u64,
        start_ns: u64,
        dur_ns: u64,
        attrs: Vec<(&'static str, AttrValue)>,
    ) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name,
            phase,
            cell,
            ordinal: 0,
            start_ns,
            dur_ns,
            attrs,
        }
    }

    fn sample() -> Vec<SpanRecord> {
        vec![
            span(
                1,
                0,
                "cell",
                Phase::Orchestration,
                7,
                0,
                10_000_000,
                vec![
                    ("technique", AttrValue::Str("ARepair".into())),
                    ("problem", AttrValue::Str("p1".into())),
                ],
            ),
            span(
                2,
                1,
                "oracle.query",
                Phase::OracleCache,
                7,
                1_000_000,
                6_000_000,
                vec![("hit", AttrValue::Bool(false))],
            ),
            span(
                3,
                2,
                "sat.solve",
                Phase::Sat,
                7,
                2_000_000,
                4_000_000,
                vec![("conflicts", AttrValue::U64(12))],
            ),
        ]
    }

    #[test]
    fn chrome_json_has_events_and_lanes() {
        let json = chrome_trace_json(&sample());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"name\":\"sat.solve\""));
        assert!(json.contains("\"cat\":\"sat\""));
        assert!(json.contains("\"conflicts\":12"));
        assert!(json.contains("\"hit\":false"));
        // Durations are microseconds: 10 ms root → 10000.000.
        assert!(json.contains("\"dur\":10000.000"), "{json}");
    }

    #[test]
    fn chrome_json_escapes_strings() {
        let spans = vec![span(
            1,
            0,
            "cell",
            Phase::Orchestration,
            1,
            0,
            5,
            vec![("technique", AttrValue::Str("a\"b\\c\nd".into()))],
        )];
        let json = chrome_trace_json(&spans);
        assert!(json.contains("a\\\"b\\\\c\\nd"));
    }

    #[test]
    fn folded_stacks_use_exclusive_time() {
        let text = folded_stacks(&sample());
        // Root: 10ms − 6ms child = 4ms = 4000 µs exclusive.
        assert!(
            text.contains("cell:ARepair:p1 4000\n"),
            "exclusive root time:\n{text}"
        );
        // Leaf keeps its full 4 ms.
        assert!(text.contains("cell:ARepair:p1;oracle.query;sat.solve 4000\n"));
        // Middle frame: 6 − 4 = 2 ms.
        assert!(text.contains("cell:ARepair:p1;oracle.query 2000\n"));
    }

    #[test]
    fn breakdown_partitions_the_root_wall_clock() {
        let b = phase_breakdown(&sample());
        assert_eq!(b.techniques.len(), 1);
        let r = &b.techniques[0];
        assert_eq!(r.technique, "ARepair");
        assert_eq!(r.cells, 1);
        assert!((r.wall_ms - 10.0).abs() < 1e-9);
        assert!((r.attributed_ms - 10.0).abs() < 1e-9, "{r:?}");
        let pct_sum: f64 = r.phase_pct.iter().sum();
        assert!((pct_sum - 100.0).abs() < 1e-6);
        // sat 4ms, oracle 2ms, orchestration 4ms.
        assert!((r.phase_ms[0] - 4.0).abs() < 1e-9);
        assert!((r.phase_ms[1] - 2.0).abs() < 1e-9);
        assert!((r.phase_ms[3] - 4.0).abs() < 1e-9);
        assert_eq!(b.cells[0].problem.as_deref(), Some("p1"));
    }

    #[test]
    fn breakdown_renderers_are_consistent() {
        let b = phase_breakdown(&sample());
        let txt = render_breakdown_txt(&b);
        assert!(txt.contains("ARepair"));
        assert!(txt.contains("orchestration%"));
        let json = render_breakdown_json(&b);
        assert!(json.starts_with("{\"techniques\":["));
        assert!(json.contains("\"sat_pct\":40.000"));
        assert!(json.contains("\"oracle-cache_pct\":20.000"));
    }

    #[test]
    fn empty_spans_render_empty_artifacts() {
        assert_eq!(chrome_trace_json(&[]), "{\"traceEvents\":[]}");
        assert_eq!(folded_stacks(&[]), "");
        let b = phase_breakdown(&[]);
        assert!(b.techniques.is_empty());
        assert_eq!(
            render_breakdown_json(&b),
            "{\"techniques\":[],\"cells\":[]}"
        );
    }
}
