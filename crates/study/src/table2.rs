//! Experiment E4 — Table II and Figure 4: hybrid repair capabilities of
//! every traditional × LLM pairing (overlap, unique union / Venn regions).

use serde::{Deserialize, Serialize};
use specrepair_core::overlap_stats;
use std::fmt::Write as _;

use crate::config::TechniqueId;
use crate::runner::StudyResults;

/// One row of Table II (equivalently one Venn diagram of Figure 4).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HybridRow {
    /// Traditional technique label.
    pub traditional: String,
    /// Traditional technique's own repair count.
    pub traditional_repairs: usize,
    /// LLM technique label.
    pub llm: String,
    /// LLM technique's own repair count.
    pub llm_repairs: usize,
    /// Specifications repaired by both (Venn intersection).
    pub overlaps: usize,
    /// Unique union (the hybrid's total repairs).
    pub total_unique: usize,
}

impl HybridRow {
    /// The Venn regions: (traditional-only, both, llm-only).
    pub fn venn(&self) -> (usize, usize, usize) {
        (
            self.traditional_repairs - self.overlaps,
            self.overlaps,
            self.llm_repairs - self.overlaps,
        )
    }
}

/// The full 4 × 8 hybrid analysis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2 {
    /// All 32 pairings, traditional-major order as in the paper.
    pub rows: Vec<HybridRow>,
    /// Total number of specifications.
    pub total_specs: usize,
}

impl Table2 {
    /// The best-performing hybrid row.
    pub fn best(&self) -> Option<&HybridRow> {
        self.rows.iter().max_by_key(|r| r.total_unique)
    }
}

/// Builds Table II / Figure 4 from study results.
pub fn build(results: &StudyResults) -> Table2 {
    let mut rows = Vec::with_capacity(32);
    for trad in TechniqueId::traditional() {
        let tv = results.rep_vector(trad.label());
        for llm in TechniqueId::llm_based() {
            let lv = results.rep_vector(llm.label());
            let stats = overlap_stats(&tv, &lv);
            rows.push(HybridRow {
                traditional: trad.label().to_string(),
                traditional_repairs: stats.first,
                llm: llm.label().to_string(),
                llm_repairs: stats.second,
                overlaps: stats.overlap,
                total_unique: stats.union,
            });
        }
    }
    Table2 {
        rows,
        total_specs: results.num_problems,
    }
}

/// Renders Table II as fixed-width text.
pub fn render(table: &Table2) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "TABLE II: hybrid repair capabilities (traditional x LLM), {} specs",
        table.total_specs
    );
    let _ = writeln!(
        out,
        "{:<10}{:>8}  {:<24}{:>8}{:>10}{:>14}",
        "Trad.", "Repairs", "LLM technique", "Repairs", "Overlaps", "Total(unique)"
    );
    for r in &table.rows {
        let _ = writeln!(
            out,
            "{:<10}{:>8}  {:<24}{:>8}{:>10}{:>14}",
            r.traditional, r.traditional_repairs, r.llm, r.llm_repairs, r.overlaps, r.total_unique
        );
    }
    if let Some(best) = table.best() {
        let pct = 100.0 * best.total_unique as f64 / table.total_specs.max(1) as f64;
        let _ = writeln!(
            out,
            "Best hybrid: {} + {} -> {}/{} ({pct:.1}%)",
            best.traditional, best.llm, best.total_unique, table.total_specs
        );
    }
    out
}

/// Renders Figure 4 as a matrix of textual Venn summaries
/// `left|both|right`.
pub fn render_venn(table: &Table2) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "FIGURE 4: Venn regions per hybrid (traditional-only | both | LLM-only)"
    );
    let llm_order: Vec<String> = TechniqueId::llm_based()
        .iter()
        .map(|t| t.label().to_string())
        .collect();
    let _ = write!(out, "{:<24}", "");
    for t in TechniqueId::traditional() {
        let _ = write!(out, "{:>16}", t.label());
    }
    let _ = writeln!(out);
    for llm in &llm_order {
        let _ = write!(
            out,
            "{:<24}",
            llm.replace("Single-Round_", "SR_")
                .replace("Multi-Round_", "MR_")
        );
        for trad in TechniqueId::traditional() {
            let row = table
                .rows
                .iter()
                .find(|r| r.traditional == trad.label() && &r.llm == llm)
                .expect("all pairings present");
            let (l, b, r) = row.venn();
            let _ = write!(out, "{:>16}", format!("{l}|{b}|{r}"));
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StudyConfig;
    use crate::runner::run_full_study;

    #[test]
    fn thirty_two_pairings_with_consistent_arithmetic() {
        let (_, results) = run_full_study(&StudyConfig {
            scale: 0.004,
            seed: 11,
            ..StudyConfig::default()
        });
        let t = build(&results);
        assert_eq!(t.rows.len(), 32);
        for r in &t.rows {
            // union = A + B - overlap.
            assert_eq!(
                r.total_unique,
                r.traditional_repairs + r.llm_repairs - r.overlaps
            );
            assert!(r.overlaps <= r.traditional_repairs.min(r.llm_repairs));
            assert!(r.total_unique <= t.total_specs);
            let (l, b, rr) = r.venn();
            assert_eq!(l + b + rr, r.total_unique);
        }
        // Hybrids dominate their constituents.
        for r in &t.rows {
            assert!(r.total_unique >= r.traditional_repairs.max(r.llm_repairs));
        }
        let text = render(&t);
        assert!(text.contains("TABLE II"));
        assert!(text.contains("Best hybrid"));
        let venn = render_venn(&t);
        assert!(venn.contains("FIGURE 4"));
    }
}
