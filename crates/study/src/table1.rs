//! Experiment E1 — Table I: REP scores per technique, per benchmark domain.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

use crate::config::TechniqueId;
use crate::runner::StudyResults;

/// One row of Table I.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    /// Benchmark (`A4F` / `ARepair`) — summary rows use it as the label.
    pub benchmark: String,
    /// Domain (or `Summary` / `Total`).
    pub domain: String,
    /// Number of specifications in the row.
    pub total_specs: usize,
    /// REP counts per technique, in [`TechniqueId::all`] order.
    pub rep: Vec<usize>,
}

/// The full table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1 {
    /// Technique labels, in column order.
    pub techniques: Vec<String>,
    /// Domain rows, two summary rows and the total row.
    pub rows: Vec<Table1Row>,
}

/// Builds Table I from study results.
pub fn build(results: &StudyResults) -> Table1 {
    let techniques: Vec<String> = TechniqueId::all()
        .iter()
        .map(|t| t.label().to_string())
        .collect();

    // Discover domains per benchmark (in first-appearance order).
    let mut rows = Vec::new();
    for bench in ["A4F", "ARepair"] {
        let mut domains: Vec<String> = Vec::new();
        for r in &results.records {
            if r.benchmark == bench && !domains.contains(&r.domain) {
                domains.push(r.domain.clone());
            }
        }
        for domain in &domains {
            let total_specs = results
                .records
                .iter()
                .filter(|r| {
                    r.benchmark == bench && &r.domain == domain && r.technique == techniques[0]
                })
                .count();
            let rep = techniques
                .iter()
                .map(|t| {
                    results
                        .records
                        .iter()
                        .filter(|r| {
                            r.benchmark == bench && &r.domain == domain && &r.technique == t
                        })
                        .map(|r| r.rep as usize)
                        .sum()
                })
                .collect();
            rows.push(Table1Row {
                benchmark: bench.to_string(),
                domain: domain.clone(),
                total_specs,
                rep,
            });
        }
        // Per-benchmark summary.
        let total_specs = results
            .records
            .iter()
            .filter(|r| r.benchmark == bench && r.technique == techniques[0])
            .count();
        let rep = techniques
            .iter()
            .map(|t| results.rep_count(t, Some(bench)))
            .collect();
        rows.push(Table1Row {
            benchmark: bench.to_string(),
            domain: "Summary".to_string(),
            total_specs,
            rep,
        });
    }
    // Grand total.
    let rep = techniques
        .iter()
        .map(|t| results.rep_count(t, None))
        .collect();
    rows.push(Table1Row {
        benchmark: "Both".to_string(),
        domain: "Total".to_string(),
        total_specs: results.num_problems,
        rep,
    });
    Table1 { techniques, rows }
}

/// Renders the table as fixed-width text, matching the paper's layout.
pub fn render(table: &Table1) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "TABLE I: REP scores (specifications repaired) per technique"
    );
    let _ = write!(out, "{:<12}{:<13}{:>6}", "Benchmark", "Domain", "#spec");
    for t in &table.techniques {
        let short = t
            .replace("Single-Round_", "SR_")
            .replace("Multi-Round_", "MR_");
        let _ = write!(out, "{short:>12}");
    }
    let _ = writeln!(out);
    for row in &table.rows {
        let _ = write!(
            out,
            "{:<12}{:<13}{:>6}",
            row.benchmark, row.domain, row.total_specs
        );
        for v in &row.rep {
            let _ = write!(out, "{v:>12}");
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StudyConfig;
    use crate::runner::run_full_study;

    #[test]
    fn table_structure_is_complete() {
        let (_, results) = run_full_study(&StudyConfig {
            scale: 0.003,
            seed: 5,
            ..StudyConfig::default()
        });
        let t = build(&results);
        assert_eq!(t.techniques.len(), 12);
        // 6 A4F domains + summary + 12 ARepair problems + summary + total.
        assert_eq!(t.rows.len(), 6 + 1 + 12 + 1 + 1);
        let total = t.rows.last().unwrap();
        assert_eq!(total.domain, "Total");
        // Summaries add up.
        let a4f = t
            .rows
            .iter()
            .find(|r| r.benchmark == "A4F" && r.domain == "Summary")
            .unwrap();
        let arep = t
            .rows
            .iter()
            .find(|r| r.benchmark == "ARepair" && r.domain == "Summary")
            .unwrap();
        for i in 0..12 {
            assert_eq!(total.rep[i], a4f.rep[i] + arep.rep[i]);
            assert!(total.rep[i] <= total.total_specs);
        }
        let text = render(&t);
        assert!(text.contains("TABLE I"));
        assert!(text.contains("classroom"));
        assert!(text.contains("student"));
        assert!(text.contains("Total"));
    }
}
