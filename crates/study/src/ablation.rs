//! Experiment E5 — ablation (§VI): does feeding traditional fault
//! localization into the LLM beat the plain union hybrid?
//!
//! Three arms on the same problems:
//! 1. `Multi-Round_None` alone;
//! 2. the union hybrid `ATR + Multi-Round_None` (Table II's composition);
//! 3. `Localize>Multi-Round_None` — the localize-then-fix pipeline where the
//!    traditional localizer's top spans become the LLM's round-1 location
//!    hints.

use mualloy_analyzer::IncrementalStats;
use serde::{Deserialize, Serialize};
use specrepair_benchmarks::RepairProblem;
use specrepair_core::{
    CancelToken, LocalizeThenFix, OracleHandle, RepairContext, RepairTechnique, UnionHybrid,
};
use specrepair_llm::{FeedbackSetting, MultiRound};
use specrepair_metrics::rep;
use specrepair_traditional::Atr;
use std::fmt::Write as _;

use crate::config::{StudyConfig, TechniqueId};

/// One ablation arm's aggregate result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationArm {
    /// Arm label.
    pub name: String,
    /// REP count.
    pub repaired: usize,
    /// Mean oracle validations per spec (cost proxy).
    pub mean_explored: f64,
}

/// The ablation comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ablation {
    /// The three arms.
    pub arms: Vec<AblationArm>,
    /// Problems evaluated.
    pub total_specs: usize,
    /// Incremental-oracle counters summed over the per-problem oracles, so
    /// the study binary can fold the ablation's checks into the run totals.
    pub incremental: IncrementalStats,
}

/// Runs the ablation on the given problems.
pub fn run(problems: &[RepairProblem], config: &StudyConfig) -> Ablation {
    let mr_budget = config.budget_for(TechniqueId::Multi(FeedbackSetting::None));
    let mut arms = vec![
        AblationArm {
            name: "Multi-Round_None".to_string(),
            repaired: 0,
            mean_explored: 0.0,
        },
        AblationArm {
            name: "ATR+Multi-Round_None".to_string(),
            repaired: 0,
            mean_explored: 0.0,
        },
        AblationArm {
            name: "Localize>Multi-Round_None".to_string(),
            repaired: 0,
            mean_explored: 0.0,
        },
    ];
    let mut incremental = IncrementalStats::default();
    for p in problems {
        let mut oracle = OracleHandle::fresh();
        if !config.incremental {
            oracle = oracle.without_incremental();
        }
        let ctx = RepairContext::new(p.faulty.clone(), mr_budget)
            .with_source(&p.faulty_source)
            .with_oracle(oracle.clone())
            .with_cancel(CancelToken::none());
        let plain = MultiRound::new(FeedbackSetting::None, config.seed);
        let union = UnionHybrid::new(
            Atr::default(),
            MultiRound::new(FeedbackSetting::None, config.seed),
        );
        let localize = LocalizeThenFix::new(MultiRound::new(FeedbackSetting::None, config.seed), 3);
        for (i, outcome) in [
            plain.repair(&ctx),
            union.repair(&ctx),
            localize.repair(&ctx),
        ]
        .into_iter()
        .enumerate()
        {
            arms[i].repaired += rep(&p.truth, outcome.candidate_source.as_deref()) as usize;
            arms[i].mean_explored += outcome.candidates_explored as f64;
        }
        incremental.absorb(&oracle.incremental_stats());
    }
    let n = problems.len().max(1) as f64;
    for a in &mut arms {
        a.mean_explored /= n;
    }
    Ablation {
        arms,
        total_specs: problems.len(),
        incremental,
    }
}

/// Renders the ablation as text.
pub fn render(ablation: &Ablation) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "ABLATION (SVI): localization-guided hybrid vs plain union, {} specs",
        ablation.total_specs
    );
    let _ = writeln!(out, "{:<28}{:>9}{:>16}", "Arm", "REP", "mean validations");
    for a in &ablation.arms {
        let _ = writeln!(
            out,
            "{:<28}{:>9}{:>16.1}",
            a.name, a.repaired, a.mean_explored
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_arms_with_sane_counts() {
        let problems = specrepair_benchmarks::arepair(0.3);
        let config = StudyConfig {
            scale: 0.3,
            seed: 13,
            ..StudyConfig::default()
        };
        let ab = run(&problems, &config);
        assert_eq!(ab.arms.len(), 3);
        assert_eq!(ab.total_specs, problems.len());
        for a in &ab.arms {
            assert!(a.repaired <= ab.total_specs);
        }
        // The union hybrid can never repair fewer than plain Multi-Round.
        assert!(ab.arms[1].repaired >= ab.arms[0].repaired);
        let text = render(&ab);
        assert!(text.contains("ABLATION"));
    }
}
