//! Study configuration: technique identities, budgets and the calibration
//! documented in EXPERIMENTS.md.

use serde::{Deserialize, Serialize};
use specrepair_core::RepairBudget;
use specrepair_llm::{FeedbackSetting, PromptSetting};

/// A named, rank-ordered roster of techniques raced by the portfolio
/// scheduler. Rank = position in [`RosterId::members`]; the roster order is
/// also the sequential-fallback order the race must reproduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RosterId {
    /// All twelve techniques, Table I column order (traditional first).
    All,
    /// The four traditional tools.
    Traditional,
    /// The eight LLM-based pipelines.
    Llm,
    /// ARepair backed by Single-Round `Loc` — the classic
    /// traditional-primary / LLM-fallback pair.
    ArepairSrLoc,
    /// ARepair backed by Multi-Round `Auto` (the strongest LLM setting).
    ArepairMrAuto,
}

impl RosterId {
    /// Every built-in roster.
    pub const ALL: [RosterId; 5] = [
        RosterId::All,
        RosterId::Traditional,
        RosterId::Llm,
        RosterId::ArepairSrLoc,
        RosterId::ArepairMrAuto,
    ];

    /// The roster's display label (`Portfolio_…`).
    pub fn label(&self) -> &'static str {
        match self {
            RosterId::All => "Portfolio_All",
            RosterId::Traditional => "Portfolio_Traditional",
            RosterId::Llm => "Portfolio_LLM",
            RosterId::ArepairSrLoc => "Portfolio_ARepair+Single-Round_Loc",
            RosterId::ArepairMrAuto => "Portfolio_ARepair+Multi-Round_Auto",
        }
    }

    /// The roster members in rank order (lower rank wins arbitration).
    pub fn members(&self) -> Vec<TechniqueId> {
        match self {
            RosterId::All => TechniqueId::all(),
            RosterId::Traditional => TechniqueId::traditional(),
            RosterId::Llm => TechniqueId::llm_based(),
            RosterId::ArepairSrLoc => vec![
                TechniqueId::ARepair,
                TechniqueId::Single(PromptSetting::Loc),
            ],
            RosterId::ArepairMrAuto => vec![
                TechniqueId::ARepair,
                TechniqueId::Multi(FeedbackSetting::Auto),
            ],
        }
    }
}

/// Identity of one of the twelve studied techniques, in Table I's column
/// order — plus the portfolio compositions racing them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TechniqueId {
    /// ARepair (traditional).
    ARepair,
    /// ICEBAR (traditional).
    Icebar,
    /// BeAFix (traditional).
    BeAFix,
    /// ATR (traditional).
    Atr,
    /// Single-Round LLM under one prompt setting.
    Single(PromptSetting),
    /// Multi-Round LLM under one feedback setting.
    Multi(FeedbackSetting),
    /// A racing portfolio over one of the built-in rosters.
    Portfolio(RosterId),
}

impl TechniqueId {
    /// All twelve techniques in the paper's column order.
    pub fn all() -> Vec<TechniqueId> {
        let mut out = vec![
            TechniqueId::ARepair,
            TechniqueId::Icebar,
            TechniqueId::BeAFix,
            TechniqueId::Atr,
        ];
        out.extend(PromptSetting::ALL.into_iter().map(TechniqueId::Single));
        out.extend(FeedbackSetting::ALL.into_iter().map(TechniqueId::Multi));
        out
    }

    /// The four traditional techniques.
    pub fn traditional() -> Vec<TechniqueId> {
        TechniqueId::all().into_iter().take(4).collect()
    }

    /// The eight LLM-based techniques.
    pub fn llm_based() -> Vec<TechniqueId> {
        TechniqueId::all().into_iter().skip(4).collect()
    }

    /// The racing portfolio compositions (not part of [`TechniqueId::all`]:
    /// Table I keeps its twelve columns; portfolios are extra rows that
    /// the study and the daemon resolve by label).
    pub fn portfolios() -> Vec<TechniqueId> {
        RosterId::ALL
            .into_iter()
            .map(TechniqueId::Portfolio)
            .collect()
    }

    /// All techniques the label namespace resolves: the twelve studied
    /// ones plus the portfolio compositions.
    pub fn with_portfolios() -> Vec<TechniqueId> {
        let mut out = TechniqueId::all();
        out.extend(TechniqueId::portfolios());
        out
    }

    /// The display label used in tables.
    pub fn label(&self) -> &'static str {
        match self {
            TechniqueId::ARepair => "ARepair",
            TechniqueId::Icebar => "ICEBAR",
            TechniqueId::BeAFix => "BeAFix",
            TechniqueId::Atr => "ATR",
            TechniqueId::Single(s) => s.label(),
            TechniqueId::Multi(f) => f.label(),
            TechniqueId::Portfolio(r) => r.label(),
        }
    }

    /// Parses a display label back into a technique id (the inverse of
    /// [`TechniqueId::label`]); `None` for unknown labels. Service entry
    /// points (`specrepaird`) use this to resolve request technique ids.
    pub fn from_label(label: &str) -> Option<TechniqueId> {
        TechniqueId::with_portfolios()
            .into_iter()
            .find(|t| t.label() == label)
    }

    /// Whether this is one of the traditional tools.
    pub fn is_traditional(&self) -> bool {
        matches!(
            self,
            TechniqueId::ARepair | TechniqueId::Icebar | TechniqueId::BeAFix | TechniqueId::Atr
        )
    }
}

/// Study-wide configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StudyConfig {
    /// Corpus scale (1.0 = the paper's 1,974 specifications).
    pub scale: f64,
    /// Base random seed for the stochastic (LLM) techniques.
    pub seed: u64,
    /// Injected LM-transport fault rate (0.0 = no fault injection). Faults
    /// are deterministic: each (problem, technique) cell derives its own
    /// [`FaultPlan`](specrepair_faults::FaultPlan) from `fault_seed`.
    pub fault_rate: f64,
    /// Base seed for the per-cell fault schedules.
    pub fault_seed: u64,
    /// Whether the global candidate-dedup registry is active (`--no-dedup`
    /// turns it off — the control arm of the byte-identity gate). Like the
    /// oracle cache, dedup is a pure performance layer: it must not change
    /// any study result.
    pub dedup: bool,
    /// Whether the incremental oracle engine is active (`--no-incremental`
    /// turns it off — the control arm of the incremental byte-identity
    /// gate). Like the cache and dedup, incremental solving is a pure
    /// performance layer: it must not change any study result.
    pub incremental: bool,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            scale: 1.0,
            seed: 42,
            fault_rate: 0.0,
            fault_seed: 0xFA_017,
            dedup: true,
            incremental: true,
        }
    }
}

impl StudyConfig {
    /// A small configuration for tests and quick runs.
    pub fn smoke() -> StudyConfig {
        StudyConfig {
            scale: 0.01,
            ..StudyConfig::default()
        }
    }

    /// Enables deterministic fault injection at the given rate.
    pub fn with_faults(mut self, rate: f64, seed: u64) -> StudyConfig {
        self.fault_rate = rate;
        self.fault_seed = seed;
        self
    }

    /// Whether this run injects transport faults.
    pub fn chaos_enabled(&self) -> bool {
        self.fault_rate > 0.0
    }

    /// Whether two configurations describe the same run. A resume under a
    /// different configuration would mix incompatible cells, so the binary
    /// refuses it.
    pub fn same_run(&self, other: &StudyConfig) -> bool {
        self.scale == other.scale
            && self.seed == other.seed
            && self.fault_rate == other.fault_rate
            && self.fault_seed == other.fault_seed
            && self.dedup == other.dedup
            && self.incremental == other.incremental
    }

    /// The fault schedule for one (problem, technique) cell.
    ///
    /// Each cell gets an independent plan seeded from `fault_seed` and the
    /// cell's identity, so schedules do not depend on how rayon interleaves
    /// problems — a cell sees the same faults no matter where it runs.
    pub fn fault_plan_for(
        &self,
        problem_id: &str,
        technique: &str,
    ) -> specrepair_faults::FaultPlan {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        problem_id.hash(&mut h);
        technique.hash(&mut h);
        specrepair_faults::FaultPlan::new(self.fault_seed ^ h.finish(), self.fault_rate)
    }

    /// The deterministic trace-cell seed for one (problem, technique)
    /// cell: the root of that cell's span-id space. Like
    /// [`StudyConfig::fault_plan_for`] it depends only on the study seed
    /// and the cell's identity, never on scheduling — so traces from a
    /// `--resume` continuation or a different `--workers` count carry the
    /// same span ids for the same cells and can be diffed directly.
    pub fn cell_seed_for(&self, problem_id: &str, technique: &str) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        problem_id.hash(&mut h);
        technique.hash(&mut h);
        self.seed ^ h.finish()
    }

    /// The per-technique budget calibration (each real tool ran with its
    /// own internal limits and timeouts; these are the equivalents, chosen
    /// so the reproduction's REP profile matches Table I — see
    /// EXPERIMENTS.md §Calibration).
    pub fn budget_for(&self, id: TechniqueId) -> RepairBudget {
        match id {
            TechniqueId::ARepair => RepairBudget {
                max_candidates: 60,
                max_rounds: 1,
            },
            TechniqueId::Icebar => RepairBudget {
                max_candidates: 150,
                max_rounds: 8,
            },
            TechniqueId::BeAFix => RepairBudget {
                max_candidates: 18,
                max_rounds: 2,
            },
            TechniqueId::Atr => RepairBudget {
                max_candidates: 40,
                max_rounds: 1,
            },
            TechniqueId::Single(_) => RepairBudget {
                max_candidates: 10,
                max_rounds: 1,
            },
            TechniqueId::Multi(_) => RepairBudget {
                max_candidates: 100,
                max_rounds: 6,
            },
            // A portfolio's budget is carried per entrant (each roster
            // member races under its own calibrated budget); the composite
            // context's budget is never charged.
            TechniqueId::Portfolio(_) => RepairBudget::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_techniques_in_paper_order() {
        let all = TechniqueId::all();
        assert_eq!(all.len(), 12);
        let labels: Vec<_> = all.iter().map(|t| t.label()).collect();
        assert_eq!(
            labels,
            vec![
                "ARepair",
                "ICEBAR",
                "BeAFix",
                "ATR",
                "Single-Round_Loc+Fix",
                "Single-Round_Loc",
                "Single-Round_Pass",
                "Single-Round_None",
                "Single-Round_Loc+Pass",
                "Multi-Round_None",
                "Multi-Round_Generic",
                "Multi-Round_Auto",
            ]
        );
        assert_eq!(TechniqueId::traditional().len(), 4);
        assert_eq!(TechniqueId::llm_based().len(), 8);
        assert!(TechniqueId::Atr.is_traditional());
        assert!(!TechniqueId::Multi(FeedbackSetting::None).is_traditional());
    }

    #[test]
    fn labels_round_trip_through_from_label() {
        for id in TechniqueId::with_portfolios() {
            assert_eq!(TechniqueId::from_label(id.label()), Some(id));
        }
        assert_eq!(TechniqueId::from_label("NoSuchTool"), None);
    }

    #[test]
    fn portfolio_rosters_are_ranked_and_labelled() {
        assert_eq!(TechniqueId::portfolios().len(), RosterId::ALL.len());
        for roster in RosterId::ALL {
            let members = roster.members();
            assert!(members.len() >= 2, "{}: roster too small", roster.label());
            assert!(roster.label().starts_with("Portfolio_"));
            // Members are real (non-portfolio) techniques with labels.
            for m in &members {
                assert!(!matches!(m, TechniqueId::Portfolio(_)));
                assert!(TechniqueId::from_label(m.label()).is_some());
            }
            let id = TechniqueId::Portfolio(roster);
            assert!(!id.is_traditional());
            assert_eq!(TechniqueId::from_label(id.label()), Some(id));
        }
        assert_eq!(RosterId::All.members().len(), 12);
        assert_eq!(RosterId::ArepairSrLoc.members()[0], TechniqueId::ARepair);
    }

    #[test]
    fn budgets_differ_per_technique() {
        let cfg = StudyConfig::default();
        assert!(
            cfg.budget_for(TechniqueId::Multi(FeedbackSetting::None))
                .max_candidates
                > cfg.budget_for(TechniqueId::BeAFix).max_candidates
        );
        assert_eq!(
            cfg.budget_for(TechniqueId::Single(PromptSetting::Loc))
                .max_rounds,
            1
        );
    }
}
