//! The study runner: every technique over every benchmark problem, with
//! per-candidate metrics. All tables and figures derive from one run.

use mualloy_analyzer::{IncrementalStats, Oracle, OracleCacheStats};
use parking_lot::Mutex;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use specrepair_benchmarks::RepairProblem;
use specrepair_core::{
    CancelToken, DedupStats, OracleHandle, OutcomeReason, RepairContext, RepairOutcome,
    RepairTechnique, VerdictStore,
};
use specrepair_llm::{invert_fix_description, MultiRound, ProblemHints, ResilientLm, SingleRound};
use specrepair_metrics::candidate_metrics;
use specrepair_traditional::{ARepair, Atr, BeAFix, Icebar};
use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, OnceLock};

use crate::config::{StudyConfig, TechniqueId};
use crate::journal::StudyJournal;

/// One (problem, technique) evaluation record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpecRecord {
    /// Problem id (`classroom/tutoring/17`).
    pub problem: String,
    /// `"A4F"` or `"ARepair"`.
    pub benchmark: String,
    /// Domain / problem family.
    pub domain: String,
    /// Technique label.
    pub technique: String,
    /// REP against the ground truth.
    pub rep: u8,
    /// Token Match of the final candidate, if any.
    pub tm: Option<f64>,
    /// Syntax Match of the final candidate, if any.
    pub sm: Option<f64>,
    /// Tree-diff edit distance of the candidate against the *faulty* spec
    /// (persistent-id matched; see [`specrepair_metrics::tree_diff`]): how
    /// many subtree edits the repair made. `None` without a parsed
    /// candidate.
    pub tree_edits: Option<u32>,
    /// Tree-diff similarity of the candidate against the faulty spec, in
    /// `[0, 1]` — high values mean a minimal, surgical repair.
    pub tree_sim: Option<f64>,
    /// The technique's own success verdict.
    pub internal_success: bool,
    /// Oracle validations / drafts spent.
    pub explored: usize,
    /// Why the attempt ended ([`OutcomeReason::Crashed`] marks a cell whose
    /// technique panicked — contained by the runner, never lost).
    pub reason: OutcomeReason,
}

impl SpecRecord {
    /// The journal / dedup key of this record's cell.
    pub fn cell_key(&self) -> (String, String) {
        (self.problem.clone(), self.technique.clone())
    }
}

/// The full result set of a study run.
#[derive(Debug, Default)]
pub struct StudyResults {
    /// All records, grouped by problem (all techniques for problem 0, then
    /// problem 1, …).
    pub records: Vec<SpecRecord>,
    /// Number of problems evaluated.
    pub num_problems: usize,
    /// Lazily-built `technique label -> record positions` index; every
    /// per-technique accessor is a lookup instead of a scan over all
    /// `problems × 12` records. Built on first use — `records` must not be
    /// mutated afterwards (the study pipeline never does).
    index: OnceLock<HashMap<String, Vec<u32>>>,
}

// Manual impls: the index is derived state and must stay out of the
// serialized form (the cache-on/cache-off byte-identity check compares
// serialized `StudyResults`) and reset on clone/deserialize.
impl Clone for StudyResults {
    fn clone(&self) -> StudyResults {
        StudyResults {
            records: self.records.clone(),
            num_problems: self.num_problems,
            index: OnceLock::new(),
        }
    }
}

impl Serialize for StudyResults {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("records".to_string(), self.records.to_value()),
            ("num_problems".to_string(), self.num_problems.to_value()),
        ])
    }
}

impl Deserialize for StudyResults {
    fn from_value(v: &serde::Value) -> Result<StudyResults, serde::Error> {
        let serde::Value::Map(m) = v else {
            return Err(serde::Error::custom("StudyResults: expected a map"));
        };
        Ok(StudyResults {
            records: Deserialize::from_value(serde::field(m, "records")?)?,
            num_problems: Deserialize::from_value(serde::field(m, "num_problems")?)?,
            index: OnceLock::new(),
        })
    }
}

impl StudyResults {
    /// Builds a result set over the given records.
    pub fn new(records: Vec<SpecRecord>, num_problems: usize) -> StudyResults {
        StudyResults {
            records,
            num_problems,
            index: OnceLock::new(),
        }
    }

    fn index(&self) -> &HashMap<String, Vec<u32>> {
        self.index.get_or_init(|| {
            let mut idx: HashMap<String, Vec<u32>> = HashMap::new();
            for (i, r) in self.records.iter().enumerate() {
                idx.entry(r.technique.clone()).or_default().push(i as u32);
            }
            idx
        })
    }

    /// Records of one technique, in problem order.
    pub fn of_technique(&self, label: &str) -> Vec<&SpecRecord> {
        self.index()
            .get(label)
            .map(|positions| {
                positions
                    .iter()
                    .map(|&i| &self.records[i as usize])
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Total REP count of a technique, optionally filtered by benchmark.
    pub fn rep_count(&self, label: &str, benchmark: Option<&str>) -> usize {
        self.of_technique(label)
            .iter()
            .filter(|r| benchmark.is_none_or(|b| r.benchmark == b))
            .map(|r| r.rep as usize)
            .sum()
    }

    /// Per-spec REP booleans of a technique, in problem order.
    pub fn rep_vector(&self, label: &str) -> Vec<bool> {
        self.of_technique(label)
            .iter()
            .map(|r| r.rep == 1)
            .collect()
    }

    /// Per-spec combined similarity (mean of TM and SM; 0 when absent), in
    /// problem order — the signal Figure 3 correlates.
    pub fn similarity_vector(&self, label: &str) -> Vec<f64> {
        self.of_technique(label)
            .iter()
            .map(|r| match (r.tm, r.sm) {
                (Some(t), Some(s)) => (t + s) / 2.0,
                (Some(t), None) => t,
                (None, Some(s)) => s,
                (None, None) => 0.0,
            })
            .collect()
    }
}

/// Aggregated performance-layer counters of one study run: the oracle
/// memo table plus the global candidate-dedup registry. Both layers are
/// required to be behaviorally inert (asserted by the `study_pipeline`
/// byte-identity gates), so these counters are pure observability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Oracle memo-table counters, aggregated over every per-problem
    /// oracle.
    pub cache: OracleCacheStats,
    /// Candidate-dedup registry counters, aggregated likewise.
    pub dedup: DedupStats,
    /// Incremental-oracle session counters, aggregated likewise.
    pub incremental: IncrementalStats,
}

/// Builds the hints the Single-Round prompts may use for one problem: the
/// benchmark's known fault locations, the inverted edit script, and a
/// failing check command as the *Pass* requirement.
pub fn hints_for(problem: &RepairProblem) -> ProblemHints {
    hints_for_with(&Oracle::new(), problem)
}

/// [`hints_for`] against a caller-provided oracle: the failing-command scan
/// it performs is the same query every technique issues first, so sharing
/// the oracle makes it free within a study run.
pub fn hints_for_with(oracle: &Oracle, problem: &RepairProblem) -> ProblemHints {
    let pass = oracle
        .failing_commands(&problem.faulty)
        .ok()
        .and_then(|fs| {
            fs.into_iter()
                .find(|o| o.command.is_check())
                .map(|o| o.command.target().to_string())
        });
    ProblemHints {
        loc: problem.fault_spans.clone(),
        sites: specrepair_core::sites_for_spans(&problem.faulty, &problem.fault_spans),
        fix: problem
            .edits
            .iter()
            .map(|e| invert_fix_description(e))
            .collect(),
        pass,
    }
}

/// Runs one technique on one problem with a fresh oracle.
pub fn repair_with(
    id: TechniqueId,
    problem: &RepairProblem,
    config: &StudyConfig,
) -> RepairOutcome {
    repair_with_oracle(&OracleHandle::fresh(), id, problem, config)
}

/// Runs one technique on one problem against a shared oracle. Portfolio
/// ids race their roster on a machine-sized worker pool (see
/// [`crate::portfolio`] for explicit worker control).
pub fn repair_with_oracle(
    oracle: &OracleHandle,
    id: TechniqueId,
    problem: &RepairProblem,
    config: &StudyConfig,
) -> RepairOutcome {
    if let TechniqueId::Portfolio(roster) = id {
        return crate::portfolio::race(oracle, roster, problem, config, None).outcome;
    }
    let ctx = RepairContext::new(problem.faulty.clone(), config.budget_for(id))
        .with_source(&problem.faulty_source)
        .with_oracle(oracle.clone())
        .with_cancel(CancelToken::none());
    run_solo(id, problem, config, &ctx)
}

/// Dispatches one *non-portfolio* technique against a prepared context —
/// the shared core of the solo study cells and of every portfolio entrant
/// (which arrives here with its own budget, child cancel token and the
/// race's shared oracle).
///
/// Each LLM cell gets its own transport stack: with fault injection on,
/// the cell's fault schedule is a pure function of (fault_seed, cell
/// identity), independent of scheduling — a portfolio entrant sees exactly
/// the faults its solo row would.
pub(crate) fn run_solo(
    id: TechniqueId,
    problem: &RepairProblem,
    config: &StudyConfig,
    ctx: &RepairContext,
) -> RepairOutcome {
    let lm = |label: &str| {
        if config.chaos_enabled() {
            specrepair_llm::chaos_stack(config.fault_plan_for(&problem.id, label))
        } else {
            ResilientLm::synthetic()
        }
    };
    match id {
        TechniqueId::ARepair => ARepair::default().repair(ctx),
        TechniqueId::Icebar => Icebar::default().repair(ctx),
        TechniqueId::BeAFix => BeAFix::default().repair(ctx),
        TechniqueId::Atr => Atr::default().repair(ctx),
        TechniqueId::Single(setting) => SingleRound::new(setting, config.seed)
            .with_hints(hints_for_with(ctx.oracle.service(), problem))
            .with_lm(lm(setting.label()))
            .repair(ctx),
        TechniqueId::Multi(feedback) => MultiRound::new(feedback, config.seed)
            .with_lm(lm(feedback.label()))
            .repair(ctx),
        TechniqueId::Portfolio(_) => unreachable!("portfolios are raced, not run solo"),
    }
}

/// Evaluates one (problem, technique) pair into a record with a fresh
/// oracle.
pub fn evaluate(id: TechniqueId, problem: &RepairProblem, config: &StudyConfig) -> SpecRecord {
    evaluate_with(&OracleHandle::fresh(), id, problem, config)
}

/// Evaluates one (problem, technique) pair against a shared oracle.
pub fn evaluate_with(
    oracle: &OracleHandle,
    id: TechniqueId,
    problem: &RepairProblem,
    config: &StudyConfig,
) -> SpecRecord {
    let outcome = repair_with_oracle(oracle, id, problem, config);
    record_from(problem, id.label(), &outcome)
}

/// Assembles a [`SpecRecord`] from one finished outcome — shared by the
/// solo study cells and the portfolio passes (which race an outcome first
/// and score it the same way afterwards).
pub fn record_from(problem: &RepairProblem, label: &str, outcome: &RepairOutcome) -> SpecRecord {
    let metrics = candidate_metrics(
        &problem.truth,
        &problem.truth_source,
        outcome.candidate_source.as_deref(),
    );
    // How far the repair strayed from the faulty spec, as a minimal edit
    // script over persistent node ids (exact for mutation-derived
    // candidates, positional for re-parsed model output).
    let diff = outcome
        .candidate
        .as_ref()
        .map(|c| specrepair_metrics::tree_diff(&problem.faulty, c).summary());
    SpecRecord {
        problem: problem.id.clone(),
        benchmark: problem.benchmark.label().to_string(),
        domain: problem.domain.clone(),
        technique: label.to_string(),
        rep: metrics.rep,
        tm: metrics.tm,
        sm: metrics.sm,
        tree_edits: diff.map(|d| d.edit_distance),
        tree_sim: diff.map(|d| d.similarity),
        internal_success: outcome.success,
        explored: outcome.candidates_explored,
        reason: outcome.reason,
    }
}

/// [`evaluate_with`], with panics contained: a technique that panics is
/// recorded as a [`OutcomeReason::Crashed`] cell instead of tearing down
/// the whole study run. The rest of the corpus still completes and the
/// crash stays visible in the artifacts.
pub fn evaluate_cell(
    oracle: &OracleHandle,
    id: TechniqueId,
    problem: &RepairProblem,
    config: &StudyConfig,
) -> SpecRecord {
    // Root of the cell's trace: a deterministic span-id space seeded from
    // the cell identity, plus one "cell" span covering the whole attempt.
    // All span-tree bookkeeping is inert (one relaxed atomic load) unless a
    // collector was enabled via `specrepair_trace::set_enabled`.
    let _trace_scope =
        specrepair_trace::cell_scope(config.cell_seed_for(&problem.id, id.label()), 0, None);
    let cell_span = specrepair_trace::span("cell", specrepair_trace::Phase::Orchestration);
    if cell_span.is_active() {
        cell_span.attr_str("technique", id.label());
        cell_span.attr_str("problem", &problem.id);
    }
    std::panic::catch_unwind(AssertUnwindSafe(|| {
        evaluate_with(oracle, id, problem, config)
    }))
    .unwrap_or_else(|_| SpecRecord {
        problem: problem.id.clone(),
        benchmark: problem.benchmark.label().to_string(),
        domain: problem.domain.clone(),
        technique: id.label().to_string(),
        rep: 0,
        tm: None,
        sm: None,
        tree_edits: None,
        tree_sim: None,
        internal_success: false,
        explored: 0,
        reason: OutcomeReason::Crashed,
    })
}

/// Runs all twelve techniques over the problem set (data-parallel across
/// problems), sharing one memoizing oracle per problem.
pub fn run_study(problems: &[RepairProblem], config: &StudyConfig) -> StudyResults {
    run_study_cached(problems, config, true).0
}

/// [`run_study`] with explicit cache control, reporting the aggregated
/// oracle cache and candidate-dedup statistics alongside the results.
///
/// The oracle memoizes by the candidate's canonical fingerprint, so a
/// cached run returns exactly the answers a fresh [`Oracle`] would
/// compute: neither `use_cache` nor `config.dedup` may change
/// `StudyResults` by a single byte (asserted by the `study_pipeline`
/// integration tests).
pub fn run_study_cached(
    problems: &[RepairProblem],
    config: &StudyConfig,
    use_cache: bool,
) -> (StudyResults, RunStats) {
    run_study_journaled(problems, config, use_cache, None, &HashMap::new())
}

/// [`run_study_cached`] with crash-safe journaling and resume.
///
/// Cells present in `done` (loaded from a prior run's journal) are reused
/// verbatim and not re-evaluated; every freshly computed record is appended
/// to `journal` — write-through, before the runner moves on — so a run
/// killed at any point can resume from the journal and still produce
/// byte-identical results: cells are deterministic and the final record
/// vector is assembled in canonical (problem × technique) order regardless
/// of which run computed which cell.
pub fn run_study_journaled(
    problems: &[RepairProblem],
    config: &StudyConfig,
    use_cache: bool,
    journal: Option<&StudyJournal>,
    done: &HashMap<(String, String), SpecRecord>,
) -> (StudyResults, RunStats) {
    run_study_persistent(problems, config, use_cache, journal, done, None)
}

/// [`run_study_journaled`] with a persistent verdict tier: when `persist`
/// is given, every per-problem oracle probes it before invoking the solver
/// and writes fresh verdicts through to it, so a second run over the same
/// corpus warm-boots from disk. The tier only serves memoized *verdicts*
/// (never changes them), so results stay byte-identical with or without
/// it — the same inertness contract `use_cache` already carries.
pub fn run_study_persistent(
    problems: &[RepairProblem],
    config: &StudyConfig,
    use_cache: bool,
    journal: Option<&StudyJournal>,
    done: &HashMap<(String, String), SpecRecord>,
    persist: Option<&Arc<dyn VerdictStore>>,
) -> (StudyResults, RunStats) {
    let techniques = TechniqueId::all();
    let stats = Mutex::new(RunStats::default());
    let records: Vec<SpecRecord> = problems
        .par_iter()
        .flat_map_iter(|p| {
            let config = *config;
            // One oracle per problem: the twelve techniques keep re-checking
            // the same faulty spec and overlapping candidate sets, which is
            // where the memo table earns its keep. Problems stay independent
            // so rayon's work-stealing never contends on one table.
            let mut oracle = if use_cache {
                OracleHandle::fresh()
            } else {
                OracleHandle::disabled()
            };
            if !config.dedup {
                oracle = oracle.without_dedup();
            }
            if !config.incremental {
                oracle = oracle.without_incremental();
            }
            if let Some(store) = persist {
                oracle = oracle.with_persistent(Arc::clone(store));
            }
            let records: Vec<SpecRecord> = techniques
                .iter()
                .map(|&id| {
                    if let Some(r) = done.get(&(p.id.clone(), id.label().to_string())) {
                        return r.clone();
                    }
                    let r = evaluate_cell(&oracle, id, p, &config);
                    if let Some(j) = journal {
                        // A journal that cannot be written is a loud stop:
                        // continuing would silently forfeit crash safety.
                        j.append(&r).expect("cannot append to study journal");
                    }
                    r
                })
                .collect();
            let mut s = stats.lock();
            s.cache.absorb(&oracle.stats());
            s.dedup.absorb(&oracle.dedup_stats());
            s.incremental.absorb(&oracle.incremental_stats());
            drop(s);
            records
        })
        .collect();
    (
        StudyResults::new(records, problems.len()),
        stats.into_inner(),
    )
}

/// Convenience: generates both corpora at the configured scale and runs
/// the study.
pub fn run_full_study(config: &StudyConfig) -> (Vec<RepairProblem>, StudyResults) {
    let problems = specrepair_benchmarks::full_study(config.scale);
    let results = run_study(&problems, config);
    (problems, results)
}

/// Stable problem ordering check used by the correlation and hybrid
/// analyses: record vectors of two techniques must be aligned by problem.
pub fn aligned(results: &StudyResults, a: &str, b: &str) -> bool {
    let av = results.of_technique(a);
    let bv = results.of_technique(b);
    av.len() == bv.len() && av.iter().zip(&bv).all(|(x, y)| x.problem == y.problem)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Vec<RepairProblem>, StudyResults) {
        let config = StudyConfig {
            scale: 0.003,
            seed: 7,
            ..StudyConfig::default()
        };
        run_full_study(&config)
    }

    #[test]
    fn produces_twelve_records_per_problem() {
        let (problems, results) = tiny();
        assert!(!problems.is_empty());
        assert_eq!(results.records.len(), problems.len() * 12);
        assert_eq!(results.num_problems, problems.len());
        for id in TechniqueId::all() {
            assert!(aligned(&results, id.label(), "ATR"), "{}", id.label());
        }
    }

    #[test]
    fn rep_vectors_match_counts() {
        let (_, results) = tiny();
        for id in TechniqueId::all() {
            let v = results.rep_vector(id.label());
            let count = results.rep_count(id.label(), None);
            assert_eq!(v.iter().filter(|&&x| x).count(), count);
        }
    }

    #[test]
    fn similarity_vectors_are_bounded() {
        let (_, results) = tiny();
        for id in TechniqueId::all() {
            for s in results.similarity_vector(id.label()) {
                assert!((0.0..=1.0).contains(&s));
            }
        }
    }

    #[test]
    fn benchmark_filter_partitions_counts() {
        let (_, results) = tiny();
        for id in TechniqueId::all() {
            let total = results.rep_count(id.label(), None);
            let a4f = results.rep_count(id.label(), Some("A4F"));
            let arep = results.rep_count(id.label(), Some("ARepair"));
            assert_eq!(total, a4f + arep);
        }
    }

    #[test]
    fn hints_include_locations_and_fixes() {
        let problems = specrepair_benchmarks::arepair(0.1);
        let h = hints_for(&problems[0]);
        assert!(!h.loc.is_empty());
        assert!(!h.fix.is_empty());
    }
}
