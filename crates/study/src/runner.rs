//! The study runner: every technique over every benchmark problem, with
//! per-candidate metrics. All tables and figures derive from one run.

use mualloy_analyzer::Analyzer;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use specrepair_benchmarks::RepairProblem;
use specrepair_core::{RepairContext, RepairOutcome, RepairTechnique};
use specrepair_llm::{invert_fix_description, MultiRound, ProblemHints, SingleRound};
use specrepair_metrics::candidate_metrics;
use specrepair_traditional::{ARepair, Atr, BeAFix, Icebar};

use crate::config::{StudyConfig, TechniqueId};

/// One (problem, technique) evaluation record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpecRecord {
    /// Problem id (`classroom/tutoring/17`).
    pub problem: String,
    /// `"A4F"` or `"ARepair"`.
    pub benchmark: String,
    /// Domain / problem family.
    pub domain: String,
    /// Technique label.
    pub technique: String,
    /// REP against the ground truth.
    pub rep: u8,
    /// Token Match of the final candidate, if any.
    pub tm: Option<f64>,
    /// Syntax Match of the final candidate, if any.
    pub sm: Option<f64>,
    /// The technique's own success verdict.
    pub internal_success: bool,
    /// Oracle validations / drafts spent.
    pub explored: usize,
}

/// The full result set of a study run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StudyResults {
    /// All records, grouped by problem (all techniques for problem 0, then
    /// problem 1, …).
    pub records: Vec<SpecRecord>,
    /// Number of problems evaluated.
    pub num_problems: usize,
}

impl StudyResults {
    /// Records of one technique, in problem order.
    pub fn of_technique(&self, label: &str) -> Vec<&SpecRecord> {
        self.records.iter().filter(|r| r.technique == label).collect()
    }

    /// Total REP count of a technique, optionally filtered by benchmark.
    pub fn rep_count(&self, label: &str, benchmark: Option<&str>) -> usize {
        self.records
            .iter()
            .filter(|r| r.technique == label)
            .filter(|r| benchmark.map_or(true, |b| r.benchmark == b))
            .map(|r| r.rep as usize)
            .sum()
    }

    /// Per-spec REP booleans of a technique, in problem order.
    pub fn rep_vector(&self, label: &str) -> Vec<bool> {
        self.of_technique(label).iter().map(|r| r.rep == 1).collect()
    }

    /// Per-spec combined similarity (mean of TM and SM; 0 when absent), in
    /// problem order — the signal Figure 3 correlates.
    pub fn similarity_vector(&self, label: &str) -> Vec<f64> {
        self.of_technique(label)
            .iter()
            .map(|r| match (r.tm, r.sm) {
                (Some(t), Some(s)) => (t + s) / 2.0,
                (Some(t), None) => t,
                (None, Some(s)) => s,
                (None, None) => 0.0,
            })
            .collect()
    }
}

/// Builds the hints the Single-Round prompts may use for one problem: the
/// benchmark's known fault locations, the inverted edit script, and a
/// failing check command as the *Pass* requirement.
pub fn hints_for(problem: &RepairProblem) -> ProblemHints {
    let pass = Analyzer::new(problem.faulty.clone())
        .failing_commands()
        .ok()
        .and_then(|fs| {
            fs.into_iter()
                .find(|o| o.command.is_check())
                .map(|o| o.command.target().to_string())
        });
    ProblemHints {
        loc: problem.fault_spans.clone(),
        fix: problem.edits.iter().map(|e| invert_fix_description(e)).collect(),
        pass,
    }
}

/// Runs one technique on one problem.
pub fn repair_with(
    id: TechniqueId,
    problem: &RepairProblem,
    config: &StudyConfig,
) -> RepairOutcome {
    let ctx = RepairContext {
        faulty: problem.faulty.clone(),
        source: problem.faulty_source.clone(),
        budget: config.budget_for(id),
    };
    match id {
        TechniqueId::ARepair => ARepair::default().repair(&ctx),
        TechniqueId::Icebar => Icebar::default().repair(&ctx),
        TechniqueId::BeAFix => BeAFix::default().repair(&ctx),
        TechniqueId::Atr => Atr::default().repair(&ctx),
        TechniqueId::Single(setting) => SingleRound::new(setting, config.seed)
            .with_hints(hints_for(problem))
            .repair(&ctx),
        TechniqueId::Multi(feedback) => MultiRound::new(feedback, config.seed).repair(&ctx),
    }
}

/// Evaluates one (problem, technique) pair into a record.
pub fn evaluate(id: TechniqueId, problem: &RepairProblem, config: &StudyConfig) -> SpecRecord {
    let outcome = repair_with(id, problem, config);
    let metrics = candidate_metrics(
        &problem.truth,
        &problem.truth_source,
        outcome.candidate_source.as_deref(),
    );
    SpecRecord {
        problem: problem.id.clone(),
        benchmark: problem.benchmark.label().to_string(),
        domain: problem.domain.clone(),
        technique: id.label().to_string(),
        rep: metrics.rep,
        tm: metrics.tm,
        sm: metrics.sm,
        internal_success: outcome.success,
        explored: outcome.candidates_explored,
    }
}

/// Runs all twelve techniques over the problem set (data-parallel across
/// problems).
pub fn run_study(problems: &[RepairProblem], config: &StudyConfig) -> StudyResults {
    let techniques = TechniqueId::all();
    let records: Vec<SpecRecord> = problems
        .par_iter()
        .flat_map_iter(|p| {
            let config = *config;
            techniques
                .iter()
                .map(move |&id| evaluate(id, p, &config))
                .collect::<Vec<_>>()
        })
        .collect();
    StudyResults {
        records,
        num_problems: problems.len(),
    }
}

/// Convenience: generates both corpora at the configured scale and runs
/// the study.
pub fn run_full_study(config: &StudyConfig) -> (Vec<RepairProblem>, StudyResults) {
    let problems = specrepair_benchmarks::full_study(config.scale);
    let results = run_study(&problems, config);
    (problems, results)
}

/// Stable problem ordering check used by the correlation and hybrid
/// analyses: record vectors of two techniques must be aligned by problem.
pub fn aligned(results: &StudyResults, a: &str, b: &str) -> bool {
    let av = results.of_technique(a);
    let bv = results.of_technique(b);
    av.len() == bv.len()
        && av
            .iter()
            .zip(&bv)
            .all(|(x, y)| x.problem == y.problem)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Vec<RepairProblem>, StudyResults) {
        let config = StudyConfig {
            scale: 0.003,
            seed: 7,
        };
        run_full_study(&config)
    }

    #[test]
    fn produces_twelve_records_per_problem() {
        let (problems, results) = tiny();
        assert!(!problems.is_empty());
        assert_eq!(results.records.len(), problems.len() * 12);
        assert_eq!(results.num_problems, problems.len());
        for id in TechniqueId::all() {
            assert!(aligned(&results, id.label(), "ATR"), "{}", id.label());
        }
    }

    #[test]
    fn rep_vectors_match_counts() {
        let (_, results) = tiny();
        for id in TechniqueId::all() {
            let v = results.rep_vector(id.label());
            let count = results.rep_count(id.label(), None);
            assert_eq!(v.iter().filter(|&&x| x).count(), count);
        }
    }

    #[test]
    fn similarity_vectors_are_bounded() {
        let (_, results) = tiny();
        for id in TechniqueId::all() {
            for s in results.similarity_vector(id.label()) {
                assert!((0.0..=1.0).contains(&s));
            }
        }
    }

    #[test]
    fn benchmark_filter_partitions_counts() {
        let (_, results) = tiny();
        for id in TechniqueId::all() {
            let total = results.rep_count(id.label(), None);
            let a4f = results.rep_count(id.label(), Some("A4F"));
            let arep = results.rep_count(id.label(), Some("ARepair"));
            assert_eq!(total, a4f + arep);
        }
    }

    #[test]
    fn hints_include_locations_and_fixes() {
        let problems = specrepair_benchmarks::arepair(0.1);
        let h = hints_for(&problems[0]);
        assert!(!h.loc.is_empty());
        assert!(!h.fix.is_empty());
    }
}
