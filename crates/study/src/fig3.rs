//! Experiment E3 — Figure 3: Pearson correlation heatmap between repair
//! techniques over their per-specification similarity scores.

use serde::{Deserialize, Serialize};
use specrepair_metrics::{correlation_matrix, pearson_t_statistic};
use std::fmt::Write as _;

use crate::config::TechniqueId;
use crate::runner::StudyResults;

/// The correlation matrix data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3 {
    /// Technique labels, in column order.
    pub techniques: Vec<String>,
    /// Symmetric Pearson matrix (`None` = undefined for constant vectors).
    pub matrix: Vec<Vec<Option<f64>>>,
    /// Number of specifications each correlation is computed over.
    pub samples: usize,
}

impl Fig3 {
    /// The correlation between two techniques by label.
    pub fn correlation(&self, a: &str, b: &str) -> Option<f64> {
        let i = self.techniques.iter().position(|t| t == a)?;
        let j = self.techniques.iter().position(|t| t == b)?;
        self.matrix[i][j]
    }

    /// Whether a correlation is significant at roughly p < 0.001 (|t| ≳ 3.3).
    pub fn significant(&self, a: &str, b: &str) -> Option<bool> {
        let r = self.correlation(a, b)?;
        let t = pearson_t_statistic(r, self.samples)?;
        Some(t.abs() > 3.3)
    }
}

/// Builds Figure 3 from study results: each technique contributes its
/// per-spec similarity vector (mean of TM and SM, 0 for absent candidates)
/// and every pair is correlated.
pub fn build(results: &StudyResults) -> Fig3 {
    let techniques: Vec<String> = TechniqueId::all()
        .iter()
        .map(|t| t.label().to_string())
        .collect();
    let series: Vec<(String, Vec<f64>)> = techniques
        .iter()
        .map(|t| (t.clone(), results.similarity_vector(t)))
        .collect();
    let samples = series.first().map(|(_, v)| v.len()).unwrap_or(0);
    Fig3 {
        techniques,
        matrix: correlation_matrix(&series),
        samples,
    }
}

/// Renders the heatmap as text (two-digit correlations ×100).
pub fn render(fig: &Fig3) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "FIGURE 3: Pearson correlation between techniques (x100, similarity vectors, n={})",
        fig.samples
    );
    let short = |t: &str| {
        t.replace("Single-Round_", "SR_")
            .replace("Multi-Round_", "MR_")
    };
    let _ = write!(out, "{:<12}", "");
    for t in &fig.techniques {
        let _ = write!(out, "{:>9}", truncate(&short(t), 9));
    }
    let _ = writeln!(out);
    for (i, t) in fig.techniques.iter().enumerate() {
        let _ = write!(out, "{:<12}", truncate(&short(t), 12));
        for j in 0..fig.techniques.len() {
            match fig.matrix[i][j] {
                Some(r) => {
                    let _ = write!(out, "{:>9.0}", r * 100.0);
                }
                None => {
                    let _ = write!(out, "{:>9}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

fn truncate(s: &str, n: usize) -> String {
    s.chars().take(n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StudyConfig;
    use crate::runner::run_full_study;

    #[test]
    fn matrix_shape_and_diagonal() {
        let (_, results) = run_full_study(&StudyConfig {
            scale: 0.004,
            seed: 3,
            ..StudyConfig::default()
        });
        let fig = build(&results);
        assert_eq!(fig.techniques.len(), 12);
        assert_eq!(fig.matrix.len(), 12);
        for i in 0..12 {
            assert_eq!(fig.matrix[i][i], Some(1.0));
            for j in 0..12 {
                assert_eq!(fig.matrix[i][j], fig.matrix[j][i]);
                if let Some(r) = fig.matrix[i][j] {
                    assert!((-1.0..=1.0).contains(&r));
                }
            }
        }
        let text = render(&fig);
        assert!(text.contains("FIGURE 3"));
        assert!(fig.correlation("ATR", "ATR") == Some(1.0));
    }
}
