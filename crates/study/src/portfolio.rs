//! Portfolio rows of the study: race the built-in rosters per problem,
//! compare against the sequential fallback chain (`UnionHybrid` generalized
//! to N entrants) and the members' union (Table II), and measure the
//! wall-clock speedup the racing scheduler buys.
//!
//! The determinism contract is checked here end-to-end: the racing pass and
//! the one-worker sequential pass must produce byte-identical
//! [`SpecRecord`]s ([`PortfolioStudy::records_identical`]).

use serde::Serialize;
use specrepair_benchmarks::RepairProblem;
use specrepair_core::{CancelToken, DedupStats, OracleHandle, RepairContext};
use specrepair_portfolio::{Entrant, Portfolio, PortfolioOutcome};
use std::time::Instant;

use crate::config::{RosterId, StudyConfig, TechniqueId};
use crate::runner::{evaluate_cell, record_from, run_solo, SpecRecord};

/// Builds the rank-ordered entrants of one roster on one problem. Each
/// entrant is the member's exact solo cell — same calibrated budget, same
/// chaos fault plan (keyed by problem and member label, not by schedule) —
/// run against the per-entrant context the scheduler prepares (child cancel
/// token, shared oracle).
pub fn entrants_for<'a>(
    roster: RosterId,
    problem: &'a RepairProblem,
    config: &'a StudyConfig,
) -> Vec<Entrant<'a>> {
    roster
        .members()
        .into_iter()
        .map(|member| {
            Entrant::new(
                member.label(),
                config.budget_for(member),
                move |ctx: &RepairContext| run_solo(member, problem, config, ctx),
            )
        })
        .collect()
}

/// Races one roster on one problem, sharing `oracle` across all entrants.
/// `workers: None` sizes the pool to the machine; `Some(1)` degenerates to
/// the sequential fallback chain.
pub fn race(
    oracle: &OracleHandle,
    roster: RosterId,
    problem: &RepairProblem,
    config: &StudyConfig,
    workers: Option<usize>,
) -> PortfolioOutcome {
    let ctx = RepairContext::new(
        problem.faulty.clone(),
        config.budget_for(TechniqueId::Portfolio(roster)),
    )
    .with_source(&problem.faulty_source)
    .with_oracle(oracle.clone())
    .with_cancel(CancelToken::none());
    let mut portfolio = Portfolio::new(roster.label());
    if let Some(w) = workers {
        portfolio = portfolio.with_workers(w);
    }
    // Same deterministic span-id space as a solo cell: the race's entrant
    // spans hang off this root at ordinals `rank + 1`, so one-worker and
    // N-worker traces of the same cell carry identical span ids.
    let _trace_scope =
        specrepair_trace::cell_scope(config.cell_seed_for(&problem.id, roster.label()), 0, None);
    let cell_span = specrepair_trace::span("cell", specrepair_trace::Phase::Orchestration);
    if cell_span.is_active() {
        cell_span.attr_str("technique", roster.label());
        cell_span.attr_str("problem", &problem.id);
    }
    portfolio.race(&ctx, entrants_for(roster, problem, config))
}

/// One roster member's standing across the portfolio study.
#[derive(Debug, Clone, Serialize)]
pub struct MemberStanding {
    /// Member label.
    pub label: String,
    /// Static rank in the roster (lower wins arbitration).
    pub rank: usize,
    /// Solo REP count of this member over the problem set.
    pub rep: usize,
    /// Races this member won.
    pub wins: usize,
}

/// The portfolio study report: racing vs. sequential vs. solo baselines.
#[derive(Debug, Clone, Serialize)]
pub struct PortfolioStudy {
    /// Roster label (`Portfolio_…`).
    pub roster: String,
    /// Worker-pool size of the racing pass.
    pub workers: usize,
    /// Problems evaluated.
    pub num_problems: usize,
    /// REP of the racing portfolio.
    pub portfolio_rep: usize,
    /// REP of the one-worker sequential fallback chain (the generalized
    /// `UnionHybrid`). Equals `portfolio_rep` when determinism holds.
    pub sequential_rep: usize,
    /// Problems where at least one member's solo cell reached REP — the
    /// Table II union count for this roster.
    pub union_rep: usize,
    /// Best solo member REP count.
    pub best_single_rep: usize,
    /// Label of the best solo member.
    pub best_single: String,
    /// Wall-clock of the racing pass, summed over problems (measured).
    pub racing_wall_ms: u64,
    /// Wall-clock of the sequential pass, summed over problems (measured).
    pub sequential_wall_ms: u64,
    /// `sequential_wall_ms / racing_wall_ms` (measured speedup).
    pub speedup: f64,
    /// Whether the racing and sequential passes produced byte-identical
    /// `SpecRecord`s — the determinism acceptance check.
    pub records_identical: bool,
    /// Candidate-budget units spent across all entrants of all races.
    pub budget_spent: usize,
    /// Candidate-budget units saved by cancellation across all races.
    pub budget_saved: usize,
    /// Candidate-dedup counters aggregated over the racing pass: entrants
    /// of one race share the per-problem registry, so every cross-entrant
    /// duplicate candidate lands here as a hit (or a coalesced in-flight
    /// wait).
    pub dedup: DedupStats,
    /// Per-member standings, in rank order.
    pub members: Vec<MemberStanding>,
    /// The racing portfolio's records, in problem order.
    pub records: Vec<SpecRecord>,
}

/// Runs the portfolio study over one roster: solo baselines for every
/// member (sharing one memoizing oracle per problem, as the main study
/// does), a timed one-worker sequential pass, and a timed racing pass at
/// `workers`.
pub fn run_portfolio_study(
    problems: &[RepairProblem],
    config: &StudyConfig,
    roster: RosterId,
    workers: usize,
) -> PortfolioStudy {
    let member_ids = roster.members();
    let mut members: Vec<MemberStanding> = member_ids
        .iter()
        .enumerate()
        .map(|(rank, m)| MemberStanding {
            label: m.label().to_string(),
            rank,
            rep: 0,
            wins: 0,
        })
        .collect();
    let mut union_rep = 0;
    let mut racing_records = Vec::with_capacity(problems.len());
    let mut sequential_records = Vec::with_capacity(problems.len());
    let (mut racing_wall_ms, mut sequential_wall_ms) = (0u64, 0u64);
    let (mut budget_spent, mut budget_saved) = (0usize, 0usize);
    let mut dedup = DedupStats::default();

    for problem in problems {
        // Solo baselines: all members against one shared per-problem oracle.
        let oracle = OracleHandle::fresh();
        let mut any = false;
        for (rank, &member) in member_ids.iter().enumerate() {
            let r = evaluate_cell(&oracle, member, problem, config);
            if r.rep == 1 {
                members[rank].rep += 1;
                any = true;
            }
        }
        if any {
            union_rep += 1;
        }

        // Sequential baseline: one worker = rank-ordered fallback chain.
        let t = Instant::now();
        let seq = race(&OracleHandle::fresh(), roster, problem, config, Some(1));
        sequential_wall_ms += t.elapsed().as_millis() as u64;
        sequential_records.push(record_from(problem, roster.label(), &seq.outcome));

        // The racing portfolio.
        let race_oracle = OracleHandle::fresh();
        let t = Instant::now();
        let raced = race(&race_oracle, roster, problem, config, Some(workers));
        racing_wall_ms += t.elapsed().as_millis() as u64;
        dedup.absorb(&race_oracle.dedup_stats());
        if let Some(w) = raced.winner {
            members[w].wins += 1;
        }
        budget_spent += raced.budget_spent;
        budget_saved += raced.budget_saved;
        racing_records.push(record_from(problem, roster.label(), &raced.outcome));
    }

    let records_identical = serde_json::to_string(&racing_records).unwrap()
        == serde_json::to_string(&sequential_records).unwrap();
    let portfolio_rep = racing_records.iter().map(|r| r.rep as usize).sum();
    let sequential_rep = sequential_records.iter().map(|r| r.rep as usize).sum();
    // Best solo member; rank order breaks ties (fold keeps the first max).
    let best = members.iter().fold(
        &members[0],
        |best, m| if m.rep > best.rep { m } else { best },
    );
    PortfolioStudy {
        roster: roster.label().to_string(),
        workers,
        num_problems: problems.len(),
        portfolio_rep,
        sequential_rep,
        union_rep,
        best_single_rep: best.rep,
        best_single: best.label.clone(),
        racing_wall_ms,
        sequential_wall_ms,
        speedup: sequential_wall_ms as f64 / racing_wall_ms.max(1) as f64,
        records_identical,
        budget_spent,
        budget_saved,
        dedup,
        members,
        records: racing_records,
    }
}

/// Renders the portfolio study as text.
pub fn render(s: &PortfolioStudy) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Portfolio study — {} ({} members, {} workers, {} problems)\n",
        s.roster,
        s.members.len(),
        s.workers,
        s.num_problems
    ));
    out.push_str(&format!(
        "REP   racing {}   sequential-chain {}   member-union {}   best-single {} ({})\n",
        s.portfolio_rep, s.sequential_rep, s.union_rep, s.best_single, s.best_single_rep
    ));
    out.push_str(&format!(
        "wall  racing {} ms   sequential {} ms   speedup {:.2}x\n",
        s.racing_wall_ms, s.sequential_wall_ms, s.speedup
    ));
    out.push_str(&format!(
        "determinism: 1-vs-{}-worker records identical = {}\n",
        s.workers, s.records_identical
    ));
    out.push_str(&format!(
        "budget: {} candidate units spent, {} saved by cancellation\n",
        s.budget_spent, s.budget_saved
    ));
    out.push_str(&format!(
        "dedup: {} hits / {} misses ({:.1}% dedup rate), {} coalesced in-flight\n",
        s.dedup.hits,
        s.dedup.misses,
        s.dedup.dedup_rate() * 100.0,
        s.dedup.coalesced
    ));
    out.push_str("member            rank  solo-REP  wins\n");
    for m in &s.members {
        out.push_str(&format!(
            "{:<32} {:>3} {:>8} {:>5}\n",
            m.label, m.rank, m.rep, m.wins
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Vec<RepairProblem>, StudyConfig) {
        let config = StudyConfig {
            scale: 0.003,
            seed: 7,
            ..StudyConfig::default()
        };
        (specrepair_benchmarks::full_study(config.scale), config)
    }

    #[test]
    fn racing_matches_the_sequential_chain() {
        let (problems, config) = tiny();
        let s = run_portfolio_study(&problems, &config, RosterId::ArepairSrLoc, 4);
        assert!(s.records_identical, "1-vs-4-worker records must match");
        assert_eq!(s.portfolio_rep, s.sequential_rep);
        assert_eq!(s.records.len(), problems.len());
        assert_eq!(s.members.len(), 2);
        for r in &s.records {
            assert_eq!(r.technique, "Portfolio_ARepair+Single-Round_Loc");
        }
    }

    #[test]
    fn repair_with_oracle_dispatches_portfolio_ids() {
        let (problems, config) = tiny();
        let out = crate::runner::repair_with_oracle(
            &OracleHandle::fresh(),
            TechniqueId::Portfolio(RosterId::Traditional),
            &problems[0],
            &config,
        );
        assert_eq!(out.technique, "Portfolio_Traditional");
    }

    #[test]
    fn report_serializes_with_members_and_records() {
        let (problems, config) = tiny();
        let s = run_portfolio_study(&problems[..1], &config, RosterId::ArepairMrAuto, 2);
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("\"speedup\""), "{json}");
        assert!(json.contains("\"records_identical\""), "{json}");
        let text = render(&s);
        assert!(text.contains("Portfolio_ARepair+Multi-Round_Auto"));
    }
}
