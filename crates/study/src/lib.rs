//! # specrepair-study
//!
//! Experiment harnesses that regenerate every table and figure of the
//! paper's evaluation from the reproduced pipeline:
//!
//! | Module | Paper artifact |
//! |--------|----------------|
//! | [`table1`] | Table I — REP per technique × domain |
//! | [`fig2`]   | Figure 2 — mean TM/SM per technique |
//! | [`fig3`]   | Figure 3 — Pearson correlation heatmap |
//! | [`table2`] | Table II + Figure 4 — hybrid overlaps / Venn regions |
//! | [`ablation`] | §VI — localization-guided hybrid ablation |
//!
//! The [`runner`] evaluates all twelve techniques over the generated
//! corpora once; every artifact derives from that single result set. The
//! `study` binary drives it from the command line:
//!
//! ```text
//! study all --scale 0.125 --seed 42 --out results/
//! ```
//!
//! # Example
//!
//! ```
//! use specrepair_study::{StudyConfig, runner::run_full_study, table1};
//!
//! let config = StudyConfig { scale: 0.003, seed: 1, ..StudyConfig::default() };
//! let (_problems, results) = run_full_study(&config);
//! let table = table1::build(&results);
//! assert_eq!(table.techniques.len(), 12);
//! ```

#![warn(missing_docs)]

pub mod ablation;
pub mod config;
pub mod fig2;
pub mod fig3;
pub mod journal;
pub mod portfolio;
pub mod runner;
pub mod table1;
pub mod table2;

pub use config::{RosterId, StudyConfig, TechniqueId};
pub use journal::{JournalContents, JournalHeader, StudyJournal};
pub use portfolio::{run_portfolio_study, PortfolioStudy};
pub use runner::{
    run_full_study, run_study, run_study_cached, run_study_journaled, RunStats, SpecRecord,
    StudyResults,
};
