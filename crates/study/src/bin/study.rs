//! The `study` binary: regenerates the paper's tables and figures.
//!
//! ```text
//! study <all|table1|fig2|fig3|table2|ablation|portfolio> [--scale X]
//!       [--seed N] [--out DIR] [--journal FILE] [--resume]
//!       [--fault-rate R] [--fault-seed N] [--no-dedup] [--no-incremental]
//!       [--roster NAME] [--workers N] [--trace DIR]
//!       [--cache-dir DIR] [--no-cache] [--shards a,b,c]
//! ```
//!
//! `--scale 1.0` evaluates the full 1,974-spec corpus (the paper's size);
//! smaller scales shrink each domain proportionally. With `--out`, the
//! artifacts are also written as JSON next to their text renderings.
//!
//! `--journal` appends every completed (problem, technique) cell to a
//! JSONL file as the run proceeds (default: `<out>/journal.jsonl` when
//! `--out` is given); `--resume` reloads that journal, skips the finished
//! cells and regenerates byte-identical artifacts. `--fault-rate` turns on
//! deterministic LM-transport fault injection (the chaos recipe in
//! EXPERIMENTS.md).
//!
//! `--cache-dir` opens a persistent oracle verdict cache under DIR: a
//! second run over the same corpus warm-boots its verdicts from disk
//! instead of the solver, and a run killed at any point loses at most the
//! one record it was writing. The tier is behaviorally inert: artifacts
//! are byte-identical with `--cache-dir`, without it, and with
//! `--no-cache` (which disables oracle memoization entirely — the
//! slowest, most-direct baseline).
//!
//! `--shards a,b,c` points the run at a consistent-hash oracle cluster of
//! `specrepaird` shard daemons: verdict misses are probed on (and fresh
//! verdicts written through to) the shard owning each spec fingerprint,
//! layered *behind* the local `--cache-dir` log when both are given.
//! Like the local tier, the cluster is behaviorally inert — remote
//! verdicts equal what the local solver would compute, so artifacts stay
//! byte-identical.
//!
//! `--trace DIR` turns on the span collector for the whole run and writes
//! the trace artifacts to DIR afterwards: `trace.json` (Chrome trace-event
//! JSON — load in `chrome://tracing` or Perfetto), `stacks.folded`
//! (flamegraph.pl / inferno input) and `phase_breakdown.txt`/`.json` (per
//! technique × problem % of attributed time in SAT vs oracle-cache vs LM
//! vs orchestration). Span ids are deterministic per cell, so traces from
//! resumed or differently-parallel runs are directly comparable.
//!
//! `portfolio` (or the `--portfolio` flag) runs the racing-portfolio study
//! instead: `--roster` picks the composition (`all`, `traditional`, `llm`,
//! or a `Portfolio_…` label), `--workers` sizes the racing pool. The JSON
//! report records the measured wall-clock speedup over the sequential
//! fallback chain and the 1-vs-N determinism check (EXPERIMENTS.md).

use specrepair_study::{
    ablation, fig2, fig3, journal, portfolio, runner, table1, table2, RosterId, StudyConfig,
};
use std::collections::HashMap;
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = "all".to_string();
    let mut config = StudyConfig::default();
    let mut out_dir: Option<PathBuf> = None;
    let mut journal_path: Option<PathBuf> = None;
    let mut resume = false;
    let mut roster = RosterId::All;
    let mut workers: Option<usize> = None;
    let mut trace_dir: Option<PathBuf> = None;
    let mut cache_dir: Option<PathBuf> = None;
    let mut use_cache = true;
    let mut shards: Vec<String> = Vec::new();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                config.scale = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number"));
            }
            "--seed" => {
                i += 1;
                config.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--fault-rate" => {
                i += 1;
                config.fault_rate = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|r| (0.0..=1.0).contains(r))
                    .unwrap_or_else(|| die("--fault-rate needs a number in [0, 1]"));
            }
            "--fault-seed" => {
                i += 1;
                config.fault_seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--fault-seed needs an integer"));
            }
            "--journal" => {
                i += 1;
                journal_path = Some(PathBuf::from(
                    args.get(i).unwrap_or_else(|| die("--journal needs a path")),
                ));
            }
            "--resume" => resume = true,
            "--no-dedup" => config.dedup = false,
            "--no-incremental" => config.incremental = false,
            "--no-cache" => use_cache = false,
            "--cache-dir" => {
                i += 1;
                cache_dir = Some(PathBuf::from(
                    args.get(i)
                        .unwrap_or_else(|| die("--cache-dir needs a directory")),
                ));
            }
            "--shards" => {
                i += 1;
                shards = args
                    .get(i)
                    .unwrap_or_else(|| die("--shards needs a comma-separated address list"))
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
                if shards.is_empty() {
                    die("--shards needs at least one address");
                }
            }
            "--portfolio" => command = "portfolio".to_string(),
            "--roster" => {
                i += 1;
                let name = args.get(i).unwrap_or_else(|| die("--roster needs a name"));
                roster =
                    parse_roster(name).unwrap_or_else(|| die(&format!("unknown roster `{name}`")));
            }
            "--workers" => {
                i += 1;
                workers = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .filter(|&w| w >= 1)
                        .unwrap_or_else(|| die("--workers needs a positive integer")),
                );
            }
            "--out" => {
                i += 1;
                out_dir = Some(PathBuf::from(
                    args.get(i).unwrap_or_else(|| die("--out needs a path")),
                ));
            }
            "--trace" => {
                i += 1;
                trace_dir = Some(PathBuf::from(
                    args.get(i)
                        .unwrap_or_else(|| die("--trace needs a directory")),
                ));
            }
            c @ ("all" | "table1" | "fig2" | "fig3" | "table2" | "ablation" | "portfolio") => {
                command = c.to_string();
            }
            other => die(&format!("unknown argument `{other}`")),
        }
        i += 1;
    }

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| die(&format!("cannot create {dir:?}: {e}")));
    }
    if let Some(dir) = &trace_dir {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| die(&format!("cannot create {dir:?}: {e}")));
        specrepair_trace::set_enabled(true);
        eprintln!("tracing ON: spans will be written to {dir:?}");
    }
    if journal_path.is_none() {
        journal_path = out_dir.as_ref().map(|d| d.join("journal.jsonl"));
    }
    if resume && journal_path.is_none() {
        die("--resume needs --journal FILE (or --out DIR)");
    }

    eprintln!(
        "generating corpora at scale {} (seed {}) ...",
        config.scale, config.seed
    );
    if config.chaos_enabled() {
        eprintln!(
            "fault injection ON: rate {} (fault seed {})",
            config.fault_rate, config.fault_seed
        );
    }
    let t0 = Instant::now();
    let problems = specrepair_benchmarks::full_study(config.scale);
    eprintln!("{} specifications in {:?}", problems.len(), t0.elapsed());

    if command == "portfolio" {
        let workers = workers.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        eprintln!(
            "racing {} at {} workers over {} problems ...",
            roster.label(),
            workers,
            problems.len()
        );
        let t0 = Instant::now();
        let s = portfolio::run_portfolio_study(&problems, &config, roster, workers);
        eprintln!("portfolio study done in {:?}", t0.elapsed());
        let text = portfolio::render(&s);
        println!("{text}");
        if let Some(dir) = &out_dir {
            write_artifact(&dir.join("portfolio.txt"), &text);
            write_artifact(
                &dir.join("portfolio.json"),
                &serde_json::to_string_pretty(&s).unwrap(),
            );
            eprintln!("artifacts written to {dir:?}");
        }
        if let Some(dir) = &trace_dir {
            write_trace(dir);
        }
        if !s.records_identical {
            eprintln!("error: racing and sequential records diverged (determinism violation)");
            std::process::exit(1);
        }
        return;
    }

    // Resume: reload the journal, verify it belongs to this run, and skip
    // every cell it already holds.
    let mut done: HashMap<(String, String), runner::SpecRecord> = HashMap::new();
    if resume {
        let path = journal_path.as_ref().unwrap();
        let loaded = journal::load(path)
            .unwrap_or_else(|e| die(&format!("cannot load journal {path:?}: {e}")));
        match &loaded.header {
            Some(h) if h.config.same_run(&config) => {}
            Some(_) => die("journal was written by a different configuration; not resuming"),
            None => die("journal has no readable header; not resuming"),
        }
        if loaded.malformed > 0 {
            eprintln!(
                "journal: skipped {} malformed line(s) (torn tail from a killed run)",
                loaded.malformed
            );
        }
        done = loaded.done_cells();
        eprintln!(
            "resuming: {} of {} cells already journaled",
            done.len(),
            problems.len() * 12
        );
    }
    let journal = journal_path.as_ref().map(|path| {
        if resume {
            journal::StudyJournal::append_to(path)
        } else {
            journal::StudyJournal::create(path, &config, problems.len())
        }
        .unwrap_or_else(|e| die(&format!("cannot open journal {path:?}: {e}")))
    });

    if !config.dedup {
        eprintln!("candidate dedup OFF (--no-dedup)");
    }
    if !config.incremental {
        eprintln!("incremental oracle OFF (--no-incremental)");
    }
    if !use_cache {
        eprintln!("oracle cache OFF (--no-cache)");
    }
    // The persistent verdict tier. An unopenable directory degrades to a
    // warning — the study itself must never be blocked by a bad disk.
    let persist_cache =
        cache_dir
            .as_ref()
            .and_then(|dir| match specrepair_cache::PersistentCache::open(dir) {
                Ok(cache) => {
                    eprintln!(
                        "persistent cache: {} verdict(s) preloaded from {dir:?}",
                        cache.preloaded()
                    );
                    Some(std::sync::Arc::new(cache))
                }
                Err(e) => {
                    eprintln!(
                        "warning: cannot open cache dir {dir:?}: {e}; running without persistence"
                    );
                    None
                }
            });
    // The remote cluster tier: probe/write-through against the shard
    // owning each fingerprint. Layered behind the local log when both are
    // configured, so the probe order stays memo → local log → cluster.
    let remote_store = if shards.is_empty() {
        None
    } else {
        eprintln!(
            "remote verdict cluster: {} shard(s) on the consistent-hash ring",
            shards.len()
        );
        Some(std::sync::Arc::new(
            specrepair_cluster::RemoteVerdictStore::new(
                specrepair_cluster::ShardRing::from_addrs(&shards),
                None,
            ),
        ))
    };
    type Store = std::sync::Arc<dyn specrepair_core::VerdictStore>;
    let persist_store: Option<Store> = match (persist_cache.clone(), remote_store) {
        (Some(local), Some(remote)) => Some(std::sync::Arc::new(
            mualloy_analyzer::TieredStore::new(vec![local as Store, remote as Store]),
        )),
        (Some(local), None) => Some(local as Store),
        (None, Some(remote)) => Some(remote as Store),
        (None, None) => None,
    };
    let t0 = Instant::now();
    let (results, run_stats) = runner::run_study_persistent(
        &problems,
        &config,
        use_cache,
        journal.as_ref(),
        &done,
        persist_store.as_ref(),
    );
    eprintln!(
        "evaluated {} (problem, technique) pairs in {:?}",
        results.records.len(),
        t0.elapsed()
    );
    let crashed = results
        .records
        .iter()
        .filter(|r| r.reason == specrepair_core::OutcomeReason::Crashed)
        .count();
    eprintln!("crashed cells: {crashed}");
    let cache_stats = run_stats.cache;
    eprintln!(
        "oracle cache: {} hits / {} misses ({:.1}% hit rate), {} solver invocations",
        cache_stats.hits,
        cache_stats.misses,
        cache_stats.hit_rate() * 100.0,
        cache_stats.solver_invocations
    );
    let dedup_stats = run_stats.dedup;
    eprintln!(
        "candidate dedup: {} hits / {} misses ({:.1}% dedup rate), {} coalesced in-flight",
        dedup_stats.hits,
        dedup_stats.misses,
        dedup_stats.dedup_rate() * 100.0,
        dedup_stats.coalesced
    );
    let mut incr_stats = run_stats.incremental;
    eprintln!(
        "incremental oracle: {} sessions, {} checks ({} fallbacks), {:.1}% clause reuse, \
         {} learned clauses retained",
        incr_stats.sessions,
        incr_stats.checks,
        incr_stats.fallbacks,
        incr_stats.clause_reuse_rate() * 100.0,
        incr_stats.learned_clauses_retained
    );
    // Seal the persistent log (compact if the disk view drifted, then
    // fsync) before reporting: everything the run computed is durable.
    if let Some(cache) = &persist_cache {
        cache.seal();
        let s = cache.stats();
        eprintln!(
            "persistent cache: {} preloaded, {} hits / {} lookups, {} appended \
             ({} quarantined, {} compactions{})",
            s.preloaded,
            s.hits,
            s.lookups,
            s.appends,
            s.quarantined,
            s.compactions,
            if s.degraded { ", DEGRADED" } else { "" }
        );
    }

    let emit = |name: &str, text: &str, json: String| {
        println!("{text}");
        if let Some(dir) = &out_dir {
            write_artifact(&dir.join(format!("{name}.txt")), text);
            write_artifact(&dir.join(format!("{name}.json")), &json);
        }
    };

    if command == "all" || command == "table1" {
        let t = table1::build(&results);
        emit(
            "table1",
            &table1::render(&t),
            serde_json::to_string_pretty(&t).unwrap(),
        );
    }
    if command == "all" || command == "fig2" {
        let f = fig2::build(&results);
        emit(
            "fig2",
            &fig2::render(&f),
            serde_json::to_string_pretty(&f).unwrap(),
        );
    }
    if command == "all" || command == "fig3" {
        let f = fig3::build(&results);
        emit(
            "fig3",
            &fig3::render(&f),
            serde_json::to_string_pretty(&f).unwrap(),
        );
    }
    if command == "all" || command == "table2" {
        let t = table2::build(&results);
        let mut text = table2::render(&t);
        text.push('\n');
        text.push_str(&table2::render_venn(&t));
        emit(
            "table2_fig4",
            &text,
            serde_json::to_string_pretty(&t).unwrap(),
        );
    }
    if command == "all" || command == "ablation" {
        // The ablation runs extra techniques; bound it to a manageable
        // subsample (every 8th problem) at large scales.
        let sample: Vec<_> = problems
            .iter()
            .step_by(if problems.len() > 200 { 8 } else { 1 })
            .cloned()
            .collect();
        let a = ablation::run(&sample, &config);
        // Fold the ablation oracles' incremental counters into the run
        // totals so `incremental_stats.json` reconciles exactly with the
        // `sat.incremental_check` spans in the trace.
        incr_stats.absorb(&a.incremental);
        emit(
            "ablation",
            &ablation::render(&a),
            serde_json::to_string_pretty(&a).unwrap(),
        );
    }
    if let Some(dir) = &out_dir {
        write_artifact(
            &dir.join("records.json"),
            &serde_json::to_string(&results).unwrap(),
        );
        write_artifact(
            &dir.join("cache_stats.json"),
            &serde_json::to_string_pretty(&cache_stats).unwrap(),
        );
        write_artifact(
            &dir.join("dedup_stats.json"),
            &serde_json::to_string_pretty(&dedup_stats).unwrap(),
        );
        write_artifact(
            &dir.join("incremental_stats.json"),
            &serde_json::to_string_pretty(&incr_stats).unwrap(),
        );
        eprintln!("artifacts written to {dir:?}");
    }
    if let Some(dir) = &trace_dir {
        write_trace(dir);
    }
}

/// Drains the span collector and writes the four trace artifacts: the
/// Chrome trace, the folded flamegraph stacks and the per-phase breakdown
/// table in both renderings.
fn write_trace(dir: &std::path::Path) {
    use specrepair_trace as trace;
    trace::set_enabled(false);
    let spans = trace::take_spans();
    eprintln!("trace: {} spans collected", spans.len());
    write_artifact(&dir.join("trace.json"), &trace::chrome_trace_json(&spans));
    write_artifact(&dir.join("stacks.folded"), &trace::folded_stacks(&spans));
    let breakdown = trace::phase_breakdown(&spans);
    let txt = trace::render_breakdown_txt(&breakdown);
    eprint!("{txt}");
    write_artifact(&dir.join("phase_breakdown.txt"), &txt);
    write_artifact(
        &dir.join("phase_breakdown.json"),
        &trace::render_breakdown_json(&breakdown),
    );
    eprintln!("trace artifacts written to {dir:?}");
}

/// Writes one artifact, aborting loudly on failure: a full-corpus run must
/// never silently leave an empty or partial `results/` behind.
fn write_artifact(path: &std::path::Path, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("error: cannot write artifact {path:?}: {e}");
        std::process::exit(1);
    }
}

/// Resolves a roster name: the full `Portfolio_…` label or its
/// case-insensitive suffix (`all`, `traditional`, `llm`, …).
fn parse_roster(name: &str) -> Option<RosterId> {
    RosterId::ALL.into_iter().find(|r| {
        let label = r.label();
        let short = label.strip_prefix("Portfolio_").unwrap_or(label);
        label.eq_ignore_ascii_case(name) || short.eq_ignore_ascii_case(name)
    })
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: study <all|table1|fig2|fig3|table2|ablation|portfolio> [--scale X] [--seed N] \
         [--out DIR] [--roster NAME] [--workers N] [--cache-dir DIR] [--no-cache] \
         [--shards a,b,c]"
    );
    std::process::exit(2);
}
