//! The `study` binary: regenerates the paper's tables and figures.
//!
//! ```text
//! study <all|table1|fig2|fig3|table2|ablation> [--scale X] [--seed N] [--out DIR]
//! ```
//!
//! `--scale 1.0` evaluates the full 1,974-spec corpus (the paper's size);
//! smaller scales shrink each domain proportionally. With `--out`, the
//! artifacts are also written as JSON next to their text renderings.

use specrepair_study::{ablation, fig2, fig3, runner, table1, table2, StudyConfig};
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = "all".to_string();
    let mut config = StudyConfig::default();
    let mut out_dir: Option<PathBuf> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                config.scale = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number"));
            }
            "--seed" => {
                i += 1;
                config.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--out" => {
                i += 1;
                out_dir = Some(PathBuf::from(
                    args.get(i).unwrap_or_else(|| die("--out needs a path")),
                ));
            }
            c @ ("all" | "table1" | "fig2" | "fig3" | "table2" | "ablation") => {
                command = c.to_string();
            }
            other => die(&format!("unknown argument `{other}`")),
        }
        i += 1;
    }

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| die(&format!("cannot create {dir:?}: {e}")));
    }

    eprintln!(
        "generating corpora at scale {} (seed {}) ...",
        config.scale, config.seed
    );
    let t0 = Instant::now();
    let problems = specrepair_benchmarks::full_study(config.scale);
    eprintln!("{} specifications in {:?}", problems.len(), t0.elapsed());

    let t0 = Instant::now();
    let (results, cache_stats) = runner::run_study_cached(&problems, &config, true);
    eprintln!(
        "evaluated {} (problem, technique) pairs in {:?}",
        results.records.len(),
        t0.elapsed()
    );
    eprintln!(
        "oracle cache: {} hits / {} misses ({:.1}% hit rate), {} solver invocations",
        cache_stats.hits,
        cache_stats.misses,
        cache_stats.hit_rate() * 100.0,
        cache_stats.solver_invocations
    );

    let emit = |name: &str, text: &str, json: String| {
        println!("{text}");
        if let Some(dir) = &out_dir {
            write_artifact(&dir.join(format!("{name}.txt")), text);
            write_artifact(&dir.join(format!("{name}.json")), &json);
        }
    };

    if command == "all" || command == "table1" {
        let t = table1::build(&results);
        emit(
            "table1",
            &table1::render(&t),
            serde_json::to_string_pretty(&t).unwrap(),
        );
    }
    if command == "all" || command == "fig2" {
        let f = fig2::build(&results);
        emit(
            "fig2",
            &fig2::render(&f),
            serde_json::to_string_pretty(&f).unwrap(),
        );
    }
    if command == "all" || command == "fig3" {
        let f = fig3::build(&results);
        emit(
            "fig3",
            &fig3::render(&f),
            serde_json::to_string_pretty(&f).unwrap(),
        );
    }
    if command == "all" || command == "table2" {
        let t = table2::build(&results);
        let mut text = table2::render(&t);
        text.push('\n');
        text.push_str(&table2::render_venn(&t));
        emit(
            "table2_fig4",
            &text,
            serde_json::to_string_pretty(&t).unwrap(),
        );
    }
    if command == "all" || command == "ablation" {
        // The ablation runs extra techniques; bound it to a manageable
        // subsample (every 8th problem) at large scales.
        let sample: Vec<_> = problems
            .iter()
            .step_by(if problems.len() > 200 { 8 } else { 1 })
            .cloned()
            .collect();
        let a = ablation::run(&sample, &config);
        emit(
            "ablation",
            &ablation::render(&a),
            serde_json::to_string_pretty(&a).unwrap(),
        );
    }
    if let Some(dir) = &out_dir {
        write_artifact(
            &dir.join("records.json"),
            &serde_json::to_string(&results).unwrap(),
        );
        write_artifact(
            &dir.join("cache_stats.json"),
            &serde_json::to_string_pretty(&cache_stats).unwrap(),
        );
        eprintln!("artifacts written to {dir:?}");
    }
}

/// Writes one artifact, aborting loudly on failure: a full-corpus run must
/// never silently leave an empty or partial `results/` behind.
fn write_artifact(path: &std::path::Path, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("error: cannot write artifact {path:?}: {e}");
        std::process::exit(1);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: study <all|table1|fig2|fig3|table2|ablation> [--scale X] [--seed N] [--out DIR]"
    );
    std::process::exit(2);
}
