//! The crash-safe study journal: a JSONL record of completed cells.
//!
//! A full-corpus study run is hours of work; losing it to a crash at cell
//! 23,600 of 23,688 is not acceptable. The runner therefore appends every
//! completed `(problem, technique)` record to a journal file — one JSON
//! object per line, written through to the OS before the runner moves on —
//! and `study --resume` reloads the journal, skips the finished cells and
//! recomputes only the missing ones. Because every cell is deterministic
//! and the final record vector is assembled in canonical order, a resumed
//! run's artifacts are byte-identical to an uninterrupted run's.
//!
//! # Format
//!
//! ```text
//! {"config":{...},"num_problems":38}          <- header (line 1)
//! {"problem":"...","technique":"ARepair",...} <- one SpecRecord per line
//! ...
//! ```
//!
//! The loader is tolerant of a torn tail: a process killed mid-write
//! leaves at most one truncated final line, which is skipped (and counted)
//! rather than poisoning the file.

use serde::{Deserialize, Serialize};
use specrepair_core::logio::{read_lines, LineLog};
use std::collections::HashMap;
use std::io;
use std::path::Path;

use crate::config::StudyConfig;
use crate::runner::SpecRecord;

/// The journal's first line: enough to refuse a resume under a different
/// configuration (which would silently mix incompatible cells).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JournalHeader {
    /// The configuration of the run that created the journal.
    pub config: StudyConfig,
    /// Number of problems in that run's corpus.
    pub num_problems: usize,
}

/// An append-only journal handle over the shared [`LineLog`] discipline
/// (`specrepair_core::logio`): single-write lines, newline sealing on
/// reopen, so even a `kill -9` leaves at most one torn line. Thread-safe:
/// the runner appends from rayon workers.
#[derive(Debug)]
pub struct StudyJournal {
    log: LineLog,
}

impl StudyJournal {
    /// Creates (truncating) a journal for a fresh run and writes the
    /// header line.
    pub fn create(
        path: &Path,
        config: &StudyConfig,
        num_problems: usize,
    ) -> io::Result<StudyJournal> {
        let log = LineLog::create(path)?;
        let header = JournalHeader {
            config: *config,
            num_problems,
        };
        log.append_line(&serde_json::to_string(&header).map_err(io::Error::other)?)?;
        Ok(StudyJournal { log })
    }

    /// Reopens an existing journal for appending (the resume path; load
    /// its contents with [`load`] first). [`LineLog::append_to`] seals a
    /// torn tail with a newline, so the first resumed record is never
    /// welded onto the fragment a killed run left behind.
    pub fn append_to(path: &Path) -> io::Result<StudyJournal> {
        Ok(StudyJournal {
            log: LineLog::append_to(path)?,
        })
    }

    /// Appends one completed cell.
    pub fn append(&self, record: &SpecRecord) -> io::Result<()> {
        self.log
            .append_line(&serde_json::to_string(record).map_err(io::Error::other)?)
    }
}

/// What a journal file held when loaded.
#[derive(Debug)]
pub struct JournalContents {
    /// The header, when the first line parsed as one.
    pub header: Option<JournalHeader>,
    /// All well-formed records, in file order.
    pub records: Vec<SpecRecord>,
    /// Lines that did not parse (a torn tail from a killed run, typically).
    pub malformed: usize,
}

impl JournalContents {
    /// The completed cells as a lookup map (first occurrence wins, so a
    /// record is never replaced by a later duplicate).
    pub fn done_cells(&self) -> HashMap<(String, String), SpecRecord> {
        let mut done = HashMap::new();
        for r in &self.records {
            done.entry(r.cell_key()).or_insert_with(|| r.clone());
        }
        done
    }
}

/// Loads a journal, tolerating a torn final line (and, defensively, any
/// other malformed line — each is counted, none aborts the load).
pub fn load(path: &Path) -> io::Result<JournalContents> {
    let loaded = read_lines(path)?;
    let mut header = None;
    let mut records = Vec::new();
    let mut malformed = 0usize;
    for (i, line) in loaded.lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        if i == 0 {
            match serde_json::from_str::<JournalHeader>(line) {
                Ok(h) => header = Some(h),
                Err(_) => malformed += 1,
            }
            continue;
        }
        match serde_json::from_str::<SpecRecord>(line) {
            Ok(r) => records.push(r),
            Err(_) => malformed += 1,
        }
    }
    Ok(JournalContents {
        header,
        records,
        malformed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use specrepair_core::OutcomeReason;
    use std::fs::OpenOptions;
    use std::io::Write;

    fn record(problem: &str, technique: &str) -> SpecRecord {
        SpecRecord {
            problem: problem.to_string(),
            benchmark: "A4F".to_string(),
            domain: "graphs".to_string(),
            technique: technique.to_string(),
            rep: 1,
            tm: Some(0.75),
            sm: None,
            tree_edits: Some(2),
            tree_sim: Some(0.9),
            internal_success: true,
            explored: 9,
            reason: OutcomeReason::Repaired,
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("specrepair-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.jsonl", std::process::id()))
    }

    #[test]
    fn round_trips_header_and_records() {
        let path = tmp("roundtrip");
        let config = StudyConfig::smoke();
        let journal = StudyJournal::create(&path, &config, 3).unwrap();
        journal.append(&record("p/1", "ARepair")).unwrap();
        journal.append(&record("p/1", "ATR")).unwrap();
        journal.append(&record("p/2", "ARepair")).unwrap();
        let loaded = load(&path).unwrap();
        let header = loaded.header.as_ref().expect("header line");
        assert_eq!(header.num_problems, 3);
        assert_eq!(header.config.seed, config.seed);
        assert_eq!(loaded.records.len(), 3);
        assert_eq!(loaded.malformed, 0);
        let done = loaded.done_cells();
        assert!(done.contains_key(&("p/1".to_string(), "ATR".to_string())));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_skipped_not_fatal() {
        let path = tmp("torn");
        let journal = StudyJournal::create(&path, &StudyConfig::smoke(), 1).unwrap();
        journal.append(&record("p/1", "ARepair")).unwrap();
        drop(journal);
        // Simulate a kill mid-write: append half a record, no newline.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"problem\":\"p/1\",\"technique\":\"IC")
            .unwrap();
        drop(f);
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.records.len(), 1);
        assert_eq!(loaded.malformed, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_appends_after_existing_records() {
        let path = tmp("resume");
        let journal = StudyJournal::create(&path, &StudyConfig::smoke(), 2).unwrap();
        journal.append(&record("p/1", "ARepair")).unwrap();
        drop(journal);
        let journal = StudyJournal::append_to(&path).unwrap();
        journal.append(&record("p/2", "ARepair")).unwrap();
        let loaded = load(&path).unwrap();
        assert!(loaded.header.is_some(), "header survives reopen");
        assert_eq!(loaded.records.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_after_torn_tail_does_not_weld_records() {
        let path = tmp("torn-resume");
        let journal = StudyJournal::create(&path, &StudyConfig::smoke(), 2).unwrap();
        journal.append(&record("p/1", "ARepair")).unwrap();
        drop(journal);
        // The kill left a torn line with no trailing newline.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"problem\":\"p/1\",\"technique\":\"IC")
            .unwrap();
        drop(f);
        // Resuming must seal the tail so the next record starts on its own
        // line rather than being welded onto the torn fragment.
        let journal = StudyJournal::append_to(&path).unwrap();
        journal.append(&record("p/2", "ARepair")).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.records.len(), 2, "the resumed record survived");
        assert_eq!(loaded.malformed, 1, "the torn fragment stays malformed");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn duplicate_cells_keep_the_first_record() {
        let path = tmp("dupes");
        let journal = StudyJournal::create(&path, &StudyConfig::smoke(), 1).unwrap();
        let mut first = record("p/1", "ARepair");
        first.explored = 1;
        let mut second = record("p/1", "ARepair");
        second.explored = 2;
        journal.append(&first).unwrap();
        journal.append(&second).unwrap();
        let done = load(&path).unwrap().done_cells();
        assert_eq!(
            done[&("p/1".to_string(), "ARepair".to_string())].explored,
            1
        );
        std::fs::remove_file(&path).ok();
    }
}
