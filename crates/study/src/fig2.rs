//! Experiment E2 — Figure 2: mean Token Match and Syntax Match per
//! technique (similarity of repair candidates to the ground truth).

use serde::{Deserialize, Serialize};
use specrepair_metrics::mean;
use std::fmt::Write as _;

use crate::config::TechniqueId;
use crate::runner::StudyResults;

/// One bar pair of Figure 2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2Bar {
    /// Technique label.
    pub technique: String,
    /// Mean Token Match over candidates that exist.
    pub tm: f64,
    /// Mean Syntax Match over candidates that exist.
    pub sm: f64,
    /// How many candidates contributed to the means.
    pub candidates: usize,
}

/// The full figure data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2 {
    /// One bar pair per technique, in column order.
    pub bars: Vec<Fig2Bar>,
}

/// Builds Figure 2 from study results. Following the paper, similarity is
/// measured for every candidate a technique produced, successful or not;
/// problems where a technique produced nothing are excluded from its mean.
pub fn build(results: &StudyResults) -> Fig2 {
    let bars = TechniqueId::all()
        .iter()
        .map(|id| {
            let records = results.of_technique(id.label());
            let tms: Vec<f64> = records.iter().filter_map(|r| r.tm).collect();
            let sms: Vec<f64> = records.iter().filter_map(|r| r.sm).collect();
            Fig2Bar {
                technique: id.label().to_string(),
                tm: mean(&tms).unwrap_or(0.0),
                sm: mean(&sms).unwrap_or(0.0),
                candidates: tms.len(),
            }
        })
        .collect();
    Fig2 { bars }
}

/// Renders the figure as a text bar chart.
pub fn render(fig: &Fig2) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "FIGURE 2: mean similarity of repair candidates to ground truth"
    );
    let _ = writeln!(out, "{:<24}{:>8}{:>8}  (bar = SM)", "Technique", "TM", "SM");
    for b in &fig.bars {
        let width = (b.sm * 40.0).round() as usize;
        let _ = writeln!(
            out,
            "{:<24}{:>8.3}{:>8.3}  {}",
            b.technique,
            b.tm,
            b.sm,
            "#".repeat(width)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StudyConfig;
    use crate::runner::run_full_study;

    #[test]
    fn traditional_tools_exceed_llms_in_similarity() {
        let (_, results) = run_full_study(&StudyConfig {
            scale: 0.004,
            seed: 9,
            ..StudyConfig::default()
        });
        let fig = build(&results);
        assert_eq!(fig.bars.len(), 12);
        for b in &fig.bars {
            assert!((0.0..=1.0).contains(&b.tm), "{}: tm {}", b.technique, b.tm);
            assert!((0.0..=1.0).contains(&b.sm), "{}: sm {}", b.technique, b.sm);
        }
        // The paper's Finding 2: traditional candidates are textually closer
        // to the ground truth than Multi-Round LLM ones (the LLM re-renders
        // and restyles whole specifications).
        let atr = fig.bars.iter().find(|b| b.technique == "ATR").unwrap();
        let mr = fig
            .bars
            .iter()
            .find(|b| b.technique == "Multi-Round_None")
            .unwrap();
        assert!(
            atr.tm > mr.tm,
            "ATR TM {} should exceed Multi-Round TM {}",
            atr.tm,
            mr.tm
        );
        let text = render(&fig);
        assert!(text.contains("FIGURE 2"));
    }
}
