//! Statistical utilities: Pearson correlation (Figure 3) and aggregation.

/// Arithmetic mean; `None` for empty input.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Pearson correlation coefficient of two aligned samples.
///
/// Returns `None` when fewer than two points are given or either sample has
/// zero variance (the coefficient is undefined there).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len(), "samples must be aligned");
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let mx = mean(xs)?;
    let my = mean(ys)?;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return None;
    }
    Some((cov / (vx.sqrt() * vy.sqrt())).clamp(-1.0, 1.0))
}

/// The t-statistic of a Pearson coefficient with `n` samples, used to judge
/// significance (|t| > ~3.3 corresponds to p < 0.001 for large n).
pub fn pearson_t_statistic(r: f64, n: usize) -> Option<f64> {
    if n < 3 || r.abs() >= 1.0 {
        return None;
    }
    Some(r * ((n - 2) as f64).sqrt() / (1.0 - r * r).sqrt())
}

/// Computes the full symmetric correlation matrix of the given named
/// sample vectors. Undefined cells (constant vectors) are reported as
/// `None`; the diagonal is `Some(1.0)`.
pub fn correlation_matrix(series: &[(String, Vec<f64>)]) -> Vec<Vec<Option<f64>>> {
    let k = series.len();
    let mut m = vec![vec![None; k]; k];
    for i in 0..k {
        m[i][i] = Some(1.0);
        for j in (i + 1)..k {
            let r = pearson(&series[i].1, &series[j].1);
            m[i][j] = r;
            m[j][i] = r;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
    }

    #[test]
    fn perfect_correlations() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncorrelated_is_near_zero() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [1.0, -1.0, 1.0, -1.0];
        assert!(pearson(&xs, &ys).unwrap().abs() < 0.5);
    }

    #[test]
    fn degenerate_cases_are_none() {
        assert_eq!(pearson(&[1.0], &[1.0]), None);
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), None);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn misaligned_samples_panic() {
        let _ = pearson(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn t_statistic_grows_with_n_and_r() {
        let t1 = pearson_t_statistic(0.9, 10).unwrap();
        let t2 = pearson_t_statistic(0.9, 100).unwrap();
        assert!(t2 > t1);
        assert!(pearson_t_statistic(1.0, 10).is_none());
        assert!(pearson_t_statistic(0.5, 2).is_none());
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let series = vec![
            ("a".to_string(), vec![1.0, 2.0, 3.0, 4.0]),
            ("b".to_string(), vec![1.0, 2.0, 2.5, 4.5]),
            ("c".to_string(), vec![4.0, 3.0, 2.0, 1.0]),
        ];
        let m = correlation_matrix(&series);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], Some(1.0));
            for (j, cell) in row.iter().enumerate() {
                assert_eq!(*cell, m[j][i]);
            }
        }
        assert!(m[0][2].unwrap() < 0.0);
    }
}
