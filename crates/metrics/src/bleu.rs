//! Token Match (TM): sentence-level BLEU over whitespace tokens.
//!
//! Implements the BLEU definition of Papineni et al. (ACL'02) as the study
//! uses it (§III-D): modified n-gram precision up to 4-grams, geometric
//! mean, brevity penalty, tokens split on whitespace. Zero n-gram matches
//! are epsilon-smoothed so that partially-matching files score strictly
//! between 0 and 1.

use std::collections::HashMap;

const MAX_N: usize = 4;
const SMOOTH_EPS: f64 = 0.1;

/// Whitespace tokenization (the study's TM tokenizer).
pub fn tokenize(text: &str) -> Vec<&str> {
    text.split_whitespace().collect()
}

/// Sentence-level BLEU of `candidate` against the single `reference`.
///
/// Returns a value in `[0, 1]`: 0 when no tokens match (or either side is
/// empty while the other is not), 1 when the token sequences are identical.
pub fn sentence_bleu(reference: &str, candidate: &str) -> f64 {
    let r = tokenize(reference);
    let c = tokenize(candidate);
    if r.is_empty() && c.is_empty() {
        return 1.0;
    }
    if r.is_empty() || c.is_empty() {
        return 0.0;
    }
    // Quick exit for the common exact-match case.
    if r == c {
        return 1.0;
    }
    // Unigram sanity: the paper defines 0 as "no tokens match".
    let mut log_sum = 0.0;
    let mut any_match = false;
    for n in 1..=MAX_N {
        let (matched, total) = modified_precision(&r, &c, n);
        if n == 1 && matched > 0 {
            any_match = true;
        }
        if total == 0 {
            // Candidate shorter than n tokens: skip this order entirely.
            continue;
        }
        let p = if matched == 0 {
            SMOOTH_EPS / total as f64
        } else {
            matched as f64 / total as f64
        };
        log_sum += p.ln() / MAX_N as f64;
    }
    if !any_match {
        return 0.0;
    }
    let bp = brevity_penalty(r.len(), c.len());
    (bp.ln() + log_sum).exp().clamp(0.0, 1.0)
}

fn modified_precision(reference: &[&str], candidate: &[&str], n: usize) -> (usize, usize) {
    if candidate.len() < n {
        return (0, 0);
    }
    let mut ref_counts: HashMap<&[&str], usize> = HashMap::new();
    if reference.len() >= n {
        for w in reference.windows(n) {
            *ref_counts.entry(w).or_insert(0) += 1;
        }
    }
    let mut matched = 0usize;
    let mut cand_counts: HashMap<&[&str], usize> = HashMap::new();
    for w in candidate.windows(n) {
        *cand_counts.entry(w).or_insert(0) += 1;
    }
    for (gram, count) in cand_counts {
        let allowed = ref_counts.get(gram).copied().unwrap_or(0);
        matched += count.min(allowed);
    }
    (matched, candidate.len() - n + 1)
}

fn brevity_penalty(ref_len: usize, cand_len: usize) -> f64 {
    if cand_len >= ref_len {
        1.0
    } else {
        (1.0 - ref_len as f64 / cand_len as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_texts_score_one() {
        let t = "sig A { f: set A } fact { some A }";
        assert_eq!(sentence_bleu(t, t), 1.0);
        // Whitespace-insensitive.
        assert_eq!(
            sentence_bleu(t, "sig A {\n  f: set A\n}\nfact { some A }"),
            1.0
        );
    }

    #[test]
    fn disjoint_texts_score_zero() {
        assert_eq!(sentence_bleu("alpha beta gamma", "delta epsilon zeta"), 0.0);
    }

    #[test]
    fn empty_edge_cases() {
        assert_eq!(sentence_bleu("", ""), 1.0);
        assert_eq!(sentence_bleu("a b", ""), 0.0);
        assert_eq!(sentence_bleu("", "a b"), 0.0);
    }

    #[test]
    fn partial_overlap_is_between_zero_and_one() {
        let reference = "sig A { f: set A } fact Inv { all x: A | x in x.f }";
        let candidate = "sig A { f: set A } fact Inv { all x: A | x not in x.f }";
        let score = sentence_bleu(reference, candidate);
        assert!(score > 0.5 && score < 1.0, "got {score}");
    }

    #[test]
    fn bigger_edits_score_lower() {
        let reference = "sig A { f: set A } fact Inv { all x: A | x in x.f }";
        let small_edit = "sig A { f: set A } fact Inv { all x: A | x not in x.f }";
        let big_edit = "sig A { f: set A } fact Inv { no x: A | some x.f && x in A }";
        let s1 = sentence_bleu(reference, small_edit);
        let s2 = sentence_bleu(reference, big_edit);
        assert!(s1 > s2, "small edit {s1} should beat big edit {s2}");
    }

    #[test]
    fn brevity_penalty_punishes_truncation() {
        let reference = "a b c d e f g h i j";
        let truncated = "a b c d e";
        let full = "a b c d e f g h i j";
        assert!(sentence_bleu(reference, truncated) < sentence_bleu(reference, full));
    }

    #[test]
    fn symmetric_in_the_exact_case_only() {
        let a = "x y z w q";
        let b = "x y z w r";
        let ab = sentence_bleu(a, b);
        let ba = sentence_bleu(b, a);
        assert!(ab > 0.0 && ba > 0.0);
        // BLEU is not required to be symmetric, but both directions must be
        // well-formed probabilities.
        assert!((0.0..=1.0).contains(&ab) && (0.0..=1.0).contains(&ba));
    }

    #[test]
    fn repeated_ngrams_are_clipped() {
        // Candidate repeating a reference word must not inflate precision.
        let score = sentence_bleu("the cat sat", "the the the the");
        assert!(score < 0.5);
    }
}
