//! Syntax Match (SM): normalized subtree-kernel similarity of parse trees.
//!
//! Following the study (§III-D), each specification is parsed into a tree
//! and compared by a subtree kernel (Gärtner et al.; Torres et al.): the
//! kernel value is the number of matching subtree occurrences, normalized
//! cosine-style so the score lies in `[0, 1]`, reaching 1 exactly for
//! structurally identical trees and 0 when no subtree of one appears in the
//! other. Whitespace and formatting differences vanish at parse time.

use mualloy_syntax::ast::*;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// A generic labeled ordered tree (the parse-tree abstraction the kernel
/// operates on).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabeledTree {
    /// Node label (operator, keyword or identifier).
    pub label: String,
    /// Ordered children.
    pub children: Vec<LabeledTree>,
}

impl LabeledTree {
    /// Creates a leaf node.
    pub fn leaf(label: impl Into<String>) -> LabeledTree {
        LabeledTree {
            label: label.into(),
            children: Vec::new(),
        }
    }

    /// Creates an internal node.
    pub fn node(label: impl Into<String>, children: Vec<LabeledTree>) -> LabeledTree {
        LabeledTree {
            label: label.into(),
            children,
        }
    }

    /// Number of nodes in the tree.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(LabeledTree::size).sum::<usize>()
    }
}

/// Converts a specification into its parse tree.
pub fn spec_tree(spec: &Spec) -> LabeledTree {
    let mut children = Vec::new();
    if let Some(m) = &spec.module {
        children.push(LabeledTree::node(
            "module",
            vec![LabeledTree::leaf(m.clone())],
        ));
    }
    for sig in &spec.sigs {
        let mut kids = vec![LabeledTree::leaf(&sig.name)];
        if sig.is_abstract {
            kids.push(LabeledTree::leaf("abstract"));
        }
        if let Some(m) = sig.mult {
            kids.push(LabeledTree::leaf(format!("{m:?}")));
        }
        if let Some(p) = &sig.parent {
            kids.push(LabeledTree::node(
                "extends",
                vec![LabeledTree::leaf(p.clone())],
            ));
        }
        for f in &sig.fields {
            let mut fk = vec![
                LabeledTree::leaf(&f.name),
                LabeledTree::leaf(f.mult.to_string()),
            ];
            for c in &f.cols {
                fk.push(LabeledTree::leaf(c.clone()));
            }
            kids.push(LabeledTree::node("field", fk));
        }
        children.push(LabeledTree::node("sig", kids));
    }
    for fact in &spec.facts {
        let mut kids = vec![LabeledTree::leaf(&fact.name)];
        kids.extend(fact.body.iter().map(formula_tree));
        children.push(LabeledTree::node("fact", kids));
    }
    for pred in &spec.preds {
        let mut kids = vec![LabeledTree::leaf(&pred.name)];
        for p in &pred.params {
            kids.push(LabeledTree::node(
                "param",
                vec![LabeledTree::leaf(&p.name), expr_tree(&p.bound)],
            ));
        }
        kids.extend(pred.body.iter().map(formula_tree));
        children.push(LabeledTree::node("pred", kids));
    }
    for fun in &spec.funs {
        let mut kids = vec![LabeledTree::leaf(&fun.name)];
        for p in &fun.params {
            kids.push(LabeledTree::node(
                "param",
                vec![LabeledTree::leaf(&p.name), expr_tree(&p.bound)],
            ));
        }
        kids.push(expr_tree(&fun.result));
        kids.push(expr_tree(&fun.body));
        children.push(LabeledTree::node("fun", kids));
    }
    for a in &spec.asserts {
        let mut kids = vec![LabeledTree::leaf(&a.name)];
        kids.extend(a.body.iter().map(formula_tree));
        children.push(LabeledTree::node("assert", kids));
    }
    for c in &spec.commands {
        let verb = if c.is_check() { "check" } else { "run" };
        let mut kids = vec![
            LabeledTree::leaf(c.target()),
            LabeledTree::leaf(c.scope.to_string()),
        ];
        if let Some(e) = c.expect {
            kids.push(LabeledTree::leaf(format!("expect{}", u8::from(e))));
        }
        children.push(LabeledTree::node(verb, kids));
    }
    LabeledTree::node("spec", children)
}

/// Converts a formula into its parse tree.
pub fn formula_tree(f: &Formula) -> LabeledTree {
    match f {
        Formula::Compare(op, l, r, _) => {
            LabeledTree::node(op.symbol(), vec![expr_tree(l), expr_tree(r)])
        }
        Formula::IntCompare(op, l, r, _) => LabeledTree::node(
            format!("int{}", op.symbol()),
            vec![int_tree(l), int_tree(r)],
        ),
        Formula::Mult(op, e, _) => LabeledTree::node(op.keyword(), vec![expr_tree(e)]),
        Formula::Not(inner, _) => LabeledTree::node("not", vec![formula_tree(inner)]),
        Formula::Binary(op, l, r, _) => {
            LabeledTree::node(op.symbol(), vec![formula_tree(l), formula_tree(r)])
        }
        Formula::Quant(q, decls, body, _) => {
            let mut kids: Vec<LabeledTree> = decls
                .iter()
                .map(|d| {
                    LabeledTree::node(
                        "decl",
                        vec![LabeledTree::leaf(&d.name), expr_tree(&d.bound)],
                    )
                })
                .collect();
            kids.push(formula_tree(body));
            LabeledTree::node(format!("quant-{}", q.keyword()), kids)
        }
        Formula::Let(n, e, body, _) => LabeledTree::node(
            "let",
            vec![
                LabeledTree::leaf(n.clone()),
                expr_tree(e),
                formula_tree(body),
            ],
        ),
        Formula::PredCall(n, args, _) => {
            let mut kids = vec![LabeledTree::leaf(n.clone())];
            kids.extend(args.iter().map(expr_tree));
            LabeledTree::node("call", kids)
        }
    }
}

/// Converts an expression into its parse tree.
pub fn expr_tree(e: &Expr) -> LabeledTree {
    match e {
        Expr::Ident(n, _) => LabeledTree::leaf(n.clone()),
        Expr::Univ(_) => LabeledTree::leaf("univ"),
        Expr::Iden(_) => LabeledTree::leaf("iden"),
        Expr::None(_) => LabeledTree::leaf("none"),
        Expr::Unary(op, inner, _) => LabeledTree::node(op.symbol(), vec![expr_tree(inner)]),
        Expr::Binary(op, l, r, _) => {
            LabeledTree::node(op.symbol(), vec![expr_tree(l), expr_tree(r)])
        }
        Expr::Comprehension(decls, body, _) => {
            let mut kids: Vec<LabeledTree> = decls
                .iter()
                .map(|d| {
                    LabeledTree::node(
                        "decl",
                        vec![LabeledTree::leaf(&d.name), expr_tree(&d.bound)],
                    )
                })
                .collect();
            kids.push(formula_tree(body));
            LabeledTree::node("comprehension", kids)
        }
        Expr::IfThenElse(c, t, f, _) => {
            LabeledTree::node("ite", vec![formula_tree(c), expr_tree(t), expr_tree(f)])
        }
        Expr::FunCall(n, args, _) => {
            let mut kids = vec![LabeledTree::leaf(n.clone())];
            kids.extend(args.iter().map(expr_tree));
            LabeledTree::node("apply", kids)
        }
    }
}

fn int_tree(i: &IntExpr) -> LabeledTree {
    match i {
        IntExpr::Card(e, _) => LabeledTree::node("#", vec![expr_tree(e)]),
        IntExpr::Lit(n, _) => LabeledTree::leaf(n.to_string()),
    }
}

/// Collects the multiset of subtree signatures of a tree.
fn subtree_counts(tree: &LabeledTree, out: &mut HashMap<u64, usize>) -> u64 {
    let mut h = DefaultHasher::new();
    tree.label.hash(&mut h);
    for c in &tree.children {
        let ch = subtree_counts(c, out);
        ch.hash(&mut h);
    }
    let sig = h.finish();
    *out.entry(sig).or_insert(0) += 1;
    sig
}

/// The normalized subtree-kernel similarity of two trees, in `[0, 1]`.
pub fn subtree_kernel(a: &LabeledTree, b: &LabeledTree) -> f64 {
    let mut ca = HashMap::new();
    let mut cb = HashMap::new();
    subtree_counts(a, &mut ca);
    subtree_counts(b, &mut cb);
    let k_ab: usize = ca
        .iter()
        .map(|(sig, &n)| n.min(cb.get(sig).copied().unwrap_or(0)))
        .sum();
    let k_aa: usize = ca.values().sum();
    let k_bb: usize = cb.values().sum();
    if k_aa == 0 || k_bb == 0 {
        return f64::from(u8::from(k_aa == k_bb));
    }
    k_ab as f64 / (k_aa as f64 * k_bb as f64).sqrt()
}

/// SM of two specification sources; 0 when either does not parse (unless
/// both are identical text).
pub fn syntax_match(reference: &str, candidate: &str) -> f64 {
    match (
        mualloy_syntax::parse_spec(reference),
        mualloy_syntax::parse_spec(candidate),
    ) {
        (Ok(r), Ok(c)) => subtree_kernel(&spec_tree(&r), &spec_tree(&c)),
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mualloy_syntax::parse_spec;

    const SPEC: &str = "sig A { f: set A } fact Inv { all x: A | x in x.f } \
        assert Q { some A } check Q for 3";

    #[test]
    fn identical_specs_score_one() {
        assert!((syntax_match(SPEC, SPEC) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn whitespace_is_ignored() {
        let reformatted = "sig A {\n  f: set A\n}\nfact Inv {\n  all x: A | x in x.f\n}\n\
            assert Q { some A }\ncheck Q for 3";
        assert!((syntax_match(SPEC, reformatted) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn small_edit_scores_high_but_below_one() {
        let edited = SPEC.replace("x in x.f", "x not in x.f");
        let s = syntax_match(SPEC, &edited);
        assert!(s > 0.6 && s < 1.0, "got {s}");
    }

    #[test]
    fn unrelated_specs_score_low() {
        let other = "sig Z { g: lone Z } pred q { no Z } run q for 2";
        let s = syntax_match(SPEC, other);
        assert!(s < 0.4, "got {s}");
    }

    #[test]
    fn unparsable_candidate_scores_zero() {
        assert_eq!(syntax_match(SPEC, "sig {"), 0.0);
        assert_eq!(syntax_match("sig {", SPEC), 0.0);
    }

    #[test]
    fn kernel_orders_by_edit_size() {
        let small = SPEC.replace("x in x.f", "x not in x.f");
        let big = SPEC.replace("all x: A | x in x.f", "no A.f && some A && lone A");
        assert!(syntax_match(SPEC, &small) > syntax_match(SPEC, &big));
    }

    #[test]
    fn kernel_is_symmetric() {
        let other = SPEC.replace("all", "some");
        let ab = syntax_match(SPEC, &other);
        let ba = syntax_match(&other, SPEC);
        assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn tree_sizes_are_positive() {
        let t = spec_tree(&parse_spec(SPEC).unwrap());
        assert!(t.size() > 10);
    }

    #[test]
    fn renamed_identifier_lowers_score() {
        let renamed = SPEC
            .replace("sig A", "sig B")
            .replace(": A", ": B")
            .replace("some A", "some B")
            .replace("set A", "set B")
            .replace("x: A", "x: B");
        let s = syntax_match(SPEC, &renamed);
        assert!(s < 1.0);
    }
}
