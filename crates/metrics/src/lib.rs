//! # specrepair-metrics
//!
//! The study's three evaluation metrics (§III-D) plus the correlation and
//! overlap statistics behind Figures 3–4:
//!
//! - **REP** — [`rep`]: command-by-command equisatisfiability of a repair
//!   candidate against the ground truth (via [`mualloy_analyzer::equisat`]);
//! - **TM** — [`bleu::sentence_bleu`]: whitespace-token sentence BLEU;
//! - **SM** — [`kernel::syntax_match`]: normalized subtree-kernel
//!   similarity of parse trees;
//! - [`stats::pearson`] and [`stats::correlation_matrix`] for Figure 3;
//! - [`treediff::tree_diff`]: the persistent-id tree diff — a minimal
//!   edit script (subtree inserts/deletes, local updates) quantifying how
//!   far a repair strayed from the faulty specification.
//!
//! # Example
//!
//! ```
//! use specrepair_metrics::{candidate_metrics, CandidateMetrics};
//! use mualloy_syntax::parse_spec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let truth = "sig A {} pred p { some A } run p for 3 expect 1";
//! let candidate = "sig A {} pred p { some A } run p for 3 expect 1";
//! let m = candidate_metrics(&parse_spec(truth)?, truth, Some(candidate));
//! assert_eq!(m.rep, 1);
//! assert_eq!(m.tm, Some(1.0));
//! assert_eq!(m.sm, Some(1.0));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod bleu;
pub mod kernel;
pub mod stats;
pub mod treediff;

use mualloy_syntax::Spec;
use serde::{Deserialize, Serialize};

pub use bleu::sentence_bleu;
pub use kernel::{subtree_kernel, syntax_match, LabeledTree};
pub use stats::{correlation_matrix, mean, pearson, pearson_t_statistic};
pub use treediff::{tree_diff, tree_similarity, EditKind, TreeDiff, TreeDiffSummary, TreeEdit};

/// REP for a candidate source against the parsed ground truth: 1 when every
/// ground-truth command is equisatisfiable under the candidate, else 0.
/// Unparsable candidates (and absent ones) score 0.
pub fn rep(truth: &Spec, candidate_source: Option<&str>) -> u8 {
    match candidate_source {
        None => 0,
        Some(src) => mualloy_analyzer::rep_for_source(truth, src).unwrap_or(0),
    }
}

/// The three per-candidate metrics of the study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CandidateMetrics {
    /// REP: 1 = equisatisfiable with the ground truth on all its commands.
    pub rep: u8,
    /// Token Match (BLEU), `None` when no candidate text exists.
    pub tm: Option<f64>,
    /// Syntax Match (subtree kernel), `None` when no candidate text exists.
    pub sm: Option<f64>,
}

/// Computes REP/TM/SM for one candidate against the ground truth.
///
/// `truth_source` must be the text TM is measured against (the study uses
/// the benchmark's ground-truth file).
pub fn candidate_metrics(
    truth: &Spec,
    truth_source: &str,
    candidate_source: Option<&str>,
) -> CandidateMetrics {
    CandidateMetrics {
        rep: rep(truth, candidate_source),
        tm: candidate_source.map(|c| sentence_bleu(truth_source, c)),
        sm: candidate_source.map(|c| syntax_match(truth_source, c)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mualloy_syntax::parse_spec;
    use proptest::prelude::*;

    const TRUTH: &str = "sig N { next: lone N } \
        fact { no n: N | n in n.^next } \
        assert NoSelf { all n: N | n not in n.next } \
        check NoSelf for 3 expect 0";

    #[test]
    fn perfect_candidate_scores_perfectly() {
        let truth = parse_spec(TRUTH).unwrap();
        let m = candidate_metrics(&truth, TRUTH, Some(TRUTH));
        assert_eq!(m.rep, 1);
        assert_eq!(m.tm, Some(1.0));
        assert_eq!(m.sm, Some(1.0));
    }

    #[test]
    fn missing_candidate_scores_zero_rep_and_no_similarity() {
        let truth = parse_spec(TRUTH).unwrap();
        let m = candidate_metrics(&truth, TRUTH, None);
        assert_eq!(m.rep, 0);
        assert_eq!(m.tm, None);
        assert_eq!(m.sm, None);
    }

    #[test]
    fn semantically_equivalent_but_textually_different() {
        let truth = parse_spec(TRUTH).unwrap();
        let candidate = TRUTH.replace("no n: N | n in n.^next", "all n: N | n not in n.^next");
        let m = candidate_metrics(&truth, TRUTH, Some(&candidate));
        assert_eq!(m.rep, 1, "equivalent rewriting is still a repair");
        assert!(m.tm.unwrap() < 1.0);
        assert!(m.sm.unwrap() < 1.0);
    }

    #[test]
    fn broken_candidate_scores_rep_zero_but_high_similarity() {
        let truth = parse_spec(TRUTH).unwrap();
        let candidate = TRUTH.replace("n in n.^next", "n not in n.^next");
        let m = candidate_metrics(&truth, TRUTH, Some(&candidate));
        assert_eq!(m.rep, 0);
        assert!(m.tm.unwrap() > 0.7);
        assert!(m.sm.unwrap() > 0.7);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// TM and SM are always within [0, 1] for arbitrary candidate text.
        #[test]
        fn similarity_bounds(noise in "[a-z{}() ]{0,60}") {
            let tm = sentence_bleu(TRUTH, &noise);
            prop_assert!((0.0..=1.0).contains(&tm));
            let sm = syntax_match(TRUTH, &noise);
            prop_assert!((0.0..=1.0).contains(&sm));
        }
    }
}
