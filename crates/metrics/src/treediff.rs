//! Tree-diff repair metrics over persistent node identity.
//!
//! Where the subtree kernel ([`crate::kernel`]) measures *how similar* two
//! specifications are, this module answers *what changed*: it matches the
//! nodes of an original specification against a repair candidate by their
//! persistent [`NodeId`]s and canonical subtree hashes, and derives a
//! minimal edit script — the subtree insertions, deletions and local
//! updates that turn one tree into the other.
//!
//! The matching is exact for candidates produced by
//! [`mualloy_syntax::walk::replace_node`]: untouched subtrees keep their
//! ids (and their span-insensitive hashes), replacement payloads carry
//! fresh ids, so a single mutation surfaces as exactly one maximal delete
//! plus one maximal insert under the edited ancestor path. For candidates
//! re-parsed from model output the parser assigns dense pre-order ids, so
//! the same machinery degrades gracefully to a positional matching: nodes
//! at the same pre-order slot compare by hash, and structural drift shows
//! up as insert/delete pairs from the first diverging slot.

use mualloy_syntax::ast::{Formula, IntExpr, Spec};
use mualloy_syntax::hash::{expr_hash, formula_hash};
use mualloy_syntax::visit::Visitor;
use mualloy_syntax::walk::{subtree_size_expr, subtree_size_formula, NodeId};
use mualloy_syntax::{print_expr, print_formula, Expr, Span};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The kind of one edit-script operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditKind {
    /// A maximal original subtree absent from the candidate.
    Delete,
    /// A maximal candidate subtree absent from the original.
    Insert,
    /// A node present in both whose change is purely local (same children,
    /// all child subtrees unchanged — e.g. an operator swap in place).
    Update,
}

impl std::fmt::Display for EditKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EditKind::Delete => "delete",
            EditKind::Insert => "insert",
            EditKind::Update => "update",
        })
    }
}

/// One operation of the minimal edit script.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeEdit {
    /// What happened.
    pub kind: EditKind,
    /// The subtree root's persistent id (original id for deletes/updates,
    /// candidate id for inserts).
    pub id: NodeId,
    /// Nodes in the affected subtree (1 for updates).
    pub nodes: u32,
    /// Source span of the subtree root (synthetic for generated payloads).
    pub span: Span,
    /// Abbreviated rendering of the subtree, for reports.
    pub label: String,
}

/// The id-and-hash-matched diff of two specification trees.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeDiff {
    /// The minimal edit script, in (deletes, inserts, updates) order.
    pub edits: Vec<TreeEdit>,
    /// Nodes whose id occurs in both trees with equal subtree hash.
    pub matched: u32,
    /// Addressable nodes in the original tree.
    pub original_nodes: u32,
    /// Addressable nodes in the candidate tree.
    pub candidate_nodes: u32,
}

impl TreeDiff {
    /// Number of edit-script operations (subtree-level, not per-node).
    pub fn edit_distance(&self) -> usize {
        self.edits.len()
    }

    /// Total nodes inserted, deleted or updated.
    pub fn nodes_touched(&self) -> u32 {
        self.edits.iter().map(|e| e.nodes).sum()
    }

    /// Dice-style similarity in `[0, 1]`: twice the matched nodes over the
    /// total node count; 1 exactly when every node of both trees matches.
    pub fn similarity(&self) -> f64 {
        let total = self.original_nodes + self.candidate_nodes;
        if total == 0 {
            return 1.0;
        }
        f64::from(2 * self.matched) / f64::from(total)
    }

    /// The compact summary carried by study records and reports.
    pub fn summary(&self) -> TreeDiffSummary {
        TreeDiffSummary {
            edit_distance: self.edits.len() as u32,
            inserted: self.count(EditKind::Insert),
            deleted: self.count(EditKind::Delete),
            updated: self.count(EditKind::Update),
            nodes_touched: self.nodes_touched(),
            similarity: self.similarity(),
        }
    }

    fn count(&self, kind: EditKind) -> u32 {
        self.edits.iter().filter(|e| e.kind == kind).count() as u32
    }

    /// Renders the minimal-edit repair report: one line per operation,
    /// `(no edits)` for identical trees.
    pub fn report(&self) -> String {
        if self.edits.is_empty() {
            return "(no edits)".to_string();
        }
        let mut out = String::new();
        for e in &self.edits {
            out.push_str(&format!(
                "{} {} [{} node{}] {}\n",
                e.kind,
                e.id,
                e.nodes,
                if e.nodes == 1 { "" } else { "s" },
                e.label,
            ));
        }
        out
    }
}

/// The serializable slice of a [`TreeDiff`] (study tables, JSON reports).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeDiffSummary {
    /// Edit-script operations.
    pub edit_distance: u32,
    /// Insert operations.
    pub inserted: u32,
    /// Delete operations.
    pub deleted: u32,
    /// Update operations.
    pub updated: u32,
    /// Total nodes inserted, deleted or updated.
    pub nodes_touched: u32,
    /// Dice similarity of matched nodes, in `[0, 1]`.
    pub similarity: f64,
}

/// Per-node record gathered by one tree walk.
struct NodeInfo {
    hash: u128,
    size: u32,
    span: Span,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    label: String,
}

/// Visitor that indexes every addressable node of a spec by persistent id.
struct NodeIndex {
    nodes: HashMap<NodeId, NodeInfo>,
    order: Vec<NodeId>,
    stack: Vec<NodeId>,
}

impl NodeIndex {
    fn of(spec: &Spec) -> NodeIndex {
        let mut ix = NodeIndex {
            nodes: HashMap::new(),
            order: Vec::new(),
            stack: Vec::new(),
        };
        ix.visit_spec(spec);
        ix
    }

    fn record(&mut self, id: NodeId, hash: u128, size: u32, span: Span, label: String) {
        let parent = self.stack.last().copied();
        if let Some(p) = parent {
            if let Some(info) = self.nodes.get_mut(&p) {
                info.children.push(id);
            }
        }
        self.nodes.insert(
            id,
            NodeInfo {
                hash,
                size,
                span,
                parent,
                children: Vec::new(),
                label,
            },
        );
        self.order.push(id);
    }
}

impl Visitor for NodeIndex {
    fn visit_formula(&mut self, f: &Formula) {
        let id = f.id();
        self.record(
            id,
            formula_hash(f),
            subtree_size_formula(f),
            f.span(),
            abbreviate(&print_formula(f)),
        );
        self.stack.push(id);
        mualloy_syntax::visit::walk_formula(self, f);
        self.stack.pop();
    }

    fn visit_expr(&mut self, e: &Expr) {
        let id = e.id();
        self.record(
            id,
            expr_hash(e),
            subtree_size_expr(e),
            e.span(),
            abbreviate(&print_expr(e)),
        );
        self.stack.push(id);
        mualloy_syntax::visit::walk_expr(self, e);
        self.stack.pop();
    }

    fn visit_int_expr(&mut self, i: &IntExpr) {
        // Not itself addressable; descend to the embedded expressions.
        mualloy_syntax::visit::walk_int_expr(self, i);
    }
}

/// Truncates a rendered subtree to a report-friendly width.
fn abbreviate(s: &str) -> String {
    const MAX: usize = 48;
    if s.len() <= MAX {
        return s.to_string();
    }
    let mut cut = MAX;
    while !s.is_char_boundary(cut) {
        cut -= 1;
    }
    format!("{}…", &s[..cut])
}

/// Computes the id-and-hash-matched diff of `candidate` against
/// `original`.
pub fn tree_diff(original: &Spec, candidate: &Spec) -> TreeDiff {
    let orig = NodeIndex::of(original);
    let cand = NodeIndex::of(candidate);
    let mut edits = Vec::new();
    let mut matched = 0u32;

    // Deletes: maximal original subtrees whose id the candidate lost (the
    // parent either does not exist or survived, so this root is the
    // highest deleted node on its path).
    for &id in &orig.order {
        let info = &orig.nodes[&id];
        if cand.nodes.contains_key(&id) {
            continue;
        }
        let parent_survives = match info.parent {
            None => true,
            Some(p) => cand.nodes.contains_key(&p),
        };
        if parent_survives {
            edits.push(TreeEdit {
                kind: EditKind::Delete,
                id,
                nodes: info.size,
                span: info.span,
                label: info.label.clone(),
            });
        }
    }

    // Inserts: maximal candidate subtrees the original never had.
    for &id in &cand.order {
        let info = &cand.nodes[&id];
        if orig.nodes.contains_key(&id) {
            continue;
        }
        let parent_preexists = match info.parent {
            None => true,
            Some(p) => orig.nodes.contains_key(&p),
        };
        if parent_preexists {
            edits.push(TreeEdit {
                kind: EditKind::Insert,
                id,
                nodes: info.size,
                span: info.span,
                label: info.label.clone(),
            });
        }
    }

    // Matched nodes and purely-local updates. A shared id whose hash
    // differs is an *update* only when the change stops at the node
    // itself: identical child lists whose subtrees all hash equal.
    // Otherwise it is merely an ancestor on the changed path and the real
    // edits are reported deeper.
    for &id in &orig.order {
        let Some(c) = cand.nodes.get(&id) else {
            continue;
        };
        let o = &orig.nodes[&id];
        if o.hash == c.hash {
            matched += 1;
            continue;
        }
        let local_only = o.children == c.children
            && o.children
                .iter()
                .all(|ch| match (orig.nodes.get(ch), cand.nodes.get(ch)) {
                    (Some(a), Some(b)) => a.hash == b.hash,
                    _ => false,
                });
        if local_only {
            edits.push(TreeEdit {
                kind: EditKind::Update,
                id,
                nodes: 1,
                span: c.span,
                label: c.label.clone(),
            });
        }
    }

    TreeDiff {
        edits,
        matched,
        original_nodes: orig.order.len() as u32,
        candidate_nodes: cand.order.len() as u32,
    }
}

/// Dice similarity of the id-and-hash matching, in `[0, 1]`.
pub fn tree_similarity(original: &Spec, candidate: &Spec) -> f64 {
    tree_diff(original, candidate).similarity()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mualloy_syntax::walk::{collect_sites, replace_node, NodeRepl};
    use mualloy_syntax::{parse_formula, parse_spec, print_spec};

    const SPEC: &str = "sig N { next: lone N } \
        fact Acyclic { all n: N | n not in n.^next } \
        pred hasNode { some N } \
        assert NoSelf { all n: N | n not in n.next } \
        run hasNode for 3 expect 1 \
        check NoSelf for 3 expect 0";

    #[test]
    fn identical_tree_has_no_edits_and_similarity_one() {
        let spec = parse_spec(SPEC).unwrap();
        let d = tree_diff(&spec, &spec);
        assert_eq!(d.edit_distance(), 0);
        assert_eq!(d.matched, d.original_nodes);
        assert!((d.similarity() - 1.0).abs() < 1e-12);
        assert_eq!(d.report(), "(no edits)");
    }

    #[test]
    fn reparse_of_canonical_print_is_edit_free() {
        // Printing and re-parsing re-assigns dense pre-order ids; on an
        // unmutated spec that reproduces the original assignment exactly.
        let spec = parse_spec(SPEC).unwrap();
        let reparsed = parse_spec(&print_spec(&spec)).unwrap();
        assert_eq!(tree_diff(&spec, &reparsed).edit_distance(), 0);
    }

    #[test]
    fn single_mutation_is_one_delete_one_insert() {
        let spec = parse_spec(SPEC).unwrap();
        // Replace the `hasNode` body (`some N`) with a fresh formula.
        let site = collect_sites(&spec)
            .into_iter()
            .find(|s| s.is_formula && s.depth == 0 && s.owner.0 == mualloy_syntax::OwnerKind::Pred)
            .unwrap();
        let repl = parse_formula("no N").unwrap();
        let mutant = replace_node(&spec, site.id, NodeRepl::Formula(repl)).unwrap();
        let d = tree_diff(&spec, &mutant);
        assert_eq!(d.count(EditKind::Delete), 1, "{}", d.report());
        assert_eq!(d.count(EditKind::Insert), 1, "{}", d.report());
        assert_eq!(d.count(EditKind::Update), 0, "{}", d.report());
        let sim = d.similarity();
        assert!(sim > 0.7 && sim < 1.0, "similarity {sim}");
        // Every untouched node still matches by id and hash.
        assert_eq!(d.matched, d.original_nodes - 2); // `some N` = 2 nodes
    }

    #[test]
    fn deeper_replacement_reports_the_subtree_not_the_path() {
        let spec = parse_spec(SPEC).unwrap();
        // Deepest expression site inside the Acyclic fact: its ancestors
        // are on the changed path but must not be reported as edits.
        let site = collect_sites(&spec)
            .into_iter()
            .filter(|s| !s.is_formula && s.owner.0 == mualloy_syntax::OwnerKind::Fact)
            .max_by_key(|s| s.depth)
            .unwrap();
        let repl = mualloy_syntax::parse_expr("univ").unwrap();
        let mutant = replace_node(&spec, site.id, NodeRepl::Expr(repl)).unwrap();
        let d = tree_diff(&spec, &mutant);
        assert_eq!(d.count(EditKind::Delete), 1, "{}", d.report());
        assert_eq!(d.count(EditKind::Insert), 1, "{}", d.report());
        for e in &d.edits {
            assert!(e.nodes <= 3, "edit touches whole path: {}", d.report());
        }
    }

    #[test]
    fn summary_round_trips_the_script() {
        let spec = parse_spec(SPEC).unwrap();
        let site = collect_sites(&spec)
            .into_iter()
            .find(|s| s.is_formula && s.depth == 0)
            .unwrap();
        let repl = parse_formula("some N && no none").unwrap();
        let mutant = replace_node(&spec, site.id, NodeRepl::Formula(repl)).unwrap();
        let d = tree_diff(&spec, &mutant);
        let s = d.summary();
        assert_eq!(s.edit_distance, d.edit_distance() as u32);
        assert_eq!(s.inserted + s.deleted + s.updated, s.edit_distance);
        assert_eq!(s.nodes_touched, d.nodes_touched());
        assert!((s.similarity - d.similarity()).abs() < 1e-12);
    }

    #[test]
    fn unrelated_specs_score_low_but_bounded() {
        let a = parse_spec(SPEC).unwrap();
        let b = parse_spec("sig Z { g: lone Z } pred q { no Z } run q for 2").unwrap();
        let d = tree_diff(&a, &b);
        let sim = d.similarity();
        assert!((0.0..1.0).contains(&sim), "similarity {sim}");
        assert!(d.edit_distance() > 0);
    }

    #[test]
    fn report_names_ids_and_labels() {
        let spec = parse_spec(SPEC).unwrap();
        let site = collect_sites(&spec)
            .into_iter()
            .find(|s| s.is_formula && s.depth == 0)
            .unwrap();
        let repl = parse_formula("no N").unwrap();
        let mutant = replace_node(&spec, site.id, NodeRepl::Formula(repl)).unwrap();
        let report = tree_diff(&spec, &mutant).report();
        assert!(report.contains("delete n"), "{report}");
        assert!(report.contains("insert n"), "{report}");
        assert!(report.contains("no N"), "{report}");
    }
}
