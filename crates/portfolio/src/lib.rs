//! # specrepair-portfolio
//!
//! A work-claiming **portfolio scheduler** that races a roster of repair
//! techniques against one faulty specification on a bounded worker pool.
//!
//! The paper's central finding is *synergy*: no single technique dominates,
//! and the union of traditional + LLM repair sets beats every individual
//! tool. The sequential `UnionHybrid` realizes that union by paying the sum
//! of both wall-clocks on every fallback; this crate realizes the *same
//! repair set* speculatively — all entrants launch at once, each under its
//! own child [`CancelToken`](specrepair_core::CancelToken), and the first
//! rank-winning success cancels the still-running losers.
//!
//! Arbitration is **deterministic regardless of thread interleaving**:
//! entrants carry a static rank (their roster position) and a worse-ranked
//! late success never displaces a better-ranked one — see the determinism
//! argument in [`scheduler`]. Running the same roster at one worker and at
//! N workers yields byte-identical merged outcomes; only the wall-clock
//! (and the observational per-entrant reports) differ.
//!
//! # Example
//!
//! ```
//! use specrepair_core::{RepairBudget, RepairContext, RepairOutcome};
//! use specrepair_portfolio::{Entrant, Portfolio};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ctx = RepairContext::from_source(
//!     "sig N {} fact { no N } pred p { some N } run p for 3 expect 1",
//!     RepairBudget::tiny(),
//! )?;
//! let roster = vec![
//!     Entrant::new("never", RepairBudget::tiny(), |_: &RepairContext| {
//!         RepairOutcome::failure("never", 1, 1)
//!     }),
//!     Entrant::new("fixer", RepairBudget::tiny(), |c: &RepairContext| {
//!         RepairOutcome::success_with("fixer", c.faulty.clone(), 1, 1)
//!     }),
//! ];
//! let result = Portfolio::new("demo").with_workers(2).race(&ctx, roster);
//! assert_eq!(result.winner, Some(1));
//! assert!(result.outcome.success);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod scheduler;

pub use scheduler::{Entrant, EntrantReport, Portfolio, PortfolioOutcome};
