//! The racing executor: entrants claim work in rank order on a bounded
//! worker pool; the first *rank-winning* success cancels every worse-ranked
//! entrant still running.
//!
//! # Determinism argument
//!
//! Arbitration is deterministic regardless of thread interleaving because
//! cancellation only ever flows *downward* in rank:
//!
//! 1. the arbiter's `best` rank only decreases, and a success at rank `r`
//!    cancels only entrants ranked `> r`;
//! 2. therefore an entrant ranked at or below the eventual winner `w` is
//!    never cancelled by the race — it runs to completion exactly as it
//!    would alone, and (techniques being deterministic given their context)
//!    produces the same outcome every run;
//! 3. hence `w` — the *minimum* rank whose entrant succeeds in isolation —
//!    is the winner under every interleaving, including the degenerate
//!    one-worker schedule, which is precisely the sequential fallback chain
//!    (`UnionHybrid` generalized to N entrants);
//! 4. the merged [`RepairOutcome`] is assembled **only** from entrants
//!    ranked `<= w` (all of which completed deterministically); entrants
//!    ranked above the winner — the ones racing may or may not have
//!    partially run — contribute to the observational
//!    [`PortfolioOutcome::entrants`] reports but never to the merged
//!    outcome.
//!
//! The shared oracle keeps this sound: a memo hit returns exactly what a
//! fresh solve would, so racing entrants warming each other's cache changes
//! wall-clock, never results.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use serde::Serialize;
use specrepair_core::{CancelToken, OutcomeReason, RepairBudget, RepairContext, RepairOutcome};

/// One finished entrant run: the outcome plus its started/finished stamps
/// in milliseconds since the race began (absent for skipped entrants).
type FinishedRun = (RepairOutcome, Option<u64>, Option<u64>);

/// One roster member: a rank-ordered, budgeted repair attempt. Rank is the
/// entrant's position in the roster vector passed to [`Portfolio::race`] —
/// lower rank wins ties, exactly like the sequential fallback order.
pub struct Entrant<'a> {
    label: String,
    budget: RepairBudget,
    run: Box<dyn FnOnce(&RepairContext) -> RepairOutcome + Send + 'a>,
}

impl<'a> Entrant<'a> {
    /// Builds an entrant from a label, its budget and the closure that runs
    /// the technique against a per-entrant context.
    pub fn new(
        label: impl Into<String>,
        budget: RepairBudget,
        run: impl FnOnce(&RepairContext) -> RepairOutcome + Send + 'a,
    ) -> Entrant<'a> {
        Entrant {
            label: label.into(),
            budget,
            run: Box::new(run),
        }
    }

    /// The entrant's display label.
    pub fn label(&self) -> &str {
        &self.label
    }
}

/// What one entrant did during the race — the observational record
/// (timestamps, cancellation) alongside the deterministic verdict fields.
#[derive(Debug, Clone, Serialize)]
pub struct EntrantReport {
    /// Entrant label.
    pub label: String,
    /// Static rank (roster position; lower wins arbitration).
    pub rank: usize,
    /// Whether this entrant's own oracle accepted a candidate.
    pub success: bool,
    /// Why the entrant's attempt ended.
    pub reason: OutcomeReason,
    /// Oracle validations / drafts this entrant spent.
    pub explored: usize,
    /// Refinement rounds this entrant used.
    pub rounds: usize,
    /// Candidate budget this entrant was allowed.
    pub budget_candidates: usize,
    /// Milliseconds after race start when the entrant began running
    /// (`None`: it was cancelled before a worker ever picked it up).
    pub started_ms: Option<u64>,
    /// Milliseconds after race start when the entrant finished.
    pub finished_ms: Option<u64>,
    /// Milliseconds after race start when the arbiter cancelled this
    /// entrant (`None`: it was never cancelled by the race).
    pub cancelled_at_ms: Option<u64>,
    /// Whether this entrant's cost is part of the merged outcome's
    /// deterministic accounting (rank at or below the winner).
    pub counted: bool,
}

/// The merged result of one portfolio race.
#[derive(Debug)]
pub struct PortfolioOutcome {
    /// The deterministic merged outcome (winner's candidate; cost summed
    /// over ranks at or below the winner — byte-identical at any worker
    /// count).
    pub outcome: RepairOutcome,
    /// Rank of the winning entrant, if any succeeded.
    pub winner: Option<usize>,
    /// Per-entrant observational reports, in rank order.
    pub entrants: Vec<EntrantReport>,
    /// Wall-clock duration of the whole race in milliseconds (measured —
    /// not deterministic).
    pub wall_ms: u64,
    /// Candidate-budget units actually spent across *all* entrants,
    /// including cancelled losers (measured).
    pub budget_spent: usize,
    /// Candidate-budget units the cancellation protocol saved: for every
    /// entrant the race cancelled (or never started), its unspent budget
    /// (measured).
    pub budget_saved: usize,
}

impl PortfolioOutcome {
    /// The report of the winning entrant, if any.
    pub fn winning_entrant(&self) -> Option<&EntrantReport> {
        self.winner.map(|w| &self.entrants[w])
    }
}

/// Arbitration state shared by the workers: the best (lowest) successful
/// rank so far. Cancellation of worse-ranked entrants happens under the
/// same lock, so no entrant can slip between "best improved" and "you
/// lost".
struct Arbiter {
    best: Mutex<Option<usize>>,
}

impl Arbiter {
    /// Whether `rank` has already lost (a strictly better rank succeeded).
    fn beaten(&self, rank: usize) -> bool {
        self.best.lock().unwrap().is_some_and(|b| b < rank)
    }

    /// Records a success at `rank`; when it improves the best, cancels all
    /// worse-ranked entrants and stamps their cancellation time.
    fn won(
        &self,
        rank: usize,
        tokens: &[CancelToken],
        cancelled_at: &[Mutex<Option<u64>>],
        now_ms: u64,
    ) {
        let mut best = self.best.lock().unwrap();
        if best.is_none_or(|b| rank < b) {
            *best = Some(rank);
            for (loser, token) in tokens.iter().enumerate().skip(rank + 1) {
                if !token.is_cancelled() {
                    token.cancel();
                    let mut at = cancelled_at[loser].lock().unwrap();
                    if at.is_none() {
                        *at = Some(now_ms);
                    }
                }
            }
        }
    }
}

/// The portfolio scheduler: races a rank-ordered roster of entrants on a
/// bounded worker pool under one parent [`CancelToken`].
#[derive(Debug, Clone)]
pub struct Portfolio {
    label: String,
    workers: usize,
}

impl Portfolio {
    /// A portfolio named `label`, sized to the machine (one worker per
    /// available core).
    pub fn new(label: impl Into<String>) -> Portfolio {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Portfolio {
            label: label.into(),
            workers,
        }
    }

    /// Overrides the worker-pool size (clamped to at least 1). One worker
    /// degenerates into the sequential fallback chain.
    pub fn with_workers(mut self, workers: usize) -> Portfolio {
        self.workers = workers.max(1);
        self
    }

    /// The portfolio's display label (used as the merged outcome's
    /// technique name).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The configured worker-pool size.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Races the entrants against `ctx.faulty`, sharing `ctx.oracle` across
    /// all of them (each entrant runs under its own child of `ctx.cancel`
    /// and its own budget; `ctx.budget` itself is unused).
    pub fn race<'a>(&self, ctx: &RepairContext, entrants: Vec<Entrant<'a>>) -> PortfolioOutcome {
        let n = entrants.len();
        let started = Instant::now();
        if n == 0 {
            return PortfolioOutcome {
                outcome: RepairOutcome::failure(self.label.clone(), 0, 0),
                winner: None,
                entrants: Vec::new(),
                wall_ms: 0,
                budget_spent: 0,
                budget_saved: 0,
            };
        }
        let now_ms = || started.elapsed().as_millis() as u64;
        let tokens: Vec<CancelToken> = (0..n).map(|_| ctx.cancel.child()).collect();
        let cancelled_at: Vec<Mutex<Option<u64>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let labels: Vec<String> = entrants.iter().map(|e| e.label.clone()).collect();
        let budgets: Vec<RepairBudget> = entrants.iter().map(|e| e.budget).collect();
        let slots: Vec<Mutex<Option<Entrant<'a>>>> =
            entrants.into_iter().map(|e| Mutex::new(Some(e))).collect();
        let runs: Vec<Mutex<Option<FinishedRun>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let arbiter = Arbiter {
            best: Mutex::new(None),
        };
        let next = AtomicUsize::new(0);
        // The race span (on the caller's thread) parents every entrant
        // span; workers adopt it explicitly because spans don't cross
        // threads on their own. Each entrant gets ordinal `rank + 1` so its
        // deterministic span ids are stable at any worker count (ordinal 0
        // stays reserved for the cell's own thread).
        let race_span =
            specrepair_trace::span("portfolio.race", specrepair_trace::Phase::Orchestration);
        if race_span.is_active() {
            race_span.attr_u64("entrants", n as u64);
            race_span.attr_u64("workers", self.workers.min(n) as u64);
        }
        let trace_cell = specrepair_trace::current_cell();
        let trace_parent = race_span.id();

        std::thread::scope(|scope| {
            for _ in 0..self.workers.min(n) {
                scope.spawn(|| loop {
                    let rank = next.fetch_add(1, Ordering::SeqCst);
                    if rank >= n {
                        return;
                    }
                    let entrant = slots[rank]
                        .lock()
                        .unwrap()
                        .take()
                        .expect("each rank is claimed exactly once");
                    // Speculation gate: skip without running once a better
                    // rank has already won (or the parent cancel fired).
                    if arbiter.beaten(rank) || tokens[rank].is_cancelled() {
                        let mut at = cancelled_at[rank].lock().unwrap();
                        if at.is_none() {
                            *at = Some(now_ms());
                        }
                        drop(at);
                        let skipped = RepairOutcome::failure(entrant.label.clone(), 0, 0)
                            .with_reason(OutcomeReason::Cancelled);
                        *runs[rank].lock().unwrap() = Some((skipped, None, None));
                        continue;
                    }
                    let entrant_ctx = RepairContext {
                        faulty: ctx.faulty.clone(),
                        source: ctx.source.clone(),
                        budget: entrant.budget,
                        oracle: ctx.oracle.clone(),
                        hasher: ctx.hasher.clone(),
                        cancel: tokens[rank].clone(),
                    };
                    let t_start = now_ms();
                    // A crashing entrant loses the race; it must not tear
                    // down the siblings that may still win it.
                    let label = entrant.label.clone();
                    let _trace_scope =
                        specrepair_trace::cell_scope(trace_cell, rank as u64 + 1, trace_parent);
                    let entrant_span = specrepair_trace::span(
                        "portfolio.entrant",
                        specrepair_trace::Phase::Orchestration,
                    );
                    let outcome = catch_unwind(AssertUnwindSafe(|| (entrant.run)(&entrant_ctx)))
                        .unwrap_or_else(|_| {
                            RepairOutcome::failure(label, 0, 0).with_reason(OutcomeReason::Crashed)
                        });
                    if entrant_span.is_active() {
                        entrant_span.attr_str("label", &labels[rank]);
                        entrant_span.attr_u64("rank", rank as u64);
                        entrant_span.attr_bool("success", outcome.success);
                    }
                    drop(entrant_span);
                    let t_end = now_ms();
                    if outcome.success {
                        arbiter.won(rank, &tokens, &cancelled_at, t_end);
                    }
                    *runs[rank].lock().unwrap() = Some((outcome, Some(t_start), Some(t_end)));
                });
            }
        });

        let winner = *arbiter.best.lock().unwrap();
        let wall_ms = now_ms();
        let mut reports = Vec::with_capacity(n);
        let mut outcomes = Vec::with_capacity(n);
        for rank in 0..n {
            let (outcome, started_ms, finished_ms) = runs[rank]
                .lock()
                .unwrap()
                .take()
                .expect("every rank produced a run record");
            let counted = winner.is_none_or(|w| rank <= w);
            reports.push(EntrantReport {
                label: labels[rank].clone(),
                rank,
                success: outcome.success,
                reason: outcome.reason,
                explored: outcome.candidates_explored,
                rounds: outcome.rounds,
                budget_candidates: budgets[rank].max_candidates,
                started_ms,
                finished_ms,
                cancelled_at_ms: *cancelled_at[rank].lock().unwrap(),
                counted,
            });
            outcomes.push(outcome);
        }

        let budget_spent: usize = reports.iter().map(|r| r.explored).sum();
        let budget_saved: usize = reports
            .iter()
            .filter(|r| r.cancelled_at_ms.is_some())
            .map(|r| r.budget_candidates.saturating_sub(r.explored))
            .sum();
        let outcome = self.merge(ctx, winner, &reports, &outcomes);
        PortfolioOutcome {
            outcome,
            winner,
            entrants: reports,
            wall_ms,
            budget_spent,
            budget_saved,
        }
    }

    /// Assembles the deterministic merged outcome (see the module docs):
    /// winner's candidate, cost summed over ranks `<= winner`. With no
    /// winner every entrant ran to completion, so the sum covers all ranks
    /// and the last entrant has the final word on reason and candidate —
    /// mirroring `UnionHybrid`'s fallback semantics exactly.
    fn merge(
        &self,
        ctx: &RepairContext,
        winner: Option<usize>,
        reports: &[EntrantReport],
        outcomes: &[RepairOutcome],
    ) -> RepairOutcome {
        let counted = |rank: usize| winner.is_none_or(|w| rank <= w);
        let explored: usize = reports
            .iter()
            .filter(|r| counted(r.rank))
            .map(|r| r.explored)
            .sum();
        let rounds: usize = reports
            .iter()
            .filter(|r| counted(r.rank))
            .map(|r| r.rounds)
            .sum();
        match winner {
            Some(w) => RepairOutcome {
                technique: self.label.clone(),
                success: true,
                reason: OutcomeReason::Repaired,
                candidate: outcomes[w].candidate.clone(),
                candidate_source: outcomes[w].candidate_source.clone(),
                candidates_explored: explored,
                rounds,
            },
            None => {
                // Highest-ranked entrant that produced anything supplies the
                // failure candidate (the fallback position's privilege).
                let last = outcomes
                    .iter()
                    .rev()
                    .find(|o| o.candidate.is_some())
                    .or_else(|| outcomes.last());
                let reason = if ctx.cancel.is_cancelled() {
                    OutcomeReason::Cancelled
                } else {
                    outcomes
                        .last()
                        .map(|o| o.reason)
                        .unwrap_or(OutcomeReason::BudgetExhausted)
                };
                RepairOutcome {
                    technique: self.label.clone(),
                    success: false,
                    reason,
                    candidate: last.and_then(|o| o.candidate.clone()),
                    candidate_source: last.and_then(|o| o.candidate_source.clone()),
                    candidates_explored: explored,
                    rounds,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mualloy_syntax::parse_spec;
    use std::sync::atomic::AtomicBool;
    use std::time::Duration;

    const SPEC: &str = "sig N {} fact { no N } pred p { some N } run p for 3 expect 1";

    fn ctx() -> RepairContext {
        RepairContext::new(parse_spec(SPEC).unwrap(), RepairBudget::tiny())
    }

    fn succeed<'a>(label: &'a str, explored: usize) -> Entrant<'a> {
        Entrant::new(label, RepairBudget::tiny(), move |c: &RepairContext| {
            RepairOutcome::success_with(label, c.faulty.clone(), explored, 1)
        })
    }

    fn fail<'a>(label: &'a str, explored: usize) -> Entrant<'a> {
        Entrant::new(label, RepairBudget::tiny(), move |_: &RepairContext| {
            RepairOutcome::failure(label, explored, 1)
        })
    }

    /// Blocks until its token fires, then reports a cancelled failure.
    fn stall<'a>(label: &'a str) -> Entrant<'a> {
        Entrant::new(label, RepairBudget::tiny(), move |c: &RepairContext| {
            while !c.cancelled() {
                std::thread::sleep(Duration::from_millis(1));
            }
            RepairOutcome::failure(label, 0, 0).with_reason(OutcomeReason::Cancelled)
        })
    }

    #[test]
    fn lowest_rank_success_wins() {
        let p = Portfolio::new("P").with_workers(4);
        let out = p.race(&ctx(), vec![fail("a", 3), succeed("b", 2), succeed("c", 9)]);
        assert_eq!(out.winner, Some(1));
        assert!(out.outcome.success);
        assert_eq!(out.outcome.technique, "P");
        // Deterministic accounting: ranks 0 and 1 only.
        assert_eq!(out.outcome.candidates_explored, 5);
        assert!(!out.entrants[2].counted);
    }

    #[test]
    fn late_low_rank_success_displaces_early_high_rank_one() {
        // Rank 2 finishes (successfully) long before rank 0, but rank 0
        // must still win the arbitration.
        let slow_success = Entrant::new("slow", RepairBudget::tiny(), |c: &RepairContext| {
            std::thread::sleep(Duration::from_millis(30));
            RepairOutcome::success_with("slow", c.faulty.clone(), 1, 1)
        });
        let p = Portfolio::new("P").with_workers(4);
        let out = p.race(
            &ctx(),
            vec![slow_success, fail("mid", 1), succeed("fast", 1)],
        );
        assert_eq!(out.winner, Some(0), "rank beats wall-clock");
        assert_eq!(out.outcome.candidates_explored, 1, "only rank 0 counted");
    }

    #[test]
    fn winner_cancels_losers() {
        let p = Portfolio::new("P").with_workers(4);
        let out = p.race(
            &ctx(),
            vec![succeed("win", 1), stall("lose"), stall("lose2")],
        );
        assert_eq!(out.winner, Some(0));
        for loser in &out.entrants[1..] {
            assert!(
                loser.cancelled_at_ms.is_some(),
                "loser was never cancelled: {loser:?}"
            );
            assert!(!loser.counted);
        }
        assert!(out.budget_saved > 0, "cancelled losers save budget");
    }

    #[test]
    fn one_worker_is_the_sequential_fallback_chain() {
        let ran_c = AtomicBool::new(false);
        let c_entrant = Entrant::new("c", RepairBudget::tiny(), |_: &RepairContext| {
            ran_c.store(true, Ordering::SeqCst);
            RepairOutcome::failure("c", 1, 1)
        });
        let p = Portfolio::new("P").with_workers(1);
        let out = p.race(&ctx(), vec![fail("a", 2), succeed("b", 3), c_entrant]);
        assert_eq!(out.winner, Some(1));
        assert!(
            !ran_c.load(Ordering::SeqCst),
            "post-winner rank must not run"
        );
        assert_eq!(out.entrants[2].started_ms, None);
        assert_eq!(out.outcome.candidates_explored, 5);
    }

    #[test]
    fn total_failure_sums_everything_and_keeps_last_word() {
        let p = Portfolio::new("P").with_workers(2);
        let candidate_fail =
            Entrant::new("with-cand", RepairBudget::tiny(), |c: &RepairContext| {
                let mut out = RepairOutcome::failure("with-cand", 4, 2);
                out.candidate = Some(c.faulty.clone());
                out.candidate_source = Some(c.source.clone());
                out.with_reason(OutcomeReason::ModelExhausted)
            });
        let out = p.race(&ctx(), vec![candidate_fail, fail("plain", 1)]);
        assert_eq!(out.winner, None);
        assert!(!out.outcome.success);
        assert_eq!(out.outcome.candidates_explored, 5);
        assert_eq!(out.outcome.rounds, 3);
        assert_eq!(out.outcome.reason, OutcomeReason::BudgetExhausted);
        assert!(out.outcome.candidate.is_some(), "failure keeps a candidate");
    }

    #[test]
    fn crashing_entrant_loses_instead_of_stalling_the_race() {
        let p = Portfolio::new("P").with_workers(2);
        let crasher = Entrant::new("boom", RepairBudget::tiny(), |_: &RepairContext| {
            panic!("injected crash")
        });
        let out = p.race(&ctx(), vec![crasher, succeed("win", 1)]);
        assert_eq!(out.winner, Some(1));
        assert_eq!(out.entrants[0].reason, OutcomeReason::Crashed);
        assert!(out.outcome.success);
    }

    #[test]
    fn external_cancellation_reports_cancelled() {
        let parent = CancelToken::none();
        parent.cancel();
        let base = ctx().with_cancel(parent);
        let p = Portfolio::new("P").with_workers(2);
        let out = p.race(&base, vec![fail("a", 1), fail("b", 1)]);
        assert_eq!(out.winner, None);
        assert_eq!(out.outcome.reason, OutcomeReason::Cancelled);
    }

    #[test]
    fn empty_roster_is_a_failure() {
        let p = Portfolio::new("P");
        let out = p.race(&ctx(), vec![]);
        assert!(!out.outcome.success);
        assert!(out.entrants.is_empty());
        assert!(out.winning_entrant().is_none());
    }

    #[test]
    fn reports_serialize() {
        let p = Portfolio::new("P").with_workers(2);
        let out = p.race(&ctx(), vec![succeed("w", 1), fail("l", 1)]);
        let json = serde_json::to_string(&out.entrants).unwrap();
        assert!(json.contains("\"label\""), "{json}");
        assert!(json.contains("\"counted\""), "{json}");
    }
}
