//! Mutation operators over μAlloy ASTs.
//!
//! These operators serve two masters: the fault injector (producing the
//! benchmark corpora) and the traditional repair tools (ARepair/BeAFix
//! candidate generation). They deliberately mirror the mutation classes of
//! the BeAFix paper: operator replacement, quantifier replacement,
//! multiplicity changes, junction flips, negation toggles, conjunct
//! weakening and vocabulary-level identifier substitution.
//!
//! Only nodes owned by facts, predicates and functions are mutated —
//! assertions (and commands) are the trusted oracle, as in the study's
//! benchmarks.

use mualloy_syntax::ast::*;
use mualloy_syntax::walk::{
    collect_sites, node_at, replace_node, NodeId, NodeRepl, NodeSite, OwnerKind,
};

use crate::vocab::Vocabulary;

/// The class a mutation belongs to (for reporting and ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MutationKind {
    /// Logical connective replaced (`&&` → `||`, …).
    ConnectiveReplace,
    /// Relational comparison operator replaced (`in` → `=`, …).
    CompareReplace,
    /// Integer comparison operator replaced.
    IntCompareReplace,
    /// Multiplicity operator replaced (`some e` → `no e`, …).
    MultReplace,
    /// Quantifier replaced (`all` → `some`, …).
    QuantReplace,
    /// Formula negated or un-negated.
    NegateToggle,
    /// One operand of a conjunction/disjunction dropped.
    JunctionDrop,
    /// Set operator replaced (`+` → `-`, …).
    SetOpReplace,
    /// Unary relational operator replaced, dropped or inserted.
    UnaryOpChange,
    /// Identifier replaced by another of compatible kind.
    IdentReplace,
    /// Implication direction swapped.
    ImplicationSwap,
    /// Whole constraint replaced by a synthesized template
    /// (see [`crate::synthesis`]).
    TemplateReplace,
    /// Constraint strengthened by conjoining a synthesized template.
    TemplateConjoin,
}

impl MutationKind {
    /// Stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            MutationKind::ConnectiveReplace => "connective-replace",
            MutationKind::CompareReplace => "compare-replace",
            MutationKind::IntCompareReplace => "int-compare-replace",
            MutationKind::MultReplace => "mult-replace",
            MutationKind::QuantReplace => "quant-replace",
            MutationKind::NegateToggle => "negate-toggle",
            MutationKind::JunctionDrop => "junction-drop",
            MutationKind::SetOpReplace => "set-op-replace",
            MutationKind::UnaryOpChange => "unary-op-change",
            MutationKind::IdentReplace => "ident-replace",
            MutationKind::ImplicationSwap => "implication-swap",
            MutationKind::TemplateReplace => "template-replace",
            MutationKind::TemplateConjoin => "template-conjoin",
        }
    }

    /// Whether the mutation synthesizes new constraint structure (as
    /// opposed to editing existing operators/operands).
    pub fn is_synthesis(&self) -> bool {
        matches!(
            self,
            MutationKind::TemplateReplace | MutationKind::TemplateConjoin
        )
    }
}

/// A single applicable mutation.
#[derive(Debug, Clone, PartialEq)]
pub struct Mutation {
    /// Target node.
    pub site: NodeId,
    /// Source span of the target node (for localization metrics).
    pub span: Span,
    /// Replacement payload.
    pub repl: NodeRepl,
    /// Operator class.
    pub kind: MutationKind,
    /// Human-readable description.
    pub description: String,
}

/// Enumerates mutations of a specification.
#[derive(Debug, Clone)]
pub struct MutationEngine {
    spec: Spec,
    sites: Vec<NodeSite>,
    vocab: Vocabulary,
}

impl MutationEngine {
    /// Creates an engine for the given specification.
    pub fn new(spec: &Spec) -> MutationEngine {
        MutationEngine {
            spec: spec.clone(),
            sites: collect_sites(spec),
            vocab: Vocabulary::of(spec),
        }
    }

    /// The mutable sites (facts, predicates, functions — not assertions).
    pub fn sites(&self) -> impl Iterator<Item = &NodeSite> {
        self.sites.iter().filter(|s| s.owner.0 != OwnerKind::Assert)
    }

    /// All mutations across all mutable sites, in deterministic order.
    pub fn all_mutations(&self) -> Vec<Mutation> {
        let mut out = Vec::new();
        for site in self.sites() {
            out.extend(self.mutations_at(site));
        }
        out
    }

    /// Mutations applicable at one site.
    pub fn mutations_at(&self, site: &NodeSite) -> Vec<Mutation> {
        let Some(node) = node_at(&self.spec, site.id) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        match node {
            NodeRepl::Formula(f) => self.formula_mutations(site, &f, &mut out),
            NodeRepl::Expr(e) => self.expr_mutations(site, &e, &mut out),
        }
        out
    }

    /// Applies a mutation, returning the mutated specification.
    pub fn apply(&self, m: &Mutation) -> Option<Spec> {
        replace_node(&self.spec, m.site, m.repl.clone())
    }

    fn push(
        &self,
        out: &mut Vec<Mutation>,
        site: &NodeSite,
        repl: NodeRepl,
        kind: MutationKind,
        description: String,
    ) {
        out.push(Mutation {
            site: site.id,
            span: site.span,
            repl,
            kind,
            description,
        });
    }

    fn formula_mutations(&self, site: &NodeSite, f: &Formula, out: &mut Vec<Mutation>) {
        let span = f.meta();
        match f {
            Formula::Binary(op, l, r, _) => {
                for alt in [
                    BinFormOp::And,
                    BinFormOp::Or,
                    BinFormOp::Implies,
                    BinFormOp::Iff,
                ] {
                    if alt != *op {
                        self.push(
                            out,
                            site,
                            NodeRepl::Formula(Formula::Binary(alt, l.clone(), r.clone(), span)),
                            MutationKind::ConnectiveReplace,
                            format!("replace `{}` with `{}`", op.symbol(), alt.symbol()),
                        );
                    }
                }
                if *op == BinFormOp::Implies {
                    self.push(
                        out,
                        site,
                        NodeRepl::Formula(Formula::Binary(*op, r.clone(), l.clone(), span)),
                        MutationKind::ImplicationSwap,
                        "swap implication direction".to_string(),
                    );
                }
                if matches!(op, BinFormOp::And | BinFormOp::Or) {
                    self.push(
                        out,
                        site,
                        NodeRepl::Formula((**l).clone()),
                        MutationKind::JunctionDrop,
                        "drop right operand".to_string(),
                    );
                    self.push(
                        out,
                        site,
                        NodeRepl::Formula((**r).clone()),
                        MutationKind::JunctionDrop,
                        "drop left operand".to_string(),
                    );
                }
            }
            Formula::Compare(op, l, r, _) => {
                for alt in [CmpOp::In, CmpOp::Eq, CmpOp::Neq, CmpOp::NotIn] {
                    if alt != *op {
                        self.push(
                            out,
                            site,
                            NodeRepl::Formula(Formula::Compare(alt, l.clone(), r.clone(), span)),
                            MutationKind::CompareReplace,
                            format!("replace `{}` with `{}`", op.symbol(), alt.symbol()),
                        );
                    }
                }
            }
            Formula::IntCompare(op, l, r, _) => {
                for alt in [
                    IntCmpOp::Eq,
                    IntCmpOp::Neq,
                    IntCmpOp::Lt,
                    IntCmpOp::Gt,
                    IntCmpOp::Le,
                    IntCmpOp::Ge,
                ] {
                    if alt != *op {
                        self.push(
                            out,
                            site,
                            NodeRepl::Formula(Formula::IntCompare(alt, l.clone(), r.clone(), span)),
                            MutationKind::IntCompareReplace,
                            format!("replace `{}` with `{}`", op.symbol(), alt.symbol()),
                        );
                    }
                }
            }
            Formula::Mult(op, e, _) => {
                for alt in [MultOp::Some, MultOp::No, MultOp::Lone, MultOp::One] {
                    if alt != *op {
                        self.push(
                            out,
                            site,
                            NodeRepl::Formula(Formula::Mult(alt, e.clone(), span)),
                            MutationKind::MultReplace,
                            format!("replace `{}` with `{}`", op.keyword(), alt.keyword()),
                        );
                    }
                }
            }
            Formula::Quant(q, decls, body, _) => {
                for alt in [Quant::All, Quant::Some, Quant::No, Quant::Lone, Quant::One] {
                    if alt != *q {
                        self.push(
                            out,
                            site,
                            NodeRepl::Formula(Formula::Quant(
                                alt,
                                decls.clone(),
                                body.clone(),
                                span,
                            )),
                            MutationKind::QuantReplace,
                            format!("replace `{}` with `{}`", q.keyword(), alt.keyword()),
                        );
                    }
                }
            }
            Formula::Not(inner, _) => {
                self.push(
                    out,
                    site,
                    NodeRepl::Formula((**inner).clone()),
                    MutationKind::NegateToggle,
                    "remove negation".to_string(),
                );
            }
            _ => {}
        }
        // Any formula can be negated (except an existing negation, handled
        // above as removal).
        if !matches!(f, Formula::Not(_, _)) {
            self.push(
                out,
                site,
                NodeRepl::Formula(Formula::Not(Box::new(f.clone()), span)),
                MutationKind::NegateToggle,
                "negate formula".to_string(),
            );
        }
    }

    fn expr_mutations(&self, site: &NodeSite, e: &Expr, out: &mut Vec<Mutation>) {
        let span = e.meta();
        match e {
            Expr::Binary(op, l, r, _) => {
                // Arity-preserving set-operator swaps.
                let family = [
                    BinExprOp::Union,
                    BinExprOp::Diff,
                    BinExprOp::Intersect,
                    BinExprOp::Override,
                ];
                if family.contains(op) {
                    for alt in family {
                        if alt != *op {
                            self.push(
                                out,
                                site,
                                NodeRepl::Expr(Expr::Binary(alt, l.clone(), r.clone(), span)),
                                MutationKind::SetOpReplace,
                                format!("replace `{}` with `{}`", op.symbol(), alt.symbol()),
                            );
                        }
                    }
                }
                if *op == BinExprOp::DomRestrict {
                    self.push(
                        out,
                        site,
                        NodeRepl::Expr(Expr::Binary(
                            BinExprOp::RanRestrict,
                            r.clone(),
                            l.clone(),
                            span,
                        )),
                        MutationKind::SetOpReplace,
                        "turn `<:` into `:>`".to_string(),
                    );
                }
            }
            Expr::Unary(op, inner, _) => {
                for alt in [
                    UnExprOp::Closure,
                    UnExprOp::ReflClosure,
                    UnExprOp::Transpose,
                ] {
                    if alt != *op {
                        self.push(
                            out,
                            site,
                            NodeRepl::Expr(Expr::Unary(alt, inner.clone(), span)),
                            MutationKind::UnaryOpChange,
                            format!("replace `{}` with `{}`", op.symbol(), alt.symbol()),
                        );
                    }
                }
                self.push(
                    out,
                    site,
                    NodeRepl::Expr((**inner).clone()),
                    MutationKind::UnaryOpChange,
                    format!("drop `{}`", op.symbol()),
                );
            }
            Expr::Ident(name, _) => {
                // Replace by a same-kind name.
                if self.vocab.is_sig(name) {
                    for s in &self.vocab.sigs {
                        if s != name {
                            self.push(
                                out,
                                site,
                                NodeRepl::Expr(Expr::Ident(s.clone(), span)),
                                MutationKind::IdentReplace,
                                format!("replace sig `{name}` with `{s}`"),
                            );
                        }
                    }
                } else if let Some(arity) = self.vocab.field_arity(name) {
                    for (f, a) in &self.vocab.fields {
                        if f != name && *a == arity {
                            self.push(
                                out,
                                site,
                                NodeRepl::Expr(Expr::Ident(f.clone(), span)),
                                MutationKind::IdentReplace,
                                format!("replace field `{name}` with `{f}`"),
                            );
                        }
                    }
                    // A binary field can gain a closure.
                    if arity == 2 {
                        self.push(
                            out,
                            site,
                            NodeRepl::Expr(Expr::Unary(
                                UnExprOp::Closure,
                                Box::new(e.clone()),
                                span,
                            )),
                            MutationKind::UnaryOpChange,
                            format!("wrap `{name}` in `^`"),
                        );
                        self.push(
                            out,
                            site,
                            NodeRepl::Expr(Expr::Unary(
                                UnExprOp::Transpose,
                                Box::new(e.clone()),
                                span,
                            )),
                            MutationKind::UnaryOpChange,
                            format!("wrap `{name}` in `~`"),
                        );
                    }
                } else {
                    // A bound variable: swap with another variable in scope.
                    for v in &site.vars_in_scope {
                        if v != name {
                            self.push(
                                out,
                                site,
                                NodeRepl::Expr(Expr::Ident(v.clone(), span)),
                                MutationKind::IdentReplace,
                                format!("replace variable `{name}` with `{v}`"),
                            );
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mualloy_syntax::{check_spec, parse_spec};

    fn spec() -> Spec {
        parse_spec(
            "sig N { next: lone N, prev: lone N } \
             fact Acyclic { no n: N | n in n.^next } \
             pred ok[n: N] { some n.next && n not in n.prev } \
             assert A { no none } \
             check A for 3",
        )
        .unwrap()
    }

    #[test]
    fn enumerates_many_mutations() {
        let engine = MutationEngine::new(&spec());
        let all = engine.all_mutations();
        assert!(all.len() > 30, "got only {}", all.len());
        // Deterministic ordering.
        let again = MutationEngine::new(&spec()).all_mutations();
        assert_eq!(all.len(), again.len());
        assert_eq!(all[0].description, again[0].description);
    }

    #[test]
    fn assertions_are_not_mutated() {
        let engine = MutationEngine::new(&spec());
        for site in engine.sites() {
            assert_ne!(site.owner.0, OwnerKind::Assert);
        }
    }

    #[test]
    fn all_mutants_are_well_formed() {
        let engine = MutationEngine::new(&spec());
        for m in engine.all_mutations() {
            let mutant = engine
                .apply(&m)
                .unwrap_or_else(|| panic!("apply failed: {m:?}"));
            assert!(
                check_spec(&mutant).is_empty(),
                "mutation `{}` produced ill-formed spec",
                m.description
            );
        }
    }

    #[test]
    fn mutants_differ_from_original() {
        let engine = MutationEngine::new(&spec());
        let original = mualloy_syntax::walk::strip_spec_spans(&spec());
        let mut distinct = 0;
        for m in engine.all_mutations() {
            let mutant = engine.apply(&m).unwrap();
            if mualloy_syntax::walk::strip_spec_spans(&mutant) != original {
                distinct += 1;
            }
        }
        assert!(distinct > 20);
    }

    #[test]
    fn covers_expected_kinds() {
        let engine = MutationEngine::new(&spec());
        let kinds: std::collections::BTreeSet<MutationKind> =
            engine.all_mutations().iter().map(|m| m.kind).collect();
        for k in [
            MutationKind::ConnectiveReplace,
            MutationKind::CompareReplace,
            MutationKind::MultReplace,
            MutationKind::QuantReplace,
            MutationKind::NegateToggle,
            MutationKind::JunctionDrop,
            MutationKind::IdentReplace,
            MutationKind::UnaryOpChange,
        ] {
            assert!(kinds.contains(&k), "missing kind {k:?}");
        }
    }

    #[test]
    fn variable_swap_respects_scope() {
        let src = "sig A { f: set A } fact { all x, y: A | x in y.f }";
        let engine = MutationEngine::new(&parse_spec(src).unwrap());
        let swaps: Vec<_> = engine
            .all_mutations()
            .into_iter()
            .filter(|m| m.kind == MutationKind::IdentReplace && m.description.contains("variable"))
            .collect();
        assert!(!swaps.is_empty());
        for m in swaps {
            let mutant = engine.apply(&m).unwrap();
            assert!(check_spec(&mutant).is_empty());
        }
    }

    #[test]
    fn kind_labels_are_stable() {
        assert_eq!(MutationKind::QuantReplace.label(), "quant-replace");
        assert_eq!(MutationKind::JunctionDrop.label(), "junction-drop");
    }
}
