//! # specrepair-mutation
//!
//! AST mutation machinery shared by the fault injector (which manufactures
//! the benchmark corpora) and the traditional repair tools (which search the
//! mutation space for fixes):
//!
//! - [`Vocabulary`]: names and arities available for identifier mutations;
//! - [`MutationEngine`]: deterministic enumeration of BeAFix-style mutation
//!   operators over facts, predicates and functions;
//! - [`inject_fault`]: seeded semantic fault injection with an
//!   observability guarantee (every produced mutant violates its command
//!   oracle).
//!
//! # Example
//!
//! ```
//! use mualloy_syntax::parse_spec;
//! use specrepair_mutation::MutationEngine;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = parse_spec("sig N { next: lone N } fact { no n: N | n in n.^next }")?;
//! let engine = MutationEngine::new(&spec);
//! let mutations = engine.all_mutations();
//! assert!(!mutations.is_empty());
//! let mutant = engine.apply(&mutations[0]).expect("mutation applies");
//! assert!(mualloy_syntax::check_spec(&mutant).is_empty());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod inject;
pub mod ops;
pub mod synthesis;
pub mod vocab;

pub use inject::{inject_fault, inject_fault_with, InjectedFault, InjectorConfig};
pub use ops::{Mutation, MutationEngine, MutationKind};
pub use synthesis::{synthesis_mutations, template_formulas};
pub use vocab::Vocabulary;

#[cfg(test)]
mod proptests {
    use super::*;
    use mualloy_syntax::{check_spec, parse_spec};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Every mutation of every engine-visited spec yields a spec that
        /// still parses after printing (printer/parser closure) and passes
        /// static checks.
        #[test]
        fn mutants_roundtrip_through_printer(idx in 0usize..4, pick in any::<prop::sample::Index>()) {
            let sources = [
                "sig A { f: set A } fact { all x: A | x in x.f }",
                "sig N { next: lone N } fact { no n: N | n in n.^next }",
                "sig P { q: set P } pred ok[p: P] { some p.q && p not in p.q }",
                "sig A {} sig B { g: some A } fact { #B > 1 => some g }",
            ];
            let spec = parse_spec(sources[idx]).unwrap();
            let engine = MutationEngine::new(&spec);
            let all = engine.all_mutations();
            prop_assume!(!all.is_empty());
            let m = &all[pick.index(all.len())];
            let mutant = engine.apply(m).unwrap();
            prop_assert!(check_spec(&mutant).is_empty());
            let printed = mualloy_syntax::print_spec(&mutant);
            let reparsed = mualloy_syntax::parse_spec(&printed).unwrap();
            prop_assert!(check_spec(&reparsed).is_empty());
        }

        /// The memoizing oracle is answer-preserving: for arbitrary mutants
        /// of command-bearing specs, its verdicts — both the cold miss and
        /// the warm replay — equal a fresh `Analyzer`'s.
        #[test]
        fn oracle_cache_agrees_with_fresh_analyzer(
            idx in 0usize..3,
            pick in any::<prop::sample::Index>(),
        ) {
            let sources = [
                "sig N { next: lone N } fact Acyclic { no n: N | n in n.^next } \
                 assert NoSelf { all n: N | n not in n.next } check NoSelf for 3 expect 0",
                "sig N {} fact Dead { no N } pred p { some N } run p for 3 expect 1",
                "sig A { f: set A } fact F { all x: A | x in x.f } \
                 pred q { some f } run q for 3 expect 1",
            ];
            let spec = parse_spec(sources[idx]).unwrap();
            let engine = MutationEngine::new(&spec);
            let all = engine.all_mutations();
            prop_assume!(!all.is_empty());
            let m = &all[pick.index(all.len())];
            let mutant = engine.apply(m).unwrap();

            let oracle = mualloy_analyzer::Oracle::new();
            let fresh = mualloy_analyzer::Analyzer::new(mutant.clone()).satisfies_oracle();
            let cold = oracle.satisfies_oracle(&mutant);
            let warm = oracle.satisfies_oracle(&mutant);
            prop_assert_eq!(&cold, &fresh);
            prop_assert_eq!(&warm, &fresh);
            prop_assert!(oracle.stats().hits >= 1, "second query must replay the memo");

            // Derived views replay from the same memo entry and must agree
            // with a fresh analysis as well.
            let fresh_failing =
                mualloy_analyzer::Analyzer::new(mutant.clone()).failing_commands();
            prop_assert_eq!(oracle.failing_commands(&mutant), fresh_failing);
        }
    }
}
