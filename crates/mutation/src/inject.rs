//! Seeded semantic fault injection.
//!
//! Given a *ground-truth* specification whose commands all match their
//! `expect` annotations, the injector applies 1–k random mutations and keeps
//! only mutants that are **observably faulty**: at least one command outcome
//! now contradicts its annotation. This reproduces the structure of the
//! Alloy4Fun and ARepair corpora, where every entry is a human-written buggy
//! variant of a known-correct model.

use mualloy_analyzer::Oracle;
use mualloy_syntax::ast::Formula;
use mualloy_syntax::walk::{collect_sites, replace_node, strip_spec_spans, NodeRepl, OwnerKind};
use mualloy_syntax::{Span, Spec};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::ops::{Mutation, MutationEngine, MutationKind};

/// A successfully injected fault.
#[derive(Debug, Clone)]
pub struct InjectedFault {
    /// The faulty specification.
    pub faulty: Spec,
    /// Descriptions of the applied mutations (ground-truth edit script).
    pub edits: Vec<String>,
    /// Source spans of the mutated nodes in the *original* specification
    /// (the true fault locations, used to score fault localization).
    pub fault_spans: Vec<Span>,
}

/// Configuration for the fault injector.
///
/// The difficulty mix mirrors the corpora's description in the paper
/// (§III-C): faults "range from simple faults amendable by adjusting a
/// single operator to intricate defects necessitating the synthesis of new
/// expressions or the substitution of entire predicate bodies".
#[derive(Debug, Clone, Copy)]
pub struct InjectorConfig {
    /// Probability of a single operator-level fault (*easy*).
    pub p_easy: f64,
    /// Probability of two stacked operator-level faults (*medium*).
    pub p_medium: f64,
    /// Remaining probability: a whole constraint is deleted (*hard* —
    /// repairing requires synthesizing a replacement expression).
    pub max_attempts: usize,
}

impl Default for InjectorConfig {
    fn default() -> Self {
        InjectorConfig {
            p_easy: 0.45,
            p_medium: 0.25,
            max_attempts: 64,
        }
    }
}

/// Injects a semantic fault into `truth` using the given seed.
///
/// Returns `None` when no observably-faulty mutant could be produced within
/// the attempt budget (e.g. the specification has no commands).
pub fn inject_fault(truth: &Spec, seed: u64, config: InjectorConfig) -> Option<InjectedFault> {
    inject_fault_with(&Oracle::new(), truth, seed, config)
}

/// [`inject_fault`] against a caller-provided oracle, so corpus generation
/// can share one memo table across all seeds of a domain (different seeds
/// frequently re-derive structurally identical mutants).
pub fn inject_fault_with(
    oracle: &Oracle,
    truth: &Spec,
    seed: u64,
    config: InjectorConfig,
) -> Option<InjectedFault> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let truth_shape = strip_spec_spans(truth);
    for _ in 0..config.max_attempts {
        let roll: f64 = rng.gen();
        let (current, edits, fault_spans) = if roll < config.p_easy {
            match apply_operator_edits(truth, 1, &mut rng) {
                Some(r) => r,
                None => continue,
            }
        } else if roll < config.p_easy + config.p_medium {
            match apply_operator_edits(truth, 2, &mut rng) {
                Some(r) => r,
                None => continue,
            }
        } else {
            match delete_constraint(truth, &mut rng) {
                Some(r) => r,
                None => continue,
            }
        };
        if strip_spec_spans(&current) == truth_shape {
            continue; // cosmetically different but structurally identical
        }
        // Observability: the mutant must violate the command oracle.
        match oracle.satisfies_oracle(&current) {
            Ok(false) => {
                return Some(InjectedFault {
                    faulty: current,
                    edits,
                    fault_spans,
                })
            }
            _ => continue,
        }
    }
    None
}

fn choose<'a>(mutations: &'a [Mutation], rng: &mut ChaCha8Rng) -> Option<&'a Mutation> {
    mutations.choose(rng)
}

/// Applies `n` operator-level mutations (never whole-constraint drops —
/// those are the *hard* class handled separately).
fn apply_operator_edits(
    truth: &Spec,
    n: usize,
    rng: &mut ChaCha8Rng,
) -> Option<(Spec, Vec<String>, Vec<Span>)> {
    let mut current = truth.clone();
    let mut edits = Vec::new();
    let mut spans = Vec::new();
    for _ in 0..n {
        let engine = MutationEngine::new(&current);
        let mutations: Vec<Mutation> = engine
            .all_mutations()
            .into_iter()
            .filter(|m| m.kind != MutationKind::JunctionDrop)
            .collect();
        let m = choose(&mutations, rng)?.clone();
        let next = engine.apply(&m)?;
        edits.push(m.description);
        spans.push(m.span);
        current = next;
    }
    Some((current, edits, spans))
}

/// Deletes one top-level constraint of a fact or predicate (replaces it by
/// a trivially-true formula), the corpora's "missing constraint" fault.
fn delete_constraint(truth: &Spec, rng: &mut ChaCha8Rng) -> Option<(Spec, Vec<String>, Vec<Span>)> {
    let sites = collect_sites(truth);
    let top_level: Vec<_> = sites
        .iter()
        .filter(|s| {
            s.is_formula && s.depth == 0 && matches!(s.owner.0, OwnerKind::Fact | OwnerKind::Pred)
        })
        .collect();
    let site = top_level.choose(rng)?;
    let faulty = replace_node(truth, site.id, NodeRepl::Formula(Formula::truth()))?;
    Some((
        faulty,
        vec!["delete constraint".to_string()],
        vec![site.span],
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mualloy_analyzer::Analyzer;
    use mualloy_syntax::parse_spec;

    const TRUTH: &str = "sig N { next: lone N } \
        fact Acyclic { no n: N | n in n.^next } \
        pred hasEdge { some next } \
        assert NoSelf { all n: N | n not in n.next } \
        run hasEdge for 3 expect 1 \
        check NoSelf for 3 expect 0";

    #[test]
    fn ground_truth_satisfies_its_oracle() {
        let spec = parse_spec(TRUTH).unwrap();
        assert!(Analyzer::new(spec).satisfies_oracle().unwrap());
    }

    #[test]
    fn injected_faults_violate_oracle() {
        let truth = parse_spec(TRUTH).unwrap();
        let mut produced = 0;
        for seed in 0..6u64 {
            if let Some(fault) = inject_fault(&truth, seed, InjectorConfig::default()) {
                produced += 1;
                assert!(!fault.edits.is_empty());
                assert_eq!(fault.edits.len(), fault.fault_spans.len());
                let analyzer = Analyzer::new(fault.faulty.clone());
                assert!(!analyzer.satisfies_oracle().unwrap());
            }
        }
        assert!(produced >= 4, "only {produced}/6 seeds produced faults");
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let truth = parse_spec(TRUTH).unwrap();
        let a = inject_fault(&truth, 42, InjectorConfig::default()).unwrap();
        let b = inject_fault(&truth, 42, InjectorConfig::default()).unwrap();
        assert_eq!(a.edits, b.edits);
        assert_eq!(strip_spec_spans(&a.faulty), strip_spec_spans(&b.faulty));
    }

    #[test]
    fn different_seeds_produce_diverse_faults() {
        let truth = parse_spec(TRUTH).unwrap();
        let mut shapes = std::collections::BTreeSet::new();
        for seed in 0..10u64 {
            if let Some(f) = inject_fault(&truth, seed, InjectorConfig::default()) {
                shapes.insert(format!("{:?}", strip_spec_spans(&f.faulty)));
            }
        }
        assert!(shapes.len() >= 3, "only {} distinct faults", shapes.len());
    }

    #[test]
    fn spec_without_commands_yields_no_fault() {
        let truth = parse_spec("sig A { f: set A } fact { some A }").unwrap();
        assert!(inject_fault(&truth, 1, InjectorConfig::default()).is_none());
    }
}
