//! Template-based formula synthesis.
//!
//! A small grammar of atomic formulas over a specification's vocabulary:
//! multiplicity and comparison templates over depth-≤2 expressions built
//! from the variables in scope, signatures and fields. Two consumers use
//! it, matching the papers' tool designs:
//!
//! - **ATR** instantiates repair candidates from these templates;
//! - the **synthetic LLM** samples from them to model GPT-4's ability to
//!   synthesize new constraints (the capability the paper credits for LLM
//!   success on faults "necessitating the synthesis of new expressions").
//!
//! The purely mutation-based tools (ARepair, BeAFix, ICEBAR) deliberately
//! do *not* see these candidates.

use mualloy_syntax::ast::*;
use mualloy_syntax::walk::{node_at, NodeRepl, NodeSite};

use crate::ops::{Mutation, MutationKind};
use crate::vocab::Vocabulary;

/// Synthesizes atomic template formulas available at a site.
pub fn template_formulas(vocab: &Vocabulary, site: &NodeSite, cap: usize) -> Vec<Formula> {
    let span = Meta::synthetic();
    let mut exprs: Vec<Expr> = Vec::new();
    for v in &site.vars_in_scope {
        exprs.push(Expr::ident(v.clone()));
    }
    for s in &vocab.sigs {
        exprs.push(Expr::ident(s.clone()));
    }
    let base: Vec<Expr> = exprs.clone();
    for (f, arity) in &vocab.fields {
        let field = Expr::ident(f.clone());
        if *arity == 2 {
            // Field-level patterns (the classic Alloy repair templates):
            // f, ^f, iden & f, iden & ^f, f & ~f.
            exprs.push(field.clone());
            exprs.push(Expr::unary(UnExprOp::Closure, field.clone()));
            exprs.push(Expr::binary(
                BinExprOp::Intersect,
                Expr::Iden(span),
                field.clone(),
            ));
            exprs.push(Expr::binary(
                BinExprOp::Intersect,
                Expr::Iden(span),
                Expr::unary(UnExprOp::Closure, field.clone()),
            ));
            exprs.push(Expr::binary(
                BinExprOp::Intersect,
                field.clone(),
                Expr::unary(UnExprOp::Transpose, field.clone()),
            ));
            for b in &base {
                exprs.push(Expr::join(b.clone(), field.clone()));
                exprs.push(Expr::join(
                    b.clone(),
                    Expr::unary(UnExprOp::Closure, field.clone()),
                ));
                exprs.push(Expr::join(
                    b.clone(),
                    Expr::unary(UnExprOp::Transpose, field.clone()),
                ));
            }
        } else if *arity == 3 {
            for b in &base {
                exprs.push(Expr::join(b.clone(), field.clone()));
            }
        }
    }
    // Symmetry/antisymmetry comparisons between a field and its transpose.
    let mut symmetry = Vec::new();
    for (f, arity) in &vocab.fields {
        if *arity == 2 {
            let field = Expr::ident(f.clone());
            let transposed = Expr::unary(UnExprOp::Transpose, field.clone());
            symmetry.push(Formula::compare(
                CmpOp::Eq,
                field.clone(),
                transposed.clone(),
            ));
            symmetry.push(Formula::compare(CmpOp::In, field, transposed));
        }
    }
    let mut out = symmetry;
    'mults: for e in &exprs {
        for m in [MultOp::Some, MultOp::No, MultOp::Lone, MultOp::One] {
            out.push(Formula::Mult(m, Box::new(e.clone()), span));
            if out.len() >= cap {
                break 'mults;
            }
        }
    }
    'cmps: for (i, a) in exprs.iter().enumerate() {
        for b in exprs.iter().skip(i + 1) {
            for op in [CmpOp::In, CmpOp::NotIn, CmpOp::Eq] {
                out.push(Formula::compare(op, a.clone(), b.clone()));
                if out.len() >= cap {
                    break 'cmps;
                }
            }
        }
    }
    out.truncate(cap);
    out
}

/// Synthesis-level mutations at a formula site: replacing the whole
/// constraint by a template, or strengthening it by conjoining one.
///
/// `cap` bounds the number of templates *per site*.
pub fn synthesis_mutations(
    spec: &Spec,
    vocab: &Vocabulary,
    sites: &[NodeSite],
    cap_per_site: usize,
) -> Vec<Mutation> {
    let mut out = Vec::new();
    for site in sites {
        if !site.is_formula {
            continue;
        }
        let Some(NodeRepl::Formula(existing)) = node_at(spec, site.id) else {
            continue;
        };
        let templates = template_formulas(vocab, site, cap_per_site);
        for (i, t) in templates.iter().enumerate() {
            // Alternate replacement and conjunct-add so both shapes appear
            // within any cap.
            if i % 2 == 0 {
                out.push(Mutation {
                    site: site.id,
                    span: site.span,
                    repl: NodeRepl::Formula(t.clone()),
                    kind: MutationKind::TemplateReplace,
                    description: format!(
                        "replace constraint with `{}`",
                        mualloy_syntax::print_formula(t)
                    ),
                });
            } else {
                let strengthened = Formula::Binary(
                    BinFormOp::And,
                    Box::new(existing.clone()),
                    Box::new(t.clone()),
                    existing.meta(),
                );
                out.push(Mutation {
                    site: site.id,
                    span: site.span,
                    repl: NodeRepl::Formula(strengthened),
                    kind: MutationKind::TemplateConjoin,
                    description: format!("conjoin `{}`", mualloy_syntax::print_formula(t)),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::MutationEngine;
    use mualloy_syntax::{check_spec, parse_spec};

    fn spec() -> Spec {
        parse_spec(
            "sig A { f: set A } fact Inv { all x: A | x in x.f } \
             pred p[a: A] { some a.f }",
        )
        .unwrap()
    }

    #[test]
    fn templates_are_bounded_and_varied() {
        let s = spec();
        let vocab = Vocabulary::of(&s);
        let engine = MutationEngine::new(&s);
        let sites: Vec<_> = engine.sites().cloned().collect();
        let templates = template_formulas(&vocab, &sites[0], 40);
        assert!(!templates.is_empty() && templates.len() <= 40);
        assert!(templates
            .iter()
            .any(|f| matches!(f, Formula::Mult(_, _, _))));
        assert!(templates
            .iter()
            .any(|f| matches!(f, Formula::Compare(_, _, _, _))));
    }

    #[test]
    fn synthesis_mutations_apply_cleanly() {
        let s = spec();
        let vocab = Vocabulary::of(&s);
        let engine = MutationEngine::new(&s);
        let sites: Vec<_> = engine.sites().cloned().collect();
        let muts = synthesis_mutations(&s, &vocab, &sites, 12);
        assert!(!muts.is_empty());
        let mut replaced = 0;
        let mut conjoined = 0;
        for m in &muts {
            let mutant = engine
                .apply(m)
                .unwrap_or_else(|| panic!("{}", m.description));
            assert!(check_spec(&mutant).is_empty(), "{}", m.description);
            if m.description.starts_with("conjoin") {
                conjoined += 1;
            } else {
                replaced += 1;
            }
        }
        assert!(replaced > 0 && conjoined > 0);
    }

    #[test]
    fn conjoined_templates_can_restore_dropped_conjuncts() {
        // Start from a spec whose fact lost a conjunct; some synthesized
        // strengthening must be able to re-add an acyclicity-like guard.
        let weak = parse_spec("sig A { f: set A } fact Inv { some A }").unwrap();
        let vocab = Vocabulary::of(&weak);
        let engine = MutationEngine::new(&weak);
        let sites: Vec<_> = engine.sites().cloned().collect();
        let muts = synthesis_mutations(&weak, &vocab, &sites, 60);
        assert!(
            muts.iter().any(|m| m.description.contains("conjoin")),
            "strengthening templates must exist"
        );
    }
}
