//! Specification vocabulary: the raw material for mutations and synthesis.

use mualloy_syntax::Spec;

/// Names (and arities) available for identifier-level mutations and
/// expression synthesis.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Vocabulary {
    /// Signature names, in declaration order.
    pub sigs: Vec<String>,
    /// `(field name, arity)` pairs, in declaration order.
    pub fields: Vec<(String, usize)>,
}

impl Vocabulary {
    /// Extracts the vocabulary of a specification.
    pub fn of(spec: &Spec) -> Vocabulary {
        Vocabulary {
            sigs: spec.sigs.iter().map(|s| s.name.clone()).collect(),
            fields: spec
                .fields()
                .map(|(_, f)| (f.name.clone(), f.arity()))
                .collect(),
        }
    }

    /// Field names with the given arity.
    pub fn fields_of_arity(&self, arity: usize) -> impl Iterator<Item = &str> {
        self.fields
            .iter()
            .filter(move |(_, a)| *a == arity)
            .map(|(n, _)| n.as_str())
    }

    /// All binary field names (the most common mutation targets).
    pub fn binary_fields(&self) -> impl Iterator<Item = &str> {
        self.fields_of_arity(2)
    }

    /// Whether the name denotes a signature.
    pub fn is_sig(&self, name: &str) -> bool {
        self.sigs.iter().any(|s| s == name)
    }

    /// Whether the name denotes a field; returns its arity.
    pub fn field_arity(&self, name: &str) -> Option<usize> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, a)| *a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mualloy_syntax::parse_spec;

    #[test]
    fn extracts_names_and_arities() {
        let spec = parse_spec("sig A { f: set B, g: B -> lone B } sig B {} one sig S {}").unwrap();
        let v = Vocabulary::of(&spec);
        assert_eq!(v.sigs, vec!["A", "B", "S"]);
        assert_eq!(v.fields, vec![("f".to_string(), 2), ("g".to_string(), 3)]);
        assert!(v.is_sig("A"));
        assert!(!v.is_sig("f"));
        assert_eq!(v.field_arity("g"), Some(3));
        assert_eq!(v.field_arity("nope"), None);
        assert_eq!(v.binary_fields().collect::<Vec<_>>(), vec!["f"]);
    }
}
