//! Additional cross-feature tests for the relational layer: conditional
//! expressions, matrix algebra laws under symbolic entries, and translator
//! agreement with the evaluator on targeted formulas.

#![cfg(test)]

use crate::elaborate::elaborate_formula;
use crate::eval::Evaluator;
use crate::translate::Translator;
use mualloy_sat::{SolveResult, Solver};
use mualloy_syntax::ast::*;
use mualloy_syntax::{parse_formula, parse_spec};

/// Solves base && formula, returning the decoded instance if SAT.
fn solve(spec_src: &str, f: &Formula, scope: u32) -> Option<crate::instance::Instance> {
    let spec = parse_spec(spec_src).unwrap();
    let mut tr = Translator::new(&spec, scope).unwrap();
    let f = elaborate_formula(tr.spec(), f).unwrap();
    let fv = tr.compile_formula(&f).unwrap();
    let root = tr.circuit.and(tr.base_constraint(), fv);
    let mut solver = Solver::new();
    let inputs = tr.circuit.encode(root, &mut solver);
    match solver.solve() {
        SolveResult::Sat(m) => {
            let vals: Vec<bool> = inputs
                .iter()
                .map(|l| m[l.var().index()] == l.is_positive())
                .collect();
            Some(tr.decode(&vals))
        }
        SolveResult::Unsat => None,
    }
}

#[test]
fn if_then_else_expression_compiles_and_evaluates() {
    // (some A => A else B) is A when A is non-empty, B otherwise.
    let cond = parse_formula("some A").unwrap();
    let ite = Expr::IfThenElse(
        Box::new(cond),
        Box::new(Expr::ident("A")),
        Box::new(Expr::ident("B")),
        Span::synthetic().into(),
    );
    // Force "no A && some B": the conditional must then be B, so `some ite`.
    let f = Formula::binary(
        BinFormOp::And,
        parse_formula("no A && some B").unwrap(),
        Formula::Mult(
            MultOp::Some,
            Box::new(ite.clone()),
            Span::synthetic().into(),
        ),
    );
    let inst = solve("sig A {} sig B {}", &f, 2).expect("satisfiable");
    assert!(inst.sig_set("A").is_empty());
    assert!(!inst.sig_set("B").is_empty());
    // Ground evaluation agrees.
    let ev = Evaluator::new(&inst);
    let v = ev.expr(&ite).unwrap();
    assert_eq!(
        v.tuples().len(),
        inst.sig_set("B").len(),
        "ite must pick the else branch"
    );
}

#[test]
fn if_then_else_arity_mismatch_is_rejected() {
    let spec = parse_spec("sig A { f: set A }").unwrap();
    let mut tr = Translator::new(&spec, 2).unwrap();
    let bad = Formula::Mult(
        MultOp::Some,
        Box::new(Expr::IfThenElse(
            Box::new(parse_formula("some A").unwrap()),
            Box::new(Expr::ident("A")), // unary
            Box::new(Expr::ident("f")), // binary
            Span::synthetic().into(),
        )),
        Span::synthetic().into(),
    );
    assert!(tr.compile_formula(&bad).is_err());
}

#[test]
fn algebraic_laws_hold_on_extracted_instances() {
    // For any extracted instance: f & g == f - (f - g), ~~f == f,
    // A <: f == f when dom(f) in A.
    let src = "sig A { f: set A, g: set A }";
    let f = parse_formula("some f && some g").unwrap();
    if let Some(inst) = solve(src, &f, 3) {
        let ev = Evaluator::new(&inst);
        let lhs = ev
            .expr(&mualloy_syntax::parse_expr("f & g").unwrap())
            .unwrap();
        let rhs = ev
            .expr(&mualloy_syntax::parse_expr("f - (f - g)").unwrap())
            .unwrap();
        assert_eq!(lhs, rhs);
        let tt = ev
            .expr(&mualloy_syntax::parse_expr("~~f").unwrap())
            .unwrap();
        let ff = ev.expr(&mualloy_syntax::parse_expr("f").unwrap()).unwrap();
        assert_eq!(tt, ff);
        let dr = ev
            .expr(&mualloy_syntax::parse_expr("A <: f").unwrap())
            .unwrap();
        assert_eq!(dr, ff, "f's domain is within A by declaration");
    } else {
        panic!("expected a satisfying instance");
    }
}

#[test]
fn lone_sig_multiplicity_interacts_with_cardinality() {
    assert!(solve("lone sig L {}", &parse_formula("#L = 2").unwrap(), 3).is_none());
    assert!(solve("lone sig L {}", &parse_formula("#L = 1").unwrap(), 3).is_some());
    assert!(solve("some sig S {}", &parse_formula("no S").unwrap(), 3).is_none());
}

#[test]
fn card_comparisons_between_relations() {
    // #f <= #g enforced symbolically.
    let inst = solve(
        "sig A { f: set A, g: set A }",
        &parse_formula("#f < #g && some f").unwrap(),
        2,
    )
    .expect("satisfiable");
    assert!(inst.field_set("f").len() < inst.field_set("g").len());
}

#[test]
fn nested_quantifier_bounds_reference_outer_vars() {
    // `all x: A | all y: x.f | y in x.f` — the inner bound depends on x.
    let f = parse_formula("all x: A | all y: x.f | y in x.f").unwrap();
    assert!(solve("sig A { f: set A }", &f, 2).is_some());
    // And a falsifiable variant: some x with a successor outside x.f is
    // impossible (tautology check via negation being unsat).
    let neg = Formula::not(f);
    assert!(
        solve("sig A { f: set A }", &neg, 2).is_none(),
        "the tautology's negation must be unsatisfiable"
    );
}
