//! # mualloy-relational
//!
//! Bounded relational model finding for μAlloy — the equivalent of Kodkod
//! inside the real Alloy Analyzer, built from scratch on top of
//! [`mualloy_sat`]:
//!
//! - [`universe::Universe`]: atom-pool allocation from signature
//!   declarations under a uniform scope;
//! - [`matrix::Matrix`]: sparse boolean matrices implementing every Alloy
//!   relational operator symbolically;
//! - [`elaborate`]: predicate/function inlining with capture-free binder
//!   freshening;
//! - [`translate::Translator`]: compilation of declarations, facts and
//!   formulas into a circuit, plus model decoding into [`instance::Instance`];
//! - [`eval::Evaluator`]: the ground semantic reference used for
//!   cross-checking and AUnit test execution.
//!
//! # Example
//!
//! ```
//! use mualloy_relational::{Translator, elaborate::elaborate_formula};
//! use mualloy_sat::{Solver, SolveResult};
//! use mualloy_syntax::{parse_spec, parse_formula};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = parse_spec("sig Node { next: lone Node } fact { no n: Node | n in n.^next }")?;
//! let mut tr = Translator::new(&spec, 3)?;
//! let goal = elaborate_formula(tr.spec(), &parse_formula("some Node")?)?;
//! let goal = tr.compile_formula(&goal)?;
//! let root = tr.circuit.and(tr.base_constraint(), goal);
//! let mut solver = Solver::new();
//! let inputs = tr.circuit.encode(root, &mut solver);
//! let SolveResult::Sat(model) = solver.solve() else { panic!("acyclic list exists") };
//! let values: Vec<bool> = inputs.iter().map(|l| model[l.var().index()] == l.is_positive()).collect();
//! let instance = tr.decode(&values);
//! assert!(!instance.sig_set("Node").is_empty());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod elaborate;
pub mod error;
pub mod eval;
mod extra_tests;
pub mod instance;
pub mod matrix;
pub mod translate;
pub mod universe;

pub use elaborate::{assert_body, elaborate_formula, elaborate_spec, pred_as_existential};
pub use error::TranslateError;
pub use eval::{Evaluator, GroundSet};
pub use instance::Instance;
pub use matrix::{Matrix, Tuple};
pub use translate::Translator;
pub use universe::{Pool, Universe};

#[cfg(test)]
mod proptests {
    use super::*;
    use mualloy_sat::{SolveResult, Solver};
    use mualloy_syntax::parse_spec;
    use proptest::prelude::*;

    /// Random small spec sources exercising diverse constructs.
    fn spec_sources() -> Vec<&'static str> {
        vec![
            "sig A { f: set A }",
            "sig A { f: lone A } fact { no a: A | a in a.^f }",
            "sig A {} sig B { g: some A }",
            "abstract sig K {} sig R extends K {} sig C extends K {} one sig D { m: R -> lone C }",
            "sig N { next: lone N } fact { all n: N | n not in n.next }",
            "sig P { knows: set P } fact { all p: P | p not in p.knows knows = ~knows }",
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Every SAT-extracted instance satisfies all facts according to the
        /// independent ground evaluator.
        #[test]
        fn extracted_instances_satisfy_facts(idx in 0usize..6, scope in 1u32..4) {
            let src = spec_sources()[idx];
            let spec = parse_spec(src).unwrap();
            let tr = Translator::new(&spec, scope).unwrap();
            let root = tr.base_constraint();
            let mut solver = Solver::new();
            let inputs = tr.circuit.encode(root, &mut solver);
            if let SolveResult::Sat(m) = solver.solve() {
                let vals: Vec<bool> = inputs
                    .iter()
                    .map(|l| m[l.var().index()] == l.is_positive())
                    .collect();
                let inst = tr.decode(&vals);
                let ev = Evaluator::new(&inst);
                for fact in &tr.spec().facts.clone() {
                    for f in &fact.body {
                        prop_assert!(
                            ev.formula(f).unwrap(),
                            "fact violated in extracted instance of `{src}`:\n{inst}"
                        );
                    }
                }
            }
        }
    }
}
