//! Error type for translation and evaluation.

use std::error::Error;
use std::fmt;

/// An error raised while elaborating, translating or evaluating a
/// specification (arity mismatches, unknown names, unsupported constructs,
/// recursion, malformed hierarchies).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TranslateError {
    message: String,
}

impl TranslateError {
    /// Creates a new error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        TranslateError {
            message: message.into(),
        }
    }

    /// Human-readable description.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "translation error: {}", self.message)
    }
}

impl Error for TranslateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_message() {
        let e = TranslateError::new("arity mismatch");
        assert!(e.to_string().contains("arity mismatch"));
    }
}
