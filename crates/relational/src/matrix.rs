//! Sparse boolean matrices: the symbolic value of a relational expression.
//!
//! A [`Matrix`] maps atom tuples to circuit references; absent tuples are
//! false. All Alloy relational operators are implemented over this
//! representation, mirroring Kodkod's translation.

use mualloy_sat::{BoolRef, Circuit};
use std::collections::BTreeMap;

use crate::error::TranslateError;

/// An atom tuple (global atom indices).
pub type Tuple = Vec<u32>;

/// A sparse boolean matrix of a fixed arity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matrix {
    arity: usize,
    entries: BTreeMap<Tuple, BoolRef>,
}

impl Matrix {
    /// Creates an empty matrix of the given arity.
    ///
    /// # Panics
    ///
    /// Panics if `arity` is 0.
    pub fn empty(arity: usize) -> Matrix {
        assert!(arity > 0, "relations have positive arity");
        Matrix {
            arity,
            entries: BTreeMap::new(),
        }
    }

    /// The matrix arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of (potentially-true) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the matrix has no potentially-true entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sets the entry for `tuple` (or-ing with any existing value).
    pub fn set(&mut self, circuit: &mut Circuit, tuple: Tuple, value: BoolRef) {
        debug_assert_eq!(tuple.len(), self.arity);
        if value == Circuit::FALSE {
            return;
        }
        match self.entries.get(&tuple).copied() {
            None => {
                self.entries.insert(tuple, value);
            }
            Some(old) => {
                let merged = circuit.or(old, value);
                self.entries.insert(tuple, merged);
            }
        }
    }

    /// The entry for `tuple`, or constant false if absent.
    pub fn get(&self, tuple: &[u32]) -> BoolRef {
        self.entries.get(tuple).copied().unwrap_or(Circuit::FALSE)
    }

    /// Iterates over entries in tuple order.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, BoolRef)> {
        self.entries.iter().map(|(t, &v)| (t, v))
    }

    /// All entry values (for multiplicity/cardinality gates).
    pub fn values(&self) -> Vec<BoolRef> {
        self.entries.values().copied().collect()
    }

    /// Union of two same-arity matrices.
    ///
    /// # Errors
    ///
    /// Fails on arity mismatch.
    pub fn union(&self, other: &Matrix, circuit: &mut Circuit) -> Result<Matrix, TranslateError> {
        self.require_same_arity(other, "+")?;
        let mut out = self.clone();
        for (t, v) in other.iter() {
            out.set(circuit, t.clone(), v);
        }
        Ok(out)
    }

    /// Difference `self - other`.
    ///
    /// # Errors
    ///
    /// Fails on arity mismatch.
    pub fn difference(
        &self,
        other: &Matrix,
        circuit: &mut Circuit,
    ) -> Result<Matrix, TranslateError> {
        self.require_same_arity(other, "-")?;
        let mut out = Matrix::empty(self.arity);
        for (t, v) in self.iter() {
            let o = other.get(t);
            let kept = circuit.and(v, !o);
            out.set(circuit, t.clone(), kept);
        }
        Ok(out)
    }

    /// Intersection.
    ///
    /// # Errors
    ///
    /// Fails on arity mismatch.
    pub fn intersect(
        &self,
        other: &Matrix,
        circuit: &mut Circuit,
    ) -> Result<Matrix, TranslateError> {
        self.require_same_arity(other, "&")?;
        let mut out = Matrix::empty(self.arity);
        for (t, v) in self.iter() {
            let o = other.get(t);
            let both = circuit.and(v, o);
            out.set(circuit, t.clone(), both);
        }
        Ok(out)
    }

    /// Relational join `self . other`.
    ///
    /// # Errors
    ///
    /// Fails if the result arity would be 0 (joining two unary relations is
    /// a boolean, which μAlloy does not allow in expression position).
    pub fn join(&self, other: &Matrix, circuit: &mut Circuit) -> Result<Matrix, TranslateError> {
        let result_arity = self.arity + other.arity;
        if result_arity < 3 {
            return Err(TranslateError::new(
                "join of two unary relations has arity 0",
            ));
        }
        let mut out = Matrix::empty(result_arity - 2);
        // Group right tuples by first atom for the merge.
        let mut by_first: BTreeMap<u32, Vec<(&Tuple, BoolRef)>> = BTreeMap::new();
        for (t, v) in other.iter() {
            by_first.entry(t[0]).or_default().push((t, v));
        }
        for (lt, lv) in self.iter() {
            let pivot = lt[self.arity - 1];
            if let Some(rights) = by_first.get(&pivot) {
                for (rt, rv) in rights {
                    let both = circuit.and(lv, *rv);
                    if both == Circuit::FALSE {
                        continue;
                    }
                    let mut tuple = Vec::with_capacity(result_arity - 2);
                    tuple.extend_from_slice(&lt[..self.arity - 1]);
                    tuple.extend_from_slice(&rt[1..]);
                    out.set(circuit, tuple, both);
                }
            }
        }
        Ok(out)
    }

    /// Cartesian product `self -> other`.
    pub fn product(&self, other: &Matrix, circuit: &mut Circuit) -> Matrix {
        let mut out = Matrix::empty(self.arity + other.arity);
        for (lt, lv) in self.iter() {
            for (rt, rv) in other.iter() {
                let both = circuit.and(lv, rv);
                if both == Circuit::FALSE {
                    continue;
                }
                let mut tuple = Vec::with_capacity(self.arity + other.arity);
                tuple.extend_from_slice(lt);
                tuple.extend_from_slice(rt);
                out.set(circuit, tuple, both);
            }
        }
        out
    }

    /// Transpose (binary relations only).
    ///
    /// # Errors
    ///
    /// Fails unless the matrix is binary.
    pub fn transpose(&self) -> Result<Matrix, TranslateError> {
        if self.arity != 2 {
            return Err(TranslateError::new(format!(
                "transpose requires a binary relation, got arity {}",
                self.arity
            )));
        }
        let mut out = Matrix::empty(2);
        for (t, v) in self.iter() {
            out.entries.insert(vec![t[1], t[0]], v);
        }
        Ok(out)
    }

    /// Transitive closure via iterative squaring (binary relations only).
    ///
    /// # Errors
    ///
    /// Fails unless the matrix is binary.
    pub fn closure(&self, circuit: &mut Circuit) -> Result<Matrix, TranslateError> {
        if self.arity != 2 {
            return Err(TranslateError::new(format!(
                "closure requires a binary relation, got arity {}",
                self.arity
            )));
        }
        // Upper bound on path length is the number of distinct atoms
        // mentioned; iterate squaring log2 of that.
        let mut atoms = std::collections::BTreeSet::new();
        for (t, _) in self.iter() {
            atoms.insert(t[0]);
            atoms.insert(t[1]);
        }
        let n = atoms.len().max(1);
        let mut acc = self.clone();
        let mut hops = 1usize;
        while hops < n {
            let squared = acc.join(&acc, circuit)?;
            acc = acc.union(&squared, circuit)?;
            hops *= 2;
        }
        Ok(acc)
    }

    /// Reflexive-transitive closure over the given identity matrix.
    ///
    /// # Errors
    ///
    /// Fails unless the matrix is binary.
    pub fn reflexive_closure(
        &self,
        iden: &Matrix,
        circuit: &mut Circuit,
    ) -> Result<Matrix, TranslateError> {
        let closed = self.closure(circuit)?;
        closed.union(iden, circuit)
    }

    /// Relational override `self ++ other` (arity ≥ 2: tuples of `self`
    /// whose first atom appears in `other`'s domain are replaced).
    ///
    /// For unary matrices the override degenerates to union, as in Alloy.
    ///
    /// # Errors
    ///
    /// Fails on arity mismatch.
    pub fn override_with(
        &self,
        other: &Matrix,
        circuit: &mut Circuit,
    ) -> Result<Matrix, TranslateError> {
        self.require_same_arity(other, "++")?;
        if self.arity == 1 {
            return self.union(other, circuit);
        }
        // dom(other): first-column presence.
        let mut dom: BTreeMap<u32, Vec<BoolRef>> = BTreeMap::new();
        for (t, v) in other.iter() {
            dom.entry(t[0]).or_default().push(v);
        }
        let dom: BTreeMap<u32, BoolRef> = dom
            .into_iter()
            .map(|(a, vs)| (a, circuit.or_many(vs)))
            .collect();
        let mut out = Matrix::empty(self.arity);
        for (t, v) in self.iter() {
            let in_dom = dom.get(&t[0]).copied().unwrap_or(Circuit::FALSE);
            let kept = circuit.and(v, !in_dom);
            out.set(circuit, t.clone(), kept);
        }
        for (t, v) in other.iter() {
            out.set(circuit, t.clone(), v);
        }
        Ok(out)
    }

    /// Domain restriction `dom <: self` where `dom` is unary.
    ///
    /// # Errors
    ///
    /// Fails if `dom` is not unary.
    pub fn domain_restrict(
        &self,
        dom: &Matrix,
        circuit: &mut Circuit,
    ) -> Result<Matrix, TranslateError> {
        if dom.arity != 1 {
            return Err(TranslateError::new("`<:` requires a unary left operand"));
        }
        let mut out = Matrix::empty(self.arity);
        for (t, v) in self.iter() {
            let d = dom.get(&t[..1]);
            let kept = circuit.and(v, d);
            out.set(circuit, t.clone(), kept);
        }
        Ok(out)
    }

    /// Range restriction `self :> ran` where `ran` is unary.
    ///
    /// # Errors
    ///
    /// Fails if `ran` is not unary.
    pub fn range_restrict(
        &self,
        ran: &Matrix,
        circuit: &mut Circuit,
    ) -> Result<Matrix, TranslateError> {
        if ran.arity != 1 {
            return Err(TranslateError::new("`:>` requires a unary right operand"));
        }
        let mut out = Matrix::empty(self.arity);
        for (t, v) in self.iter() {
            let r = ran.get(&t[self.arity - 1..]);
            let kept = circuit.and(v, r);
            out.set(circuit, t.clone(), kept);
        }
        Ok(out)
    }

    /// The subset formula `self in other`.
    ///
    /// # Errors
    ///
    /// Fails on arity mismatch.
    pub fn subset_of(
        &self,
        other: &Matrix,
        circuit: &mut Circuit,
    ) -> Result<BoolRef, TranslateError> {
        self.require_same_arity(other, "in")?;
        let mut conjuncts = Vec::with_capacity(self.len());
        for (t, v) in self.iter() {
            let o = other.get(t);
            conjuncts.push(circuit.implies(v, o));
        }
        Ok(circuit.and_many(conjuncts))
    }

    fn require_same_arity(&self, other: &Matrix, op: &str) -> Result<(), TranslateError> {
        if self.arity != other.arity {
            Err(TranslateError::new(format!(
                "arity mismatch for `{op}`: {} vs {}",
                self.arity, other.arity
            )))
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constant_matrix(arity: usize, tuples: &[&[u32]]) -> Matrix {
        let mut m = Matrix::empty(arity);
        for t in tuples {
            m.entries.insert(t.to_vec(), Circuit::TRUE);
        }
        m
    }

    #[test]
    fn union_and_intersect() {
        let mut c = Circuit::new();
        let a = constant_matrix(1, &[&[0], &[1]]);
        let b = constant_matrix(1, &[&[1], &[2]]);
        let u = a.union(&b, &mut c).unwrap();
        assert_eq!(u.len(), 3);
        let i = a.intersect(&b, &mut c).unwrap();
        assert_eq!(i.get(&[1]), Circuit::TRUE);
        assert_eq!(i.get(&[0]), Circuit::FALSE);
        assert_eq!(i.get(&[2]), Circuit::FALSE);
    }

    #[test]
    fn difference_removes_overlap() {
        let mut c = Circuit::new();
        let a = constant_matrix(1, &[&[0], &[1]]);
        let b = constant_matrix(1, &[&[1]]);
        let d = a.difference(&b, &mut c).unwrap();
        assert_eq!(d.get(&[0]), Circuit::TRUE);
        assert_eq!(d.get(&[1]), Circuit::FALSE);
    }

    #[test]
    fn join_matches_composition() {
        let mut c = Circuit::new();
        // r = {(0,1),(1,2)}; r.r = {(0,2)}
        let r = constant_matrix(2, &[&[0, 1], &[1, 2]]);
        let rr = r.join(&r, &mut c).unwrap();
        assert_eq!(rr.get(&[0, 2]), Circuit::TRUE);
        assert_eq!(rr.get(&[0, 1]), Circuit::FALSE);
        // unary.binary
        let s = constant_matrix(1, &[&[0]]);
        let sr = s.join(&r, &mut c).unwrap();
        assert_eq!(sr.arity(), 1);
        assert_eq!(sr.get(&[1]), Circuit::TRUE);
    }

    #[test]
    fn join_arity_zero_is_error() {
        let mut c = Circuit::new();
        let a = constant_matrix(1, &[&[0]]);
        assert!(a.join(&a, &mut c).is_err());
    }

    #[test]
    fn product_concatenates() {
        let mut c = Circuit::new();
        let a = constant_matrix(1, &[&[0]]);
        let b = constant_matrix(1, &[&[1], &[2]]);
        let p = a.product(&b, &mut c);
        assert_eq!(p.arity(), 2);
        assert_eq!(p.len(), 2);
        assert_eq!(p.get(&[0, 2]), Circuit::TRUE);
    }

    #[test]
    fn transpose_swaps_columns() {
        let r = constant_matrix(2, &[&[0, 1]]);
        let t = r.transpose().unwrap();
        assert_eq!(t.get(&[1, 0]), Circuit::TRUE);
        assert_eq!(t.get(&[0, 1]), Circuit::FALSE);
        assert!(constant_matrix(1, &[&[0]]).transpose().is_err());
    }

    #[test]
    fn closure_reaches_all_path_lengths() {
        let mut c = Circuit::new();
        // Chain 0->1->2->3.
        let r = constant_matrix(2, &[&[0, 1], &[1, 2], &[2, 3]]);
        let cl = r.closure(&mut c).unwrap();
        for (a, b) in [(0, 1), (0, 2), (0, 3), (1, 3)] {
            assert_eq!(cl.get(&[a, b]), Circuit::TRUE, "({a},{b})");
        }
        assert_eq!(cl.get(&[3, 0]), Circuit::FALSE);
    }

    #[test]
    fn override_replaces_mapped_domain() {
        let mut c = Circuit::new();
        let p = constant_matrix(2, &[&[0, 1], &[2, 3]]);
        let q = constant_matrix(2, &[&[0, 5]]);
        let o = p.override_with(&q, &mut c).unwrap();
        assert_eq!(o.get(&[0, 5]), Circuit::TRUE);
        assert_eq!(o.get(&[0, 1]), Circuit::FALSE);
        assert_eq!(o.get(&[2, 3]), Circuit::TRUE);
    }

    #[test]
    fn restrictions_filter_rows() {
        let mut c = Circuit::new();
        let r = constant_matrix(2, &[&[0, 1], &[2, 3]]);
        let dom = constant_matrix(1, &[&[0]]);
        let ran = constant_matrix(1, &[&[3]]);
        let dr = r.domain_restrict(&dom, &mut c).unwrap();
        assert_eq!(dr.get(&[0, 1]), Circuit::TRUE);
        assert_eq!(dr.get(&[2, 3]), Circuit::FALSE);
        let rr = r.range_restrict(&ran, &mut c).unwrap();
        assert_eq!(rr.get(&[2, 3]), Circuit::TRUE);
        assert_eq!(rr.get(&[0, 1]), Circuit::FALSE);
    }

    #[test]
    fn subset_constant_cases() {
        let mut c = Circuit::new();
        let a = constant_matrix(1, &[&[0]]);
        let b = constant_matrix(1, &[&[0], &[1]]);
        assert_eq!(a.subset_of(&b, &mut c).unwrap(), Circuit::TRUE);
        assert_eq!(b.subset_of(&a, &mut c).unwrap(), Circuit::FALSE);
    }

    #[test]
    fn symbolic_entries_survive_ops() {
        let mut c = Circuit::new();
        let x = c.input();
        let mut a = Matrix::empty(1);
        a.set(&mut c, vec![0], x);
        let b = constant_matrix(1, &[&[0]]);
        let d = b.difference(&a, &mut c).unwrap();
        // d[0] = !x (symbolic).
        assert_eq!(d.get(&[0]), !x);
    }

    #[test]
    fn set_ors_duplicate_tuples() {
        let mut c = Circuit::new();
        let x = c.input();
        let y = c.input();
        let mut m = Matrix::empty(1);
        m.set(&mut c, vec![0], x);
        m.set(&mut c, vec![0], y);
        let v = m.get(&[0]);
        // v == x | y: check truth table.
        for xs in [false, true] {
            for ys in [false, true] {
                assert_eq!(c.eval(v, &[xs, ys]), xs || ys);
            }
        }
    }
}
