//! Ground evaluation of elaborated expressions and formulas against a
//! concrete [`Instance`].
//!
//! The evaluator is the semantic reference for the translator: a property
//! test asserts that every instance extracted from a SAT model satisfies the
//! facts according to this evaluator. It also powers AUnit-style test
//! execution and the REP metric's result comparison.

use mualloy_syntax::ast::*;
use std::collections::{BTreeMap, BTreeSet};

use crate::error::TranslateError;
use crate::instance::Instance;

/// A concrete relation value: a set of same-arity tuples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroundSet {
    arity: usize,
    tuples: BTreeSet<Vec<u32>>,
}

impl GroundSet {
    /// Creates an empty ground set of the given arity.
    ///
    /// # Panics
    ///
    /// Panics if `arity` is 0.
    pub fn empty(arity: usize) -> GroundSet {
        assert!(arity > 0);
        GroundSet {
            arity,
            tuples: BTreeSet::new(),
        }
    }

    /// Creates a unary ground set from atoms.
    pub fn unary(atoms: impl IntoIterator<Item = u32>) -> GroundSet {
        GroundSet {
            arity: 1,
            tuples: atoms.into_iter().map(|a| vec![a]).collect(),
        }
    }

    /// Creates a ground set from tuples.
    ///
    /// # Errors
    ///
    /// Fails if tuples have inconsistent arities.
    pub fn from_tuples(
        arity: usize,
        tuples: impl IntoIterator<Item = Vec<u32>>,
    ) -> Result<GroundSet, TranslateError> {
        let tuples: BTreeSet<Vec<u32>> = tuples.into_iter().collect();
        if tuples.iter().any(|t| t.len() != arity) {
            return Err(TranslateError::new("inconsistent tuple arity"));
        }
        Ok(GroundSet { arity, tuples })
    }

    /// The arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The underlying tuples.
    pub fn tuples(&self) -> &BTreeSet<Vec<u32>> {
        &self.tuples
    }
}

/// Evaluation context: the instance plus bound-variable values.
#[derive(Debug, Clone)]
pub struct Evaluator<'a> {
    instance: &'a Instance,
}

type Env = BTreeMap<String, GroundSet>;

impl<'a> Evaluator<'a> {
    /// Creates an evaluator over the given instance.
    pub fn new(instance: &'a Instance) -> Evaluator<'a> {
        Evaluator { instance }
    }

    /// Evaluates a closed, elaborated formula.
    ///
    /// # Errors
    ///
    /// Fails on unknown names, arity mismatches, or unexpanded calls.
    pub fn formula(&self, f: &Formula) -> Result<bool, TranslateError> {
        self.eval_formula(f, &Env::new())
    }

    /// Evaluates a closed, elaborated expression.
    ///
    /// # Errors
    ///
    /// Same as [`Evaluator::formula`].
    pub fn expr(&self, e: &Expr) -> Result<GroundSet, TranslateError> {
        self.eval_expr(e, &Env::new())
    }

    fn eval_formula(&self, f: &Formula, env: &Env) -> Result<bool, TranslateError> {
        Ok(match f {
            Formula::Compare(op, l, r, _) => {
                let lv = self.eval_expr(l, env)?;
                let rv = self.eval_expr(r, env)?;
                if lv.arity != rv.arity {
                    return Err(TranslateError::new(format!(
                        "arity mismatch in comparison: {} vs {}",
                        lv.arity, rv.arity
                    )));
                }
                match op {
                    CmpOp::In => lv.tuples.is_subset(&rv.tuples),
                    CmpOp::NotIn => !lv.tuples.is_subset(&rv.tuples),
                    CmpOp::Eq => lv.tuples == rv.tuples,
                    CmpOp::Neq => lv.tuples != rv.tuples,
                }
            }
            Formula::IntCompare(op, l, r, _) => {
                let lv = self.eval_int(l, env)?;
                let rv = self.eval_int(r, env)?;
                match op {
                    IntCmpOp::Eq => lv == rv,
                    IntCmpOp::Neq => lv != rv,
                    IntCmpOp::Lt => lv < rv,
                    IntCmpOp::Gt => lv > rv,
                    IntCmpOp::Le => lv <= rv,
                    IntCmpOp::Ge => lv >= rv,
                }
            }
            Formula::Mult(op, e, _) => {
                let v = self.eval_expr(e, env)?;
                match op {
                    MultOp::Some => !v.is_empty(),
                    MultOp::No => v.is_empty(),
                    MultOp::Lone => v.len() <= 1,
                    MultOp::One => v.len() == 1,
                }
            }
            Formula::Not(inner, _) => !self.eval_formula(inner, env)?,
            Formula::Binary(op, l, r, _) => {
                let lv = self.eval_formula(l, env)?;
                match op {
                    BinFormOp::And => lv && self.eval_formula(r, env)?,
                    BinFormOp::Or => lv || self.eval_formula(r, env)?,
                    BinFormOp::Implies => !lv || self.eval_formula(r, env)?,
                    BinFormOp::Iff => lv == self.eval_formula(r, env)?,
                }
            }
            Formula::Quant(q, decls, body, _) => {
                let mut satisfied = 0usize;
                let mut total = 0usize;
                self.quant_combinations(decls, env, &mut |env2| {
                    total += 1;
                    if self.eval_formula(body, env2)? {
                        satisfied += 1;
                    }
                    Ok(())
                })?;
                match q {
                    Quant::All => satisfied == total,
                    Quant::Some => satisfied > 0,
                    Quant::No => satisfied == 0,
                    Quant::Lone => satisfied <= 1,
                    Quant::One => satisfied == 1,
                }
            }
            Formula::Let(name, e, body, _) => {
                let v = self.eval_expr(e, env)?;
                let mut env2 = env.clone();
                env2.insert(name.clone(), v);
                self.eval_formula(body, &env2)?
            }
            Formula::PredCall(name, _, _) => {
                return Err(TranslateError::new(format!(
                    "unexpanded predicate call `{name}` in ground evaluation"
                )))
            }
        })
    }

    fn quant_combinations(
        &self,
        decls: &[VarDecl],
        env: &Env,
        f: &mut impl FnMut(&Env) -> Result<(), TranslateError>,
    ) -> Result<(), TranslateError> {
        match decls.split_first() {
            None => f(env),
            Some((d, rest)) => {
                let bound = self.eval_expr(&d.bound, env)?;
                if bound.arity != 1 {
                    return Err(TranslateError::new(format!(
                        "quantifier bound for `{}` must be unary",
                        d.name
                    )));
                }
                for t in &bound.tuples {
                    let mut env2 = env.clone();
                    env2.insert(d.name.clone(), GroundSet::unary([t[0]]));
                    self.quant_combinations(rest, &env2, f)?;
                }
                Ok(())
            }
        }
    }

    fn eval_int(&self, i: &IntExpr, env: &Env) -> Result<i64, TranslateError> {
        Ok(match i {
            IntExpr::Card(e, _) => self.eval_expr(e, env)?.len() as i64,
            IntExpr::Lit(n, _) => *n,
        })
    }

    fn eval_expr(&self, e: &Expr, env: &Env) -> Result<GroundSet, TranslateError> {
        Ok(match e {
            Expr::Ident(name, _) => {
                if let Some(v) = env.get(name) {
                    v.clone()
                } else if self.instance.has_sig(name) {
                    GroundSet::unary(self.instance.sig_set(name))
                } else if self.instance.has_field(name) {
                    let tuples = self.instance.field_set(name);
                    let arity = tuples.iter().next().map(|t| t.len());
                    match arity {
                        Some(a) => GroundSet { arity: a, tuples },
                        // An empty field: arity is unknown from the instance
                        // alone; treat as empty binary, the most common case.
                        None => GroundSet::empty(2),
                    }
                } else {
                    return Err(TranslateError::new(format!("unknown name `{name}`")));
                }
            }
            Expr::Univ(_) => GroundSet::unary(self.instance.universe_atoms()),
            Expr::Iden(_) => GroundSet {
                arity: 2,
                tuples: self
                    .instance
                    .universe_atoms()
                    .into_iter()
                    .map(|a| vec![a, a])
                    .collect(),
            },
            Expr::None(_) => GroundSet::empty(1),
            Expr::Unary(op, inner, _) => {
                let v = self.eval_expr(inner, env)?;
                match op {
                    UnExprOp::Transpose => {
                        if v.arity != 2 {
                            return Err(TranslateError::new("transpose requires binary"));
                        }
                        GroundSet {
                            arity: 2,
                            tuples: v.tuples.iter().map(|t| vec![t[1], t[0]]).collect(),
                        }
                    }
                    UnExprOp::Closure => {
                        if v.arity != 2 {
                            return Err(TranslateError::new("closure requires binary"));
                        }
                        ground_closure(&v)
                    }
                    UnExprOp::ReflClosure => {
                        if v.arity != 2 {
                            return Err(TranslateError::new("closure requires binary"));
                        }
                        let mut c = ground_closure(&v);
                        for a in self.instance.universe_atoms() {
                            c.tuples.insert(vec![a, a]);
                        }
                        c
                    }
                }
            }
            Expr::Binary(op, l, r, _) => {
                let lv = self.eval_expr(l, env)?;
                let rv = self.eval_expr(r, env)?;
                match op {
                    BinExprOp::Union => {
                        require_same(&lv, &rv, "+")?;
                        GroundSet {
                            arity: lv.arity,
                            tuples: lv.tuples.union(&rv.tuples).cloned().collect(),
                        }
                    }
                    BinExprOp::Diff => {
                        require_same(&lv, &rv, "-")?;
                        GroundSet {
                            arity: lv.arity,
                            tuples: lv.tuples.difference(&rv.tuples).cloned().collect(),
                        }
                    }
                    BinExprOp::Intersect => {
                        require_same(&lv, &rv, "&")?;
                        GroundSet {
                            arity: lv.arity,
                            tuples: lv.tuples.intersection(&rv.tuples).cloned().collect(),
                        }
                    }
                    BinExprOp::Join => {
                        let arity = lv.arity + rv.arity;
                        if arity < 3 {
                            return Err(TranslateError::new("join of two unary relations"));
                        }
                        let mut out = BTreeSet::new();
                        for lt in &lv.tuples {
                            for rt in &rv.tuples {
                                if lt[lv.arity - 1] == rt[0] {
                                    let mut t = lt[..lv.arity - 1].to_vec();
                                    t.extend_from_slice(&rt[1..]);
                                    out.insert(t);
                                }
                            }
                        }
                        GroundSet {
                            arity: arity - 2,
                            tuples: out,
                        }
                    }
                    BinExprOp::Product => {
                        let mut out = BTreeSet::new();
                        for lt in &lv.tuples {
                            for rt in &rv.tuples {
                                let mut t = lt.clone();
                                t.extend_from_slice(rt);
                                out.insert(t);
                            }
                        }
                        GroundSet {
                            arity: lv.arity + rv.arity,
                            tuples: out,
                        }
                    }
                    BinExprOp::Override => {
                        require_same(&lv, &rv, "++")?;
                        if lv.arity == 1 {
                            GroundSet {
                                arity: 1,
                                tuples: lv.tuples.union(&rv.tuples).cloned().collect(),
                            }
                        } else {
                            let dom: BTreeSet<u32> = rv.tuples.iter().map(|t| t[0]).collect();
                            let mut out: BTreeSet<Vec<u32>> = lv
                                .tuples
                                .iter()
                                .filter(|t| !dom.contains(&t[0]))
                                .cloned()
                                .collect();
                            out.extend(rv.tuples.iter().cloned());
                            GroundSet {
                                arity: lv.arity,
                                tuples: out,
                            }
                        }
                    }
                    BinExprOp::DomRestrict => {
                        if lv.arity != 1 {
                            return Err(TranslateError::new("`<:` requires unary left operand"));
                        }
                        let dom: BTreeSet<u32> = lv.tuples.iter().map(|t| t[0]).collect();
                        GroundSet {
                            arity: rv.arity,
                            tuples: rv
                                .tuples
                                .iter()
                                .filter(|t| dom.contains(&t[0]))
                                .cloned()
                                .collect(),
                        }
                    }
                    BinExprOp::RanRestrict => {
                        if rv.arity != 1 {
                            return Err(TranslateError::new("`:>` requires unary right operand"));
                        }
                        let ran: BTreeSet<u32> = rv.tuples.iter().map(|t| t[0]).collect();
                        GroundSet {
                            arity: lv.arity,
                            tuples: lv
                                .tuples
                                .iter()
                                .filter(|t| ran.contains(&t[t.len() - 1]))
                                .cloned()
                                .collect(),
                        }
                    }
                }
            }
            Expr::Comprehension(decls, body, _) => {
                let mut out = BTreeSet::new();
                self.comp_combinations(decls, env, &mut Vec::new(), body, &mut out)?;
                GroundSet {
                    arity: decls.len().max(1),
                    tuples: out,
                }
            }
            Expr::IfThenElse(c, t, f, _) => {
                if self.eval_formula(c, env)? {
                    self.eval_expr(t, env)?
                } else {
                    self.eval_expr(f, env)?
                }
            }
            Expr::FunCall(name, _, _) => {
                return Err(TranslateError::new(format!(
                    "unexpanded application `{name}[..]` in ground evaluation"
                )))
            }
        })
    }

    fn comp_combinations(
        &self,
        decls: &[VarDecl],
        env: &Env,
        tuple: &mut Vec<u32>,
        body: &Formula,
        out: &mut BTreeSet<Vec<u32>>,
    ) -> Result<(), TranslateError> {
        match decls.split_first() {
            None => {
                if self.eval_formula(body, env)? {
                    out.insert(tuple.clone());
                }
                Ok(())
            }
            Some((d, rest)) => {
                let bound = self.eval_expr(&d.bound, env)?;
                if bound.arity != 1 {
                    return Err(TranslateError::new("comprehension bound must be unary"));
                }
                for t in &bound.tuples {
                    let mut env2 = env.clone();
                    env2.insert(d.name.clone(), GroundSet::unary([t[0]]));
                    tuple.push(t[0]);
                    self.comp_combinations(rest, &env2, tuple, body, out)?;
                    tuple.pop();
                }
                Ok(())
            }
        }
    }
}

fn require_same(a: &GroundSet, b: &GroundSet, op: &str) -> Result<(), TranslateError> {
    if a.arity != b.arity {
        Err(TranslateError::new(format!(
            "arity mismatch for `{op}`: {} vs {}",
            a.arity, b.arity
        )))
    } else {
        Ok(())
    }
}

fn ground_closure(r: &GroundSet) -> GroundSet {
    let mut tuples = r.tuples.clone();
    loop {
        let mut added = Vec::new();
        for a in &tuples {
            for b in &tuples {
                if a[1] == b[0] {
                    let t = vec![a[0], b[1]];
                    if !tuples.contains(&t) {
                        added.push(t);
                    }
                }
            }
        }
        if added.is_empty() {
            break;
        }
        tuples.extend(added);
    }
    GroundSet { arity: 2, tuples }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mualloy_syntax::{parse_expr, parse_formula};

    fn instance() -> Instance {
        let mut inst = Instance::new((0..4).map(|i| format!("N${i}")).collect());
        inst.set_sig("N", [0u32, 1, 2].into_iter().collect());
        inst.set_field("next", [vec![0u32, 1], vec![1, 2]].into_iter().collect());
        inst
    }

    fn eval_f(src: &str) -> bool {
        let inst = instance();
        Evaluator::new(&inst)
            .formula(&parse_formula(src).unwrap())
            .unwrap()
    }

    fn eval_e(src: &str) -> GroundSet {
        let inst = instance();
        Evaluator::new(&inst)
            .expr(&parse_expr(src).unwrap())
            .unwrap()
    }

    #[test]
    fn sig_and_field_lookup() {
        assert_eq!(eval_e("N").len(), 3);
        assert_eq!(eval_e("next").len(), 2);
        assert_eq!(eval_e("univ").len(), 3);
        assert!(eval_e("none").is_empty());
    }

    #[test]
    fn joins_and_closures() {
        // 0.next = {1}
        let v = eval_e("N.next");
        assert_eq!(v.len(), 2); // {1, 2}
        let cl = eval_e("^next");
        assert_eq!(cl.len(), 3); // (0,1),(1,2),(0,2)
        let rcl = eval_e("*next");
        assert_eq!(rcl.len(), 6); // + identity over 3 atoms
        let t = eval_e("~next");
        assert!(t.tuples().contains(&vec![1, 0]));
    }

    #[test]
    fn formula_basics() {
        assert!(eval_f("some N"));
        assert!(!eval_f("no N"));
        assert!(eval_f("#N = 3"));
        assert!(eval_f("#N.next = 2"));
        assert!(eval_f("all n: N | lone n.next"));
        assert!(eval_f("some n: N | no n.next"));
        assert!(!eval_f("some n: N | n in n.^next"));
        assert!(eval_f("no n: N | n in n.^next"));
    }

    #[test]
    fn quant_counting_forms() {
        assert!(eval_f("one n: N | no n.next")); // only node 2
        assert!(eval_f("lone n: N | no n.next"));
        assert!(!eval_f("one n: N | some n.next")); // nodes 0 and 1
    }

    #[test]
    fn let_and_comprehension() {
        assert!(eval_f("let k = N.next | some k"));
        assert_eq!(eval_e("{ n: N | some n.next }").len(), 2);
    }

    #[test]
    fn override_and_restrictions() {
        let v = eval_e("next ++ (N.next -> N)");
        assert!(!v.is_empty());
        let dr = eval_e("(N - N.next) <: next");
        assert_eq!(dr.len(), 1); // only (0,1): 0 is the unique non-successor
        let rr = eval_e("next :> (N - N.next)");
        assert!(rr.is_empty()); // range of next is all successors
    }

    #[test]
    fn errors_on_unknowns_and_arity() {
        let inst = instance();
        let ev = Evaluator::new(&inst);
        assert!(ev.formula(&parse_formula("some Ghost").unwrap()).is_err());
        assert!(ev.expr(&parse_expr("~N").unwrap()).is_err());
        assert!(ev.formula(&parse_formula("N in next").unwrap()).is_err());
    }

    #[test]
    fn empty_field_defaults_to_binary() {
        let mut inst = Instance::new(vec!["A$0".into()]);
        inst.set_sig("A", [0u32].into_iter().collect());
        inst.set_field("f", BTreeSet::new());
        let ev = Evaluator::new(&inst);
        assert!(ev.formula(&parse_formula("no f").unwrap()).unwrap());
    }
}
