//! Concrete instances (models / counterexamples) of a specification.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A concrete atom tuple.
pub type ConcreteTuple = Vec<u32>;

/// A concrete valuation of every signature and field of a specification,
/// as extracted from a SAT model or constructed by hand (for AUnit tests).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Instance {
    sigs: BTreeMap<String, BTreeSet<u32>>,
    fields: BTreeMap<String, BTreeSet<ConcreteTuple>>,
    atom_names: Vec<String>,
}

impl Instance {
    /// Creates an empty instance with the given atom display names.
    pub fn new(atom_names: Vec<String>) -> Instance {
        Instance {
            sigs: BTreeMap::new(),
            fields: BTreeMap::new(),
            atom_names,
        }
    }

    /// Sets the atom set of a signature.
    pub fn set_sig(&mut self, name: impl Into<String>, atoms: BTreeSet<u32>) {
        self.sigs.insert(name.into(), atoms);
    }

    /// Sets the tuple set of a field.
    pub fn set_field(&mut self, name: impl Into<String>, tuples: BTreeSet<ConcreteTuple>) {
        self.fields.insert(name.into(), tuples);
    }

    /// The atom set of a signature (empty if unknown).
    pub fn sig_set(&self, name: &str) -> BTreeSet<u32> {
        self.sigs.get(name).cloned().unwrap_or_default()
    }

    /// The tuple set of a field (empty if unknown).
    pub fn field_set(&self, name: &str) -> BTreeSet<ConcreteTuple> {
        self.fields.get(name).cloned().unwrap_or_default()
    }

    /// Whether the instance defines the given signature name.
    pub fn has_sig(&self, name: &str) -> bool {
        self.sigs.contains_key(name)
    }

    /// Whether the instance defines the given field name.
    pub fn has_field(&self, name: &str) -> bool {
        self.fields.contains_key(name)
    }

    /// All atoms present in any signature (the active universe).
    pub fn universe_atoms(&self) -> BTreeSet<u32> {
        self.sigs.values().flatten().copied().collect()
    }

    /// Display name of an atom (falls back to `atom<N>`).
    pub fn atom_name(&self, atom: u32) -> String {
        self.atom_names
            .get(atom as usize)
            .cloned()
            .unwrap_or_else(|| format!("atom{atom}"))
    }

    /// Signature names defined by the instance.
    pub fn sig_names(&self) -> impl Iterator<Item = &str> {
        self.sigs.keys().map(|s| s.as_str())
    }

    /// Field names defined by the instance.
    pub fn field_names(&self) -> impl Iterator<Item = &str> {
        self.fields.keys().map(|s| s.as_str())
    }

    /// Total number of tuples across all signatures and fields (a crude
    /// size measure used in analyzer reports).
    pub fn size(&self) -> usize {
        self.sigs.values().map(|s| s.len()).sum::<usize>()
            + self.fields.values().map(|s| s.len()).sum::<usize>()
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, atoms) in &self.sigs {
            let rendered: Vec<String> = atoms.iter().map(|&a| self.atom_name(a)).collect();
            writeln!(f, "{name} = {{{}}}", rendered.join(", "))?;
        }
        for (name, tuples) in &self.fields {
            let rendered: Vec<String> = tuples
                .iter()
                .map(|t| {
                    let atoms: Vec<String> = t.iter().map(|&a| self.atom_name(a)).collect();
                    format!("({})", atoms.join(", "))
                })
                .collect();
            writeln!(f, "{name} = {{{}}}", rendered.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_sets() {
        let mut inst = Instance::new(vec!["A$0".into(), "A$1".into()]);
        inst.set_sig("A", [0u32, 1].into_iter().collect());
        inst.set_field("f", [vec![0, 1]].into_iter().collect());
        assert_eq!(inst.sig_set("A").len(), 2);
        assert_eq!(inst.field_set("f").len(), 1);
        assert!(inst.sig_set("B").is_empty());
        assert_eq!(inst.universe_atoms().len(), 2);
        assert_eq!(inst.size(), 3);
    }

    #[test]
    fn display_names_atoms() {
        let mut inst = Instance::new(vec!["A$0".into()]);
        inst.set_sig("A", [0u32].into_iter().collect());
        let s = inst.to_string();
        assert!(s.contains("A = {A$0}"));
        assert_eq!(inst.atom_name(7), "atom7");
    }
}
