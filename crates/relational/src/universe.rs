//! Universe and bound construction from signature declarations.
//!
//! Scope semantics (μAlloy dialect, documented in DESIGN.md): a command's
//! uniform scope `n` allocates an *atom pool* per allocation unit —
//!
//! - every signature without children gets its own pool of `n` atoms
//!   (`one sig` pools are a single, always-present atom);
//! - a non-abstract signature with children additionally gets a *remainder*
//!   pool of `n` atoms for atoms belonging to the parent but none of its
//!   children;
//! - an abstract signature's atom set is exactly the union of its
//!   descendants' pools.
//!
//! Each atom carries a membership variable (except `one sig` atoms, which
//! are always present), exactly like Kodkod's lower/upper relation bounds.

use mualloy_syntax::{SigDecl, SigMult, Spec};
use std::collections::BTreeMap;

use crate::error::TranslateError;

/// A contiguous pool of atoms owned by one allocation unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pool {
    /// Name of the signature the pool belongs to (remainder pools use the
    /// parent's name).
    pub sig: String,
    /// Global index of the first atom in the pool.
    pub first_atom: u32,
    /// Number of atoms in the pool.
    pub size: u32,
    /// Whether the pool's atoms are unconditionally present (`one sig`).
    pub fixed: bool,
}

impl Pool {
    /// Iterates over the global atom indices of this pool.
    pub fn atoms(&self) -> impl Iterator<Item = u32> {
        self.first_atom..(self.first_atom + self.size)
    }
}

/// The atom universe induced by a specification and a uniform scope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Universe {
    pools: Vec<Pool>,
    atom_pool: Vec<u32>,                   // atom -> pool index
    atom_names: Vec<String>,               // atom -> display name, e.g. "Room$0"
    sig_atoms: BTreeMap<String, Vec<u32>>, // sig -> all atoms (incl. descendants)
    sig_mult: BTreeMap<String, Option<SigMult>>,
    scope: u32,
}

impl Universe {
    /// Builds the universe for `spec` with the given uniform scope.
    ///
    /// # Errors
    ///
    /// Returns [`TranslateError`] when the hierarchy is malformed (unknown
    /// parent, cyclic extends, `one sig` with children) or the scope is 0.
    pub fn build(spec: &Spec, scope: u32) -> Result<Universe, TranslateError> {
        if scope == 0 {
            return Err(TranslateError::new("scope must be positive"));
        }
        let by_name: BTreeMap<&str, &SigDecl> =
            spec.sigs.iter().map(|s| (s.name.as_str(), s)).collect();
        // Validate parents and detect cycles.
        for sig in &spec.sigs {
            if let Some(p) = &sig.parent {
                if !by_name.contains_key(p.as_str()) {
                    return Err(TranslateError::new(format!(
                        "signature `{}` extends unknown `{p}`",
                        sig.name
                    )));
                }
            }
            let mut cur = sig.name.as_str();
            let mut steps = 0;
            while let Some(parent) = by_name.get(cur).and_then(|s| s.parent.as_deref()) {
                cur = parent;
                steps += 1;
                if steps > spec.sigs.len() {
                    return Err(TranslateError::new(format!(
                        "cyclic extends chain through `{}`",
                        sig.name
                    )));
                }
            }
        }

        let mut pools = Vec::new();
        let mut atom_pool = Vec::new();
        let mut atom_names = Vec::new();
        let mut next_atom = 0u32;

        let mut alloc_pool = |sig: &str,
                              size: u32,
                              fixed: bool,
                              pools: &mut Vec<Pool>,
                              atom_pool: &mut Vec<u32>,
                              atom_names: &mut Vec<String>| {
            let pool_idx = pools.len() as u32;
            for i in 0..size {
                atom_pool.push(pool_idx);
                atom_names.push(format!("{sig}${i}"));
            }
            pools.push(Pool {
                sig: sig.to_string(),
                first_atom: next_atom,
                size,
                fixed,
            });
            next_atom += size;
        };

        // Pool allocation in declaration order for determinism.
        for sig in &spec.sigs {
            let has_children = !spec.children_of(&sig.name).is_empty()
                || spec
                    .sigs
                    .iter()
                    .any(|s| s.parent.as_deref() == Some(sig.name.as_str()));
            let is_one = sig.mult == Some(SigMult::One);
            if is_one && has_children {
                return Err(TranslateError::new(format!(
                    "`one sig {}` may not have children in μAlloy",
                    sig.name
                )));
            }
            if has_children {
                if !sig.is_abstract {
                    // Remainder pool for parent-only atoms.
                    alloc_pool(
                        &sig.name,
                        scope,
                        false,
                        &mut pools,
                        &mut atom_pool,
                        &mut atom_names,
                    );
                }
                // Abstract parents own no pool of their own.
            } else if is_one {
                alloc_pool(
                    &sig.name,
                    1,
                    true,
                    &mut pools,
                    &mut atom_pool,
                    &mut atom_names,
                );
            } else {
                alloc_pool(
                    &sig.name,
                    scope,
                    false,
                    &mut pools,
                    &mut atom_pool,
                    &mut atom_names,
                );
            }
        }

        // sig -> atoms: own pool plus all descendants' atoms.
        let mut sig_atoms: BTreeMap<String, Vec<u32>> = BTreeMap::new();
        for sig in &spec.sigs {
            let mut atoms = Vec::new();
            // Own pools (a sig owns the pools labelled with its name).
            for p in &pools {
                if p.sig == sig.name {
                    atoms.extend(p.atoms());
                }
            }
            // Descendant pools.
            let mut frontier: Vec<&str> = vec![sig.name.as_str()];
            while let Some(cur) = frontier.pop() {
                for child in spec
                    .sigs
                    .iter()
                    .filter(|s| s.parent.as_deref() == Some(cur))
                {
                    for p in &pools {
                        if p.sig == child.name {
                            atoms.extend(p.atoms());
                        }
                    }
                    frontier.push(child.name.as_str());
                }
            }
            atoms.sort_unstable();
            atoms.dedup();
            sig_atoms.insert(sig.name.clone(), atoms);
        }

        let sig_mult = spec.sigs.iter().map(|s| (s.name.clone(), s.mult)).collect();

        Ok(Universe {
            pools,
            atom_pool,
            atom_names,
            sig_atoms,
            sig_mult,
            scope,
        })
    }

    /// Total number of atoms.
    pub fn num_atoms(&self) -> u32 {
        self.atom_pool.len() as u32
    }

    /// The uniform scope the universe was built with.
    pub fn scope(&self) -> u32 {
        self.scope
    }

    /// All allocation pools.
    pub fn pools(&self) -> &[Pool] {
        &self.pools
    }

    /// The pool owning the given atom.
    pub fn pool_of(&self, atom: u32) -> &Pool {
        &self.pools[self.atom_pool[atom as usize] as usize]
    }

    /// Display name of an atom (e.g. `Room$1`).
    pub fn atom_name(&self, atom: u32) -> &str {
        &self.atom_names[atom as usize]
    }

    /// Atom indices (including descendants') of a signature, or `None` if
    /// the signature is unknown.
    pub fn sig_atoms(&self, sig: &str) -> Option<&[u32]> {
        self.sig_atoms.get(sig).map(|v| v.as_slice())
    }

    /// Declared multiplicity of a signature, if any.
    pub fn sig_mult(&self, sig: &str) -> Option<SigMult> {
        self.sig_mult.get(sig).copied().flatten()
    }

    /// All signature names in the universe.
    pub fn sig_names(&self) -> impl Iterator<Item = &str> {
        self.sig_atoms.keys().map(|s| s.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mualloy_syntax::parse_spec;

    #[test]
    fn flat_sigs_get_scope_sized_pools() {
        let spec = parse_spec("sig A {} sig B {}").unwrap();
        let u = Universe::build(&spec, 3).unwrap();
        assert_eq!(u.num_atoms(), 6);
        assert_eq!(u.sig_atoms("A").unwrap().len(), 3);
        assert_eq!(u.sig_atoms("B").unwrap().len(), 3);
        // Disjoint pools.
        let a = u.sig_atoms("A").unwrap();
        let b = u.sig_atoms("B").unwrap();
        assert!(a.iter().all(|x| !b.contains(x)));
    }

    #[test]
    fn one_sig_gets_single_fixed_atom() {
        let spec = parse_spec("one sig S {}").unwrap();
        let u = Universe::build(&spec, 4).unwrap();
        assert_eq!(u.num_atoms(), 1);
        assert!(u.pool_of(0).fixed);
        assert_eq!(u.atom_name(0), "S$0");
    }

    #[test]
    fn abstract_parent_is_union_of_children() {
        let spec =
            parse_spec("abstract sig Key {} sig RoomKey extends Key {} sig CarKey extends Key {}")
                .unwrap();
        let u = Universe::build(&spec, 3).unwrap();
        assert_eq!(u.num_atoms(), 6);
        let key = u.sig_atoms("Key").unwrap();
        assert_eq!(key.len(), 6);
        let rk = u.sig_atoms("RoomKey").unwrap();
        assert!(rk.iter().all(|a| key.contains(a)));
    }

    #[test]
    fn non_abstract_parent_gets_remainder_pool() {
        let spec = parse_spec("sig Person {} sig Student extends Person {}").unwrap();
        let u = Universe::build(&spec, 2).unwrap();
        // Person remainder pool (2) + Student pool (2).
        assert_eq!(u.num_atoms(), 4);
        assert_eq!(u.sig_atoms("Person").unwrap().len(), 4);
        assert_eq!(u.sig_atoms("Student").unwrap().len(), 2);
    }

    #[test]
    fn zero_scope_is_rejected() {
        let spec = parse_spec("sig A {}").unwrap();
        assert!(Universe::build(&spec, 0).is_err());
    }

    #[test]
    fn one_sig_with_children_is_rejected() {
        let spec = parse_spec("one sig S {} sig T extends S {}").unwrap();
        assert!(Universe::build(&spec, 3).is_err());
    }

    #[test]
    fn unknown_parent_is_rejected() {
        let spec = parse_spec("sig A extends Ghost {}").unwrap();
        assert!(Universe::build(&spec, 3).is_err());
    }

    #[test]
    fn cyclic_hierarchy_is_rejected() {
        let spec = parse_spec("sig A extends B {} sig B extends A {}").unwrap();
        assert!(Universe::build(&spec, 3).is_err());
    }

    #[test]
    fn atom_names_are_stable_and_unique() {
        let spec = parse_spec("sig A {} sig B {}").unwrap();
        let u = Universe::build(&spec, 3).unwrap();
        let names: Vec<_> = (0..u.num_atoms())
            .map(|a| u.atom_name(a).to_string())
            .collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        assert!(names.contains(&"A$0".to_string()));
        assert!(names.contains(&"B$2".to_string()));
    }
}
