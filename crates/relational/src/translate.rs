//! Translation of μAlloy specifications into boolean circuits.
//!
//! The [`Translator`] mirrors Kodkod's architecture: the universe supplies
//! per-atom membership variables for signatures and per-tuple variables for
//! fields; relational expressions compile into [`Matrix`] values; formulas
//! compile into [`BoolRef`]s. The *base constraint* conjoins declaration
//! multiplicities, field bounds and every fact — every analysis conjoins it
//! with a command-specific formula.

use mualloy_sat::{BoolRef, Circuit};
use mualloy_syntax::ast::*;
use std::collections::BTreeMap;

use crate::elaborate::elaborate_spec;
use crate::error::TranslateError;
use crate::instance::Instance;
use crate::matrix::Matrix;
use crate::universe::Universe;

/// Hard cap on the entries fed to a counting gate, guarding against
/// accidentally huge cardinality comparisons.
const MAX_COUNT_ENTRIES: usize = 4096;

/// Environment mapping bound variable names to their compiled matrices.
type Env = BTreeMap<String, Matrix>;

/// A specification translated into a boolean circuit.
#[derive(Debug)]
pub struct Translator {
    /// The circuit under construction (public so analyses can add gates).
    pub circuit: Circuit,
    universe: Universe,
    spec: Spec, // elaborated
    sig_matrices: BTreeMap<String, Matrix>,
    field_matrices: BTreeMap<String, Matrix>,
    /// Per-atom membership refs (input var, or constant TRUE for `one sig`).
    atom_member: Vec<BoolRef>,
    decls: BoolRef,
    base: BoolRef,
}

impl Translator {
    /// Elaborates `spec`, builds the universe at the given uniform scope and
    /// compiles the base constraint (declarations + facts).
    ///
    /// # Errors
    ///
    /// Fails on elaboration errors, malformed hierarchies or arity errors in
    /// fact bodies.
    pub fn new(spec: &Spec, scope: u32) -> Result<Translator, TranslateError> {
        let spec = elaborate_spec(spec)?;
        let universe = Universe::build(&spec, scope)?;
        let mut circuit = Circuit::new();

        // Membership variables per atom.
        let mut atom_member = Vec::with_capacity(universe.num_atoms() as usize);
        for atom in 0..universe.num_atoms() {
            let pool = universe.pool_of(atom);
            if pool.fixed {
                atom_member.push(Circuit::TRUE);
            } else {
                atom_member.push(circuit.input());
            }
        }

        // Signature matrices.
        let mut sig_matrices = BTreeMap::new();
        for sig in &spec.sigs {
            let mut m = Matrix::empty(1);
            if let Some(atoms) = universe.sig_atoms(&sig.name) {
                for &a in atoms {
                    m.set(&mut circuit, vec![a], atom_member[a as usize]);
                }
            }
            sig_matrices.insert(sig.name.clone(), m);
        }

        // Field matrices: one input per upper-bound tuple.
        let mut field_matrices = BTreeMap::new();
        for (owner, field) in spec.fields() {
            let mut cols: Vec<&[u32]> = Vec::with_capacity(field.arity());
            let owner_atoms = universe
                .sig_atoms(&owner.name)
                .ok_or_else(|| TranslateError::new(format!("unknown sig `{}`", owner.name)))?;
            cols.push(owner_atoms);
            for c in &field.cols {
                let atoms = universe.sig_atoms(c).ok_or_else(|| {
                    TranslateError::new(format!("unknown sig `{c}` in field `{}`", field.name))
                })?;
                cols.push(atoms);
            }
            let mut m = Matrix::empty(field.arity());
            let mut tuple = vec![0u32; field.arity()];
            fill_product(&cols, 0, &mut tuple, &mut |t| {
                let v = circuit.input();
                m.set(&mut circuit, t.to_vec(), v);
            });
            field_matrices.insert(field.name.clone(), m);
        }

        let mut tr = Translator {
            circuit,
            universe,
            spec,
            sig_matrices,
            field_matrices,
            atom_member,
            decls: Circuit::TRUE,
            base: Circuit::TRUE,
        };
        let decls = tr.compile_declarations()?;
        let facts = tr.compile_facts()?;
        tr.decls = decls;
        tr.base = tr.circuit.and(decls, facts);
        Ok(tr)
    }

    /// The universe the translation is bounded by.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// The elaborated specification.
    pub fn spec(&self) -> &Spec {
        &self.spec
    }

    /// The base constraint: declaration semantics plus all facts.
    pub fn base_constraint(&self) -> BoolRef {
        self.base
    }

    /// The declaration constraint alone (multiplicities and field bounds),
    /// without any fact. Incremental sessions pin this spec-independent
    /// skeleton once and conjoin per-candidate fact bodies separately.
    pub fn decl_constraint(&self) -> BoolRef {
        self.decls
    }

    /// Compiles a closed formula (no free variables) against this
    /// translation. The formula must already be elaborated — formulas taken
    /// from [`Translator::spec`] or produced by
    /// [`crate::elaborate::elaborate_formula`] qualify.
    ///
    /// # Errors
    ///
    /// Fails on unknown names, arity mismatches or remaining calls.
    pub fn compile_formula(&mut self, f: &Formula) -> Result<BoolRef, TranslateError> {
        let env = Env::new();
        self.formula(f, &env)
    }

    /// Decodes a model's input-variable values into a concrete [`Instance`].
    ///
    /// `input_values[i]` must be the value of circuit input `i` (callers
    /// obtain this by mapping [`Circuit::encode`]'s literals through the SAT
    /// model).
    pub fn decode(&self, input_values: &[bool]) -> Instance {
        let read = |r: BoolRef, c: &Circuit| -> bool {
            if let Some(b) = c.as_constant(r) {
                b
            } else if let Some((id, pos)) = c.as_input(r) {
                input_values[id as usize] == pos
            } else {
                // Non-input entry (from a defined matrix) — evaluate.
                c.eval(r, input_values)
            }
        };
        let atom_names: Vec<String> = (0..self.universe.num_atoms())
            .map(|a| self.universe.atom_name(a).to_string())
            .collect();
        let mut inst = Instance::new(atom_names);
        for (name, m) in &self.sig_matrices {
            let atoms = m
                .iter()
                .filter(|&(_, v)| read(v, &self.circuit))
                .map(|(t, _)| t[0])
                .collect();
            inst.set_sig(name.clone(), atoms);
        }
        for (name, m) in &self.field_matrices {
            let tuples = m
                .iter()
                .filter(|&(_, v)| read(v, &self.circuit))
                .map(|(t, _)| t.clone())
                .collect();
            inst.set_field(name.clone(), tuples);
        }
        inst
    }

    // -------------------------------------------------------- declarations

    fn compile_declarations(&mut self) -> Result<BoolRef, TranslateError> {
        let mut constraints = Vec::new();

        // Signature multiplicities (`one` handled by fixed pools).
        for sig in self.spec.sigs.clone() {
            let m = self.sig_matrices[&sig.name].clone();
            match sig.mult {
                Some(SigMult::Lone) => {
                    let vals = m.values();
                    let amo = self.count_at_most(&vals, 1)?;
                    constraints.push(amo);
                }
                Some(SigMult::Some) => {
                    let vals = m.values();
                    constraints.push(self.circuit.or_many(vals));
                }
                Some(SigMult::One) if !self.universe.pool_of_sig_fixed(&sig.name) => {
                    // `one sig` over a non-fixed pool cannot happen (the
                    // universe allocates a fixed singleton); defensive only.
                    let vals = m.values();
                    let eq1 = self.circuit.count_eq(&vals, 1);
                    constraints.push(eq1);
                }
                _ => {}
            }
        }

        // Field bounds and multiplicities.
        for (owner, field) in self
            .spec
            .fields()
            .map(|(o, f)| (o.clone(), f.clone()))
            .collect::<Vec<_>>()
        {
            let fm = self.field_matrices[&field.name].clone();
            // Tuple membership implies column membership.
            let mut col_sigs: Vec<&str> = vec![owner.name.as_str()];
            for c in &field.cols {
                col_sigs.push(c.as_str());
            }
            for (t, v) in fm.iter() {
                let mut guards = Vec::with_capacity(t.len());
                for (i, &atom) in t.iter().enumerate() {
                    guards.push(self.sig_matrices[col_sigs[i]].get(&[atom]));
                }
                let all_in = self.circuit.and_many(guards);
                constraints.push(self.circuit.implies(v, all_in));
            }
            // Multiplicity on the last column.
            if field.mult != Mult::Set {
                let prefix_sigs = &col_sigs[..col_sigs.len() - 1];
                let last_sig = col_sigs[col_sigs.len() - 1];
                let prefix_atoms: Vec<Vec<u32>> = prefix_sigs
                    .iter()
                    .map(|s| self.universe.sig_atoms(s).unwrap_or(&[]).to_vec())
                    .collect();
                let last_atoms: Vec<u32> =
                    self.universe.sig_atoms(last_sig).unwrap_or(&[]).to_vec();
                let prefix_refs: Vec<&[u32]> = prefix_atoms.iter().map(|v| v.as_slice()).collect();
                let mut prefix = vec![0u32; prefix_refs.len()];
                let mut jobs: Vec<Vec<u32>> = Vec::new();
                fill_product(&prefix_refs, 0, &mut prefix, &mut |t| {
                    jobs.push(t.to_vec());
                });
                for prefix_tuple in jobs {
                    let mut guards = Vec::new();
                    for (i, &atom) in prefix_tuple.iter().enumerate() {
                        guards.push(self.sig_matrices[prefix_sigs[i]].get(&[atom]));
                    }
                    let guard = self.circuit.and_many(guards);
                    let mut slot_vals = Vec::with_capacity(last_atoms.len());
                    for &last in &last_atoms {
                        let mut full = prefix_tuple.clone();
                        full.push(last);
                        slot_vals.push(fm.get(&full));
                    }
                    let mult_ok = match field.mult {
                        Mult::One => self.circuit.exactly_one(&slot_vals),
                        Mult::Lone => self.count_at_most(&slot_vals, 1)?,
                        Mult::Some => self.circuit.or_many(slot_vals),
                        Mult::Set => unreachable!("filtered above"),
                    };
                    constraints.push(self.circuit.implies(guard, mult_ok));
                }
            }
        }

        Ok(self.circuit.and_many(constraints))
    }

    fn compile_facts(&mut self) -> Result<BoolRef, TranslateError> {
        let mut conj = Vec::new();
        for fact in self.spec.facts.clone() {
            for f in &fact.body {
                let env = Env::new();
                conj.push(self.formula(f, &env)?);
            }
        }
        Ok(self.circuit.and_many(conj))
    }

    // ------------------------------------------------------------ formulas

    fn formula(&mut self, f: &Formula, env: &Env) -> Result<BoolRef, TranslateError> {
        match f {
            Formula::Compare(op, l, r, _) => {
                let lm = self.expr(l, env)?;
                let rm = self.expr(r, env)?;
                match op {
                    CmpOp::In => lm.subset_of(&rm, &mut self.circuit),
                    CmpOp::NotIn => {
                        let s = lm.subset_of(&rm, &mut self.circuit)?;
                        Ok(!s)
                    }
                    CmpOp::Eq => {
                        let a = lm.subset_of(&rm, &mut self.circuit)?;
                        let b = rm.subset_of(&lm, &mut self.circuit)?;
                        Ok(self.circuit.and(a, b))
                    }
                    CmpOp::Neq => {
                        let a = lm.subset_of(&rm, &mut self.circuit)?;
                        let b = rm.subset_of(&lm, &mut self.circuit)?;
                        let eq = self.circuit.and(a, b);
                        Ok(!eq)
                    }
                }
            }
            Formula::IntCompare(op, l, r, _) => self.int_compare(*op, l, r, env),
            Formula::Mult(op, e, _) => {
                let m = self.expr(e, env)?;
                let vals = m.values();
                match op {
                    MultOp::Some => Ok(self.circuit.or_many(vals)),
                    MultOp::No => {
                        let some = self.circuit.or_many(vals);
                        Ok(!some)
                    }
                    MultOp::Lone => self.count_at_most(&vals, 1),
                    MultOp::One => {
                        let amo = self.count_at_most(&vals, 1)?;
                        let alo = self.circuit.or_many(vals);
                        Ok(self.circuit.and(amo, alo))
                    }
                }
            }
            Formula::Not(inner, _) => {
                let v = self.formula(inner, env)?;
                Ok(!v)
            }
            Formula::Binary(op, l, r, _) => {
                let lv = self.formula(l, env)?;
                let rv = self.formula(r, env)?;
                Ok(match op {
                    BinFormOp::And => self.circuit.and(lv, rv),
                    BinFormOp::Or => self.circuit.or(lv, rv),
                    BinFormOp::Implies => self.circuit.implies(lv, rv),
                    BinFormOp::Iff => self.circuit.iff(lv, rv),
                })
            }
            Formula::Quant(q, decls, body, _) => self.quant(*q, decls, body, env),
            Formula::Let(name, e, body, _) => {
                let m = self.expr(e, env)?;
                let mut env2 = env.clone();
                env2.insert(name.clone(), m);
                self.formula(body, &env2)
            }
            Formula::PredCall(name, _, _) => Err(TranslateError::new(format!(
                "unexpanded predicate call `{name}` (formula must be elaborated first)"
            ))),
        }
    }

    fn quant(
        &mut self,
        q: Quant,
        decls: &[VarDecl],
        body: &Formula,
        env: &Env,
    ) -> Result<BoolRef, TranslateError> {
        match q {
            Quant::All => {
                let mut clauses = Vec::new();
                self.expand_all(decls, body, env, Circuit::TRUE, &mut clauses)?;
                Ok(self.circuit.and_many(clauses))
            }
            Quant::Some => {
                let mut cases = Vec::new();
                self.expand_some(decls, body, env, Circuit::TRUE, &mut cases)?;
                Ok(self.circuit.or_many(cases))
            }
            Quant::No => {
                let mut cases = Vec::new();
                self.expand_some(decls, body, env, Circuit::TRUE, &mut cases)?;
                let some = self.circuit.or_many(cases);
                Ok(!some)
            }
            Quant::Lone => {
                let mut cases = Vec::new();
                self.expand_some(decls, body, env, Circuit::TRUE, &mut cases)?;
                self.count_at_most(&cases, 1)
            }
            Quant::One => {
                let mut cases = Vec::new();
                self.expand_some(decls, body, env, Circuit::TRUE, &mut cases)?;
                let amo = self.count_at_most(&cases, 1)?;
                let alo = self.circuit.or_many(cases);
                Ok(self.circuit.and(amo, alo))
            }
        }
    }

    /// Expands `all decls | body`, pushing one `guard -> body` clause per
    /// atom combination.
    fn expand_all(
        &mut self,
        decls: &[VarDecl],
        body: &Formula,
        env: &Env,
        guard: BoolRef,
        out: &mut Vec<BoolRef>,
    ) -> Result<(), TranslateError> {
        match decls.split_first() {
            None => {
                let b = self.formula(body, env)?;
                out.push(self.circuit.implies(guard, b));
                Ok(())
            }
            Some((d, rest)) => {
                let bound = self.expr(&d.bound, env)?;
                if bound.arity() != 1 {
                    return Err(TranslateError::new(format!(
                        "quantifier bound for `{}` must be unary",
                        d.name
                    )));
                }
                for (t, v) in bound.clone().iter() {
                    let atom = t[0];
                    let guard2 = self.circuit.and(guard, v);
                    if guard2 == Circuit::FALSE {
                        continue;
                    }
                    let mut env2 = env.clone();
                    env2.insert(d.name.clone(), singleton(atom));
                    self.expand_all(rest, body, &env2, guard2, out)?;
                }
                Ok(())
            }
        }
    }

    /// Expands `some decls | body`, pushing one `guard && body` case per
    /// atom combination (also used for `no`/`lone`/`one` via counting).
    fn expand_some(
        &mut self,
        decls: &[VarDecl],
        body: &Formula,
        env: &Env,
        guard: BoolRef,
        out: &mut Vec<BoolRef>,
    ) -> Result<(), TranslateError> {
        match decls.split_first() {
            None => {
                let b = self.formula(body, env)?;
                out.push(self.circuit.and(guard, b));
                Ok(())
            }
            Some((d, rest)) => {
                let bound = self.expr(&d.bound, env)?;
                if bound.arity() != 1 {
                    return Err(TranslateError::new(format!(
                        "quantifier bound for `{}` must be unary",
                        d.name
                    )));
                }
                for (t, v) in bound.clone().iter() {
                    let atom = t[0];
                    let guard2 = self.circuit.and(guard, v);
                    if guard2 == Circuit::FALSE {
                        continue;
                    }
                    let mut env2 = env.clone();
                    env2.insert(d.name.clone(), singleton(atom));
                    self.expand_some(rest, body, &env2, guard2, out)?;
                }
                Ok(())
            }
        }
    }

    fn int_compare(
        &mut self,
        op: IntCmpOp,
        l: &IntExpr,
        r: &IntExpr,
        env: &Env,
    ) -> Result<BoolRef, TranslateError> {
        match (l, r) {
            (IntExpr::Lit(a, _), IntExpr::Lit(b, _)) => {
                let holds = match op {
                    IntCmpOp::Eq => a == b,
                    IntCmpOp::Neq => a != b,
                    IntCmpOp::Lt => a < b,
                    IntCmpOp::Gt => a > b,
                    IntCmpOp::Le => a <= b,
                    IntCmpOp::Ge => a >= b,
                };
                Ok(if holds { Circuit::TRUE } else { Circuit::FALSE })
            }
            (IntExpr::Card(e, _), IntExpr::Lit(k, _)) => {
                let vals = self.card_values(e, env)?;
                self.count_vs_constant(&vals, op, *k)
            }
            (IntExpr::Lit(k, _), IntExpr::Card(e, _)) => {
                let vals = self.card_values(e, env)?;
                self.count_vs_constant(&vals, flip(op), *k)
            }
            (IntExpr::Card(a, _), IntExpr::Card(b, _)) => {
                let av = self.card_values(a, env)?;
                let bv = self.card_values(b, env)?;
                // #a <= #b  ==  forall j: (#a >= j) -> (#b >= j).
                let le = |this: &mut Self, x: &[BoolRef], y: &[BoolRef]| {
                    let mut conj = Vec::new();
                    for j in 1..=x.len() {
                        let gx = this.circuit.count_ge(x, j);
                        let gy = this.circuit.count_ge(y, j);
                        conj.push(this.circuit.implies(gx, gy));
                    }
                    this.circuit.and_many(conj)
                };
                Ok(match op {
                    IntCmpOp::Le => le(self, &av, &bv),
                    IntCmpOp::Ge => le(self, &bv, &av),
                    IntCmpOp::Eq => {
                        let x = le(self, &av, &bv);
                        let y = le(self, &bv, &av);
                        self.circuit.and(x, y)
                    }
                    IntCmpOp::Neq => {
                        let x = le(self, &av, &bv);
                        let y = le(self, &bv, &av);
                        let eq = self.circuit.and(x, y);
                        !eq
                    }
                    IntCmpOp::Lt => {
                        let x = le(self, &av, &bv);
                        let y = le(self, &bv, &av);
                        self.circuit.and(x, !y)
                    }
                    IntCmpOp::Gt => {
                        let x = le(self, &bv, &av);
                        let y = le(self, &av, &bv);
                        self.circuit.and(x, !y)
                    }
                })
            }
        }
    }

    fn card_values(&mut self, e: &Expr, env: &Env) -> Result<Vec<BoolRef>, TranslateError> {
        let m = self.expr(e, env)?;
        let vals = m.values();
        if vals.len() > MAX_COUNT_ENTRIES {
            return Err(TranslateError::new(format!(
                "cardinality over {} entries exceeds the {MAX_COUNT_ENTRIES} limit",
                vals.len()
            )));
        }
        Ok(vals)
    }

    fn count_vs_constant(
        &mut self,
        vals: &[BoolRef],
        op: IntCmpOp,
        k: i64,
    ) -> Result<BoolRef, TranslateError> {
        let ge = |this: &mut Self, j: i64| -> BoolRef {
            if j <= 0 {
                Circuit::TRUE
            } else {
                this.circuit.count_ge(vals, j as usize)
            }
        };
        Ok(match op {
            IntCmpOp::Eq => {
                let a = ge(self, k);
                let b = ge(self, k + 1);
                self.circuit.and(a, !b)
            }
            IntCmpOp::Neq => {
                let a = ge(self, k);
                let b = ge(self, k + 1);
                let eq = self.circuit.and(a, !b);
                !eq
            }
            IntCmpOp::Lt => !ge(self, k),
            IntCmpOp::Gt => ge(self, k + 1),
            IntCmpOp::Le => !ge(self, k + 1),
            IntCmpOp::Ge => ge(self, k),
        })
    }

    fn count_at_most(&mut self, vals: &[BoolRef], k: usize) -> Result<BoolRef, TranslateError> {
        if vals.len() > MAX_COUNT_ENTRIES {
            return Err(TranslateError::new(format!(
                "multiplicity over {} entries exceeds the {MAX_COUNT_ENTRIES} limit",
                vals.len()
            )));
        }
        let ge = self.circuit.count_ge(vals, k + 1);
        Ok(!ge)
    }

    // --------------------------------------------------------- expressions

    fn expr(&mut self, e: &Expr, env: &Env) -> Result<Matrix, TranslateError> {
        match e {
            Expr::Ident(name, _) => {
                if let Some(m) = env.get(name) {
                    return Ok(m.clone());
                }
                if let Some(m) = self.sig_matrices.get(name) {
                    return Ok(m.clone());
                }
                if let Some(m) = self.field_matrices.get(name) {
                    return Ok(m.clone());
                }
                Err(TranslateError::new(format!("unknown name `{name}`")))
            }
            Expr::Univ(_) => Ok(self.univ_matrix()),
            Expr::Iden(_) => Ok(self.iden_matrix()),
            Expr::None(_) => Ok(Matrix::empty(1)),
            Expr::Unary(op, inner, _) => {
                let m = self.expr(inner, env)?;
                match op {
                    UnExprOp::Transpose => m.transpose(),
                    UnExprOp::Closure => m.closure(&mut self.circuit),
                    UnExprOp::ReflClosure => {
                        let iden = self.iden_matrix();
                        m.reflexive_closure(&iden, &mut self.circuit)
                    }
                }
            }
            Expr::Binary(op, l, r, _) => {
                let lm = self.expr(l, env)?;
                let rm = self.expr(r, env)?;
                match op {
                    BinExprOp::Union => lm.union(&rm, &mut self.circuit),
                    BinExprOp::Diff => lm.difference(&rm, &mut self.circuit),
                    BinExprOp::Intersect => lm.intersect(&rm, &mut self.circuit),
                    BinExprOp::Join => lm.join(&rm, &mut self.circuit),
                    BinExprOp::Product => Ok(lm.product(&rm, &mut self.circuit)),
                    BinExprOp::Override => lm.override_with(&rm, &mut self.circuit),
                    BinExprOp::DomRestrict => rm.domain_restrict(&lm, &mut self.circuit),
                    BinExprOp::RanRestrict => lm.range_restrict(&rm, &mut self.circuit),
                }
            }
            Expr::Comprehension(decls, body, _) => self.comprehension(decls, body, env),
            Expr::IfThenElse(c, t, f, _) => {
                let cond = self.formula(c, env)?;
                let tm = self.expr(t, env)?;
                let fm = self.expr(f, env)?;
                if tm.arity() != fm.arity() {
                    return Err(TranslateError::new(
                        "conditional expression branches have different arities",
                    ));
                }
                let mut out = Matrix::empty(tm.arity());
                let mut tuples: std::collections::BTreeSet<Vec<u32>> =
                    std::collections::BTreeSet::new();
                for (t, _) in tm.iter() {
                    tuples.insert(t.clone());
                }
                for (t, _) in fm.iter() {
                    tuples.insert(t.clone());
                }
                for t in tuples {
                    let tv = tm.get(&t);
                    let fv = fm.get(&t);
                    let v = self.circuit.ite(cond, tv, fv);
                    out.set(&mut self.circuit, t, v);
                }
                Ok(out)
            }
            Expr::FunCall(name, _, _) => Err(TranslateError::new(format!(
                "unexpanded application `{name}[..]` (expression must be elaborated first)"
            ))),
        }
    }

    fn comprehension(
        &mut self,
        decls: &[VarDecl],
        body: &Formula,
        env: &Env,
    ) -> Result<Matrix, TranslateError> {
        let mut out = Matrix::empty(decls.len().max(1));
        let mut stack: Vec<(usize, Env, BoolRef, Vec<u32>)> =
            vec![(0, env.clone(), Circuit::TRUE, Vec::new())];
        while let Some((i, env_i, guard, tuple)) = stack.pop() {
            if i == decls.len() {
                let b = self.formula(body, &env_i)?;
                let v = self.circuit.and(guard, b);
                out.set(&mut self.circuit, tuple, v);
                continue;
            }
            let bound = self.expr(&decls[i].bound, &env_i)?;
            if bound.arity() != 1 {
                return Err(TranslateError::new(format!(
                    "comprehension bound for `{}` must be unary",
                    decls[i].name
                )));
            }
            for (t, v) in bound.iter() {
                let atom = t[0];
                let guard2 = self.circuit.and(guard, v);
                if guard2 == Circuit::FALSE {
                    continue;
                }
                let mut env2 = env_i.clone();
                env2.insert(decls[i].name.clone(), singleton(atom));
                let mut tuple2 = tuple.clone();
                tuple2.push(atom);
                stack.push((i + 1, env2, guard2, tuple2));
            }
        }
        Ok(out)
    }

    fn univ_matrix(&mut self) -> Matrix {
        let mut m = Matrix::empty(1);
        for atom in 0..self.universe.num_atoms() {
            m.set(
                &mut self.circuit,
                vec![atom],
                self.atom_member[atom as usize],
            );
        }
        m
    }

    fn iden_matrix(&mut self) -> Matrix {
        let mut m = Matrix::empty(2);
        for atom in 0..self.universe.num_atoms() {
            m.set(
                &mut self.circuit,
                vec![atom, atom],
                self.atom_member[atom as usize],
            );
        }
        m
    }
}

impl Universe {
    /// Whether the (single) pool of the named signature is fixed.
    fn pool_of_sig_fixed(&self, sig: &str) -> bool {
        self.pools().iter().any(|p| p.sig == sig && p.fixed)
    }
}

/// Mirrors a comparison operator: `a op b` iff `b (flip op) a`.
fn flip(op: IntCmpOp) -> IntCmpOp {
    match op {
        IntCmpOp::Eq => IntCmpOp::Eq,
        IntCmpOp::Neq => IntCmpOp::Neq,
        IntCmpOp::Lt => IntCmpOp::Gt,
        IntCmpOp::Gt => IntCmpOp::Lt,
        IntCmpOp::Le => IntCmpOp::Ge,
        IntCmpOp::Ge => IntCmpOp::Le,
    }
}

fn singleton(atom: u32) -> Matrix {
    let mut m = Matrix::empty(1);
    // Direct insertion: a singleton with constant truth.
    let mut c = Circuit::new(); // scratch; set() only uses circuit for or-ing
    m.set(&mut c, vec![atom], Circuit::TRUE);
    m
}

fn fill_product(cols: &[&[u32]], idx: usize, tuple: &mut Vec<u32>, f: &mut impl FnMut(&[u32])) {
    if idx == cols.len() {
        f(tuple);
        return;
    }
    for &a in cols[idx] {
        tuple[idx] = a;
        fill_product(cols, idx + 1, tuple, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mualloy_sat::{SolveResult, Solver};
    use mualloy_syntax::parse_spec;

    /// Solves base && formula, returning the decoded instance if SAT.
    fn solve_with(spec_src: &str, formula_src: Option<&str>, scope: u32) -> Option<Instance> {
        let spec = parse_spec(spec_src).unwrap();
        let mut tr = Translator::new(&spec, scope).unwrap();
        let mut root = tr.base_constraint();
        if let Some(fsrc) = formula_src {
            let f = mualloy_syntax::parse_formula(fsrc).unwrap();
            let f = crate::elaborate::elaborate_formula(tr.spec(), &f).unwrap();
            let fv = tr.compile_formula(&f).unwrap();
            root = tr.circuit.and(root, fv);
        }
        let mut solver = Solver::new();
        let inputs = tr.circuit.encode(root, &mut solver);
        match solver.solve() {
            SolveResult::Sat(m) => {
                let vals: Vec<bool> = inputs
                    .iter()
                    .map(|l| m[l.var().index()] == l.is_positive())
                    .collect();
                Some(tr.decode(&vals))
            }
            SolveResult::Unsat => None,
        }
    }

    #[test]
    fn empty_spec_is_satisfiable() {
        assert!(solve_with("sig A {}", None, 3).is_some());
    }

    #[test]
    fn some_a_forces_nonempty() {
        let inst = solve_with("sig A {}", Some("some A"), 3).unwrap();
        assert!(!inst.sig_set("A").is_empty());
    }

    #[test]
    fn no_and_some_is_unsat() {
        assert!(solve_with("sig A {} fact { no A }", Some("some A"), 3).is_none());
    }

    #[test]
    fn one_sig_has_exactly_one_atom() {
        let inst = solve_with("one sig S {}", None, 3).unwrap();
        assert_eq!(inst.sig_set("S").len(), 1);
    }

    #[test]
    fn field_multiplicity_one_is_enforced() {
        // Every present A atom must map to exactly one B atom.
        let inst = solve_with("sig A { f: one B } sig B {}", Some("some A"), 2).unwrap();
        let a = inst.sig_set("A");
        let f = inst.field_set("f");
        for atom in &a {
            let count = f.iter().filter(|t| t[0] == *atom).count();
            assert_eq!(count, 1, "atom {atom} has {count} f-successors");
        }
    }

    #[test]
    fn field_multiplicity_lone_is_enforced() {
        for _ in 0..3 {
            let inst = solve_with("sig A { f: lone B } sig B {}", Some("some A"), 2).unwrap();
            let f = inst.field_set("f");
            for atom in inst.sig_set("A") {
                assert!(f.iter().filter(|t| t[0] == atom).count() <= 1);
            }
        }
    }

    #[test]
    fn field_tuples_respect_sig_membership() {
        let inst = solve_with("sig A { f: set B } sig B {}", Some("some A.f"), 2).unwrap();
        let a = inst.sig_set("A");
        let b = inst.sig_set("B");
        for t in inst.field_set("f") {
            assert!(a.contains(&t[0]));
            assert!(b.contains(&t[1]));
        }
    }

    #[test]
    fn ternary_field_multiplicity() {
        let inst = solve_with(
            "sig R {} sig K {} one sig D { m: R -> lone K } fact { some R && some K }",
            None,
            2,
        )
        .unwrap();
        let m = inst.field_set("m");
        // For each (d, r) pair at most one k.
        let mut seen = std::collections::BTreeMap::new();
        for t in &m {
            *seen.entry((t[0], t[1])).or_insert(0) += 1;
        }
        assert!(seen.values().all(|&c| c <= 1));
    }

    #[test]
    fn quantifiers_work() {
        // all x: A | some x.f with f: one B is implied by decls.
        assert!(solve_with(
            "sig A { f: one B } sig B {}",
            Some("all x: A | some x.f"),
            2
        )
        .is_some());
        // some x: A | x.f = B requires existence.
        let inst = solve_with(
            "sig A { f: set B } sig B {}",
            Some("some x: A | x.f = B"),
            2,
        );
        assert!(inst.is_some());
    }

    #[test]
    fn closure_detects_cycles() {
        // An acyclicity fact makes `some n: N | n in n.^next` unsat.
        assert!(solve_with(
            "sig N { next: lone N } fact { no n: N | n in n.^next }",
            Some("some n: N | n in n.^next"),
            3
        )
        .is_none());
        // Without the fact a cycle exists at scope 3.
        assert!(solve_with(
            "sig N { next: lone N }",
            Some("some n: N | n in n.^next"),
            3
        )
        .is_some());
    }

    #[test]
    fn cardinality_constraints() {
        let inst = solve_with("sig A {}", Some("#A = 2"), 3).unwrap();
        assert_eq!(inst.sig_set("A").len(), 2);
        assert!(solve_with("sig A {}", Some("#A > 3"), 3).is_none());
        let inst = solve_with("sig A {} sig B {}", Some("#A > #B && some B"), 3).unwrap();
        assert!(inst.sig_set("A").len() > inst.sig_set("B").len());
    }

    #[test]
    fn abstract_sig_partitioned_by_children() {
        let inst = solve_with(
            "abstract sig K {} sig RK extends K {} sig CK extends K {}",
            Some("some RK && some CK"),
            2,
        )
        .unwrap();
        let k = inst.sig_set("K");
        let rk = inst.sig_set("RK");
        let ck = inst.sig_set("CK");
        assert!(rk.iter().all(|a| k.contains(a)));
        assert!(ck.iter().all(|a| k.contains(a)));
        assert!(rk.intersection(&ck).count() == 0);
    }

    #[test]
    fn sig_multiplicity_lone_and_some() {
        let inst = solve_with("lone sig L {} some sig S {}", None, 3).unwrap();
        assert!(inst.sig_set("L").len() <= 1);
        assert!(!inst.sig_set("S").is_empty());
    }

    #[test]
    fn transpose_and_restrict() {
        assert!(solve_with(
            "sig A { f: set A }",
            Some("some ~f && some (A <: f) && some (f :> A)"),
            2
        )
        .is_some());
    }

    #[test]
    fn comprehension_compiles() {
        let inst = solve_with("sig A { f: set A }", Some("some { x: A | some x.f }"), 2);
        assert!(inst.is_some());
    }

    #[test]
    fn override_semantics() {
        // After override, the mapped-over value is gone.
        assert!(solve_with(
            "sig A { f: set A }",
            Some("all x, y: A | (x -> y) in (f ++ (x -> y))"),
            2
        )
        .is_some());
    }

    #[test]
    fn unknown_name_errors() {
        let spec = parse_spec("sig A {}").unwrap();
        let mut tr = Translator::new(&spec, 2).unwrap();
        let f = mualloy_syntax::parse_formula("some Ghost").unwrap();
        assert!(tr.compile_formula(&f).is_err());
    }

    #[test]
    fn hotel_fig1_bug_is_detectable() {
        // The paper's Fig. 1 bug: `no g.gkeys` is overly restrictive. A
        // check-in by a guest who already holds an unrelated key must be
        // impossible under the faulty pred but possible under the fix.
        let faulty = r#"
            abstract sig Key {}
            sig RoomKey extends Key {}
            sig Room { keys: set Key }
            sig Guest { gkeys: set Key }
            pred checkIn[g: Guest, r: Room, k: RoomKey] {
                no g.gkeys
                k not in r.keys
            }
        "#;
        // Guest with a key can never check in under the faulty spec.
        assert!(solve_with(
            faulty,
            Some("some g: Guest, r: Room, k: RoomKey | some g.gkeys && checkIn[g, r, k]"),
            3
        )
        .is_none());
        let fixed = faulty.replace("no g.gkeys", "k not in g.gkeys");
        assert!(solve_with(
            &fixed,
            Some("some g: Guest, r: Room, k: RoomKey | some g.gkeys && checkIn[g, r, k]"),
            3
        )
        .is_some());
    }
}
