//! Elaboration: inlining of predicate and function calls.
//!
//! The translator and the ground evaluator operate on *elaborated* formulas
//! in which every [`Formula::PredCall`] has been replaced by the predicate's
//! substituted body and every [`Expr::FunCall`] either by the function's
//! substituted body or — when the applied name is a field, signature or
//! variable — by the equivalent box join (`f[a, b]` = `b.(a.f)`).
//!
//! Inlined bodies have their binders freshened (`x` becomes `x__3`) so that
//! argument expressions can never be captured.

use mualloy_syntax::ast::*;
use mualloy_syntax::walk::{subst_expr, subst_formula};
use std::collections::HashMap;

use crate::error::TranslateError;

const MAX_INLINE_DEPTH: usize = 32;

/// Elaborates every formula in the specification.
///
/// # Errors
///
/// Fails on unknown call targets, arity mismatches and (mutually) recursive
/// predicates or functions.
pub fn elaborate_spec(spec: &Spec) -> Result<Spec, TranslateError> {
    let mut ctx = Elaborator {
        spec,
        fresh_counter: 0,
    };
    let mut out = spec.clone();
    for fact in &mut out.facts {
        fact.body = fact
            .body
            .iter()
            .map(|f| ctx.formula(f, 0))
            .collect::<Result<_, _>>()?;
    }
    for pred in &mut out.preds {
        pred.body = pred
            .body
            .iter()
            .map(|f| ctx.formula(f, 0))
            .collect::<Result<_, _>>()?;
    }
    for fun in &mut out.funs {
        fun.body = ctx.expr(&fun.body, 0)?;
    }
    for a in &mut out.asserts {
        a.body = a
            .body
            .iter()
            .map(|f| ctx.formula(f, 0))
            .collect::<Result<_, _>>()?;
    }
    Ok(out)
}

/// Elaborates a single formula against the declarations in `spec`.
///
/// # Errors
///
/// Same conditions as [`elaborate_spec`].
pub fn elaborate_formula(spec: &Spec, f: &Formula) -> Result<Formula, TranslateError> {
    let mut ctx = Elaborator {
        spec,
        fresh_counter: 0,
    };
    ctx.formula(f, 0)
}

/// The formula `some params | body` used to execute `run p`: the predicate's
/// parameters are existentially quantified over their bounds.
///
/// # Errors
///
/// Fails if the predicate is unknown or its body cannot be elaborated.
pub fn pred_as_existential(spec: &Spec, name: &str) -> Result<Formula, TranslateError> {
    let pred = spec
        .pred(name)
        .ok_or_else(|| TranslateError::new(format!("unknown predicate `{name}`")))?;
    let body = Formula::conjoin(pred.body.clone());
    let formula = if pred.params.is_empty() {
        body
    } else {
        let decls = pred
            .params
            .iter()
            .map(|p| VarDecl {
                name: p.name.clone(),
                bound: p.bound.clone(),
                span: p.span,
            })
            .collect();
        Formula::Quant(Quant::Some, decls, Box::new(body), Span::synthetic().into())
    };
    elaborate_formula(spec, &formula)
}

/// The conjoined body of an assertion.
///
/// # Errors
///
/// Fails if the assertion is unknown or its body cannot be elaborated.
pub fn assert_body(spec: &Spec, name: &str) -> Result<Formula, TranslateError> {
    let a = spec
        .assert(name)
        .ok_or_else(|| TranslateError::new(format!("unknown assertion `{name}`")))?;
    elaborate_formula(spec, &Formula::conjoin(a.body.clone()))
}

struct Elaborator<'a> {
    spec: &'a Spec,
    fresh_counter: u64,
}

impl Elaborator<'_> {
    fn fresh_name(&mut self, base: &str) -> String {
        self.fresh_counter += 1;
        format!("{base}__{}", self.fresh_counter)
    }

    fn formula(&mut self, f: &Formula, depth: usize) -> Result<Formula, TranslateError> {
        if depth > MAX_INLINE_DEPTH {
            return Err(TranslateError::new(
                "predicate/function inlining exceeded maximum depth (recursive definition?)",
            ));
        }
        Ok(match f {
            Formula::Compare(op, l, r, s) => Formula::Compare(
                *op,
                Box::new(self.expr(l, depth)?),
                Box::new(self.expr(r, depth)?),
                *s,
            ),
            Formula::IntCompare(op, l, r, s) => {
                let mut conv = |i: &IntExpr| -> Result<IntExpr, TranslateError> {
                    Ok(match i {
                        IntExpr::Card(e, sp) => IntExpr::Card(Box::new(self.expr(e, depth)?), *sp),
                        IntExpr::Lit(n, sp) => IntExpr::Lit(*n, *sp),
                    })
                };
                let l2 = conv(l)?;
                let r2 = conv(r)?;
                Formula::IntCompare(*op, Box::new(l2), Box::new(r2), *s)
            }
            Formula::Mult(op, e, s) => Formula::Mult(*op, Box::new(self.expr(e, depth)?), *s),
            Formula::Not(inner, s) => Formula::Not(Box::new(self.formula(inner, depth)?), *s),
            Formula::Binary(op, l, r, s) => Formula::Binary(
                *op,
                Box::new(self.formula(l, depth)?),
                Box::new(self.formula(r, depth)?),
                *s,
            ),
            Formula::Quant(q, decls, body, s) => {
                let decls2 = decls
                    .iter()
                    .map(|d| {
                        Ok(VarDecl {
                            name: d.name.clone(),
                            bound: self.expr(&d.bound, depth)?,
                            span: d.span,
                        })
                    })
                    .collect::<Result<Vec<_>, TranslateError>>()?;
                Formula::Quant(*q, decls2, Box::new(self.formula(body, depth)?), *s)
            }
            Formula::Let(n, e, body, s) => Formula::Let(
                n.clone(),
                Box::new(self.expr(e, depth)?),
                Box::new(self.formula(body, depth)?),
                *s,
            ),
            Formula::PredCall(name, args, _) => {
                let pred = self
                    .spec
                    .pred(name)
                    .ok_or_else(|| TranslateError::new(format!("unknown predicate `{name}`")))?
                    .clone();
                if pred.params.len() != args.len() {
                    return Err(TranslateError::new(format!(
                        "predicate `{name}` expects {} argument(s), got {}",
                        pred.params.len(),
                        args.len()
                    )));
                }
                let args2 = args
                    .iter()
                    .map(|a| self.expr(a, depth))
                    .collect::<Result<Vec<_>, _>>()?;
                let body = Formula::conjoin(pred.body.clone());
                let body = self.freshen_formula(&body);
                let map: HashMap<String, Expr> = pred
                    .params
                    .iter()
                    .map(|p| p.name.clone())
                    .zip(args2)
                    .collect();
                let substituted = subst_formula(&body, &map);
                self.formula(&substituted, depth + 1)?
            }
        })
    }

    fn expr(&mut self, e: &Expr, depth: usize) -> Result<Expr, TranslateError> {
        if depth > MAX_INLINE_DEPTH {
            return Err(TranslateError::new(
                "predicate/function inlining exceeded maximum depth (recursive definition?)",
            ));
        }
        Ok(match e {
            Expr::Ident(_, _) | Expr::Univ(_) | Expr::Iden(_) | Expr::None(_) => e.clone(),
            Expr::Unary(op, inner, s) => Expr::Unary(*op, Box::new(self.expr(inner, depth)?), *s),
            Expr::Binary(op, l, r, s) => Expr::Binary(
                *op,
                Box::new(self.expr(l, depth)?),
                Box::new(self.expr(r, depth)?),
                *s,
            ),
            Expr::Comprehension(decls, body, s) => {
                let decls2 = decls
                    .iter()
                    .map(|d| {
                        Ok(VarDecl {
                            name: d.name.clone(),
                            bound: self.expr(&d.bound, depth)?,
                            span: d.span,
                        })
                    })
                    .collect::<Result<Vec<_>, TranslateError>>()?;
                Expr::Comprehension(decls2, Box::new(self.formula(body, depth)?), *s)
            }
            Expr::IfThenElse(c, t, f, s) => Expr::IfThenElse(
                Box::new(self.formula(c, depth)?),
                Box::new(self.expr(t, depth)?),
                Box::new(self.expr(f, depth)?),
                *s,
            ),
            Expr::FunCall(name, args, span) => {
                let args2 = args
                    .iter()
                    .map(|a| self.expr(a, depth))
                    .collect::<Result<Vec<_>, _>>()?;
                if let Some(fun) = self.spec.fun(name).cloned() {
                    if fun.params.len() != args2.len() {
                        return Err(TranslateError::new(format!(
                            "function `{name}` expects {} argument(s), got {}",
                            fun.params.len(),
                            args2.len()
                        )));
                    }
                    let body = self.freshen_expr(&fun.body);
                    let map: HashMap<String, Expr> = fun
                        .params
                        .iter()
                        .map(|p| p.name.clone())
                        .zip(args2)
                        .collect();
                    let substituted = subst_expr(&body, &map);
                    self.expr(&substituted, depth + 1)?
                } else {
                    // Box join: f[a, b] = b.(a.f).
                    let mut acc = Expr::Ident(name.clone(), *span);
                    for a in args2 {
                        acc = Expr::Binary(BinExprOp::Join, Box::new(a), Box::new(acc), *span);
                    }
                    acc
                }
            }
        })
    }

    /// Renames every binder in the formula to a globally fresh name.
    fn freshen_formula(&mut self, f: &Formula) -> Formula {
        match f {
            Formula::Quant(q, decls, body, s) => {
                let mut map = HashMap::new();
                let decls2: Vec<VarDecl> = decls
                    .iter()
                    .map(|d| {
                        let fresh = self.fresh_name(&d.name);
                        let bound = self.freshen_expr(&d.bound);
                        map.insert(d.name.clone(), Expr::Ident(fresh.clone(), d.span.into()));
                        VarDecl {
                            name: fresh,
                            bound,
                            span: d.span,
                        }
                    })
                    .collect();
                let body2 = self.freshen_formula(body);
                Formula::Quant(*q, decls2, Box::new(subst_formula(&body2, &map)), *s)
            }
            Formula::Let(n, e, body, s) => {
                let fresh = self.fresh_name(n);
                let e2 = self.freshen_expr(e);
                let body2 = self.freshen_formula(body);
                let mut map = HashMap::new();
                map.insert(n.clone(), Expr::Ident(fresh.clone(), *s));
                Formula::Let(
                    fresh,
                    Box::new(e2),
                    Box::new(subst_formula(&body2, &map)),
                    *s,
                )
            }
            Formula::Not(inner, s) => Formula::Not(Box::new(self.freshen_formula(inner)), *s),
            Formula::Binary(op, l, r, s) => Formula::Binary(
                *op,
                Box::new(self.freshen_formula(l)),
                Box::new(self.freshen_formula(r)),
                *s,
            ),
            Formula::Compare(op, l, r, s) => Formula::Compare(
                *op,
                Box::new(self.freshen_expr(l)),
                Box::new(self.freshen_expr(r)),
                *s,
            ),
            Formula::IntCompare(op, l, r, s) => {
                let conv = |this: &mut Self, i: &IntExpr| match i {
                    IntExpr::Card(e, sp) => IntExpr::Card(Box::new(this.freshen_expr(e)), *sp),
                    IntExpr::Lit(n, sp) => IntExpr::Lit(*n, *sp),
                };
                let l2 = conv(self, l);
                let r2 = conv(self, r);
                Formula::IntCompare(*op, Box::new(l2), Box::new(r2), *s)
            }
            Formula::Mult(op, e, s) => Formula::Mult(*op, Box::new(self.freshen_expr(e)), *s),
            Formula::PredCall(n, args, s) => Formula::PredCall(
                n.clone(),
                args.iter().map(|a| self.freshen_expr(a)).collect(),
                *s,
            ),
        }
    }

    fn freshen_expr(&mut self, e: &Expr) -> Expr {
        match e {
            Expr::Comprehension(decls, body, s) => {
                let mut map = HashMap::new();
                let decls2: Vec<VarDecl> = decls
                    .iter()
                    .map(|d| {
                        let fresh = self.fresh_name(&d.name);
                        let bound = self.freshen_expr(&d.bound);
                        map.insert(d.name.clone(), Expr::Ident(fresh.clone(), d.span.into()));
                        VarDecl {
                            name: fresh,
                            bound,
                            span: d.span,
                        }
                    })
                    .collect();
                let body2 = self.freshen_formula(body);
                Expr::Comprehension(decls2, Box::new(subst_formula(&body2, &map)), *s)
            }
            Expr::Unary(op, inner, s) => Expr::Unary(*op, Box::new(self.freshen_expr(inner)), *s),
            Expr::Binary(op, l, r, s) => Expr::Binary(
                *op,
                Box::new(self.freshen_expr(l)),
                Box::new(self.freshen_expr(r)),
                *s,
            ),
            Expr::IfThenElse(c, t, f, s) => Expr::IfThenElse(
                Box::new(self.freshen_formula(c)),
                Box::new(self.freshen_expr(t)),
                Box::new(self.freshen_expr(f)),
                *s,
            ),
            Expr::FunCall(n, args, s) => Expr::FunCall(
                n.clone(),
                args.iter().map(|a| self.freshen_expr(a)).collect(),
                *s,
            ),
            other => other.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mualloy_syntax::parse_spec;
    use mualloy_syntax::walk::idents_in_formula;
    use std::collections::BTreeSet;

    #[test]
    fn pred_call_is_inlined() {
        let spec =
            parse_spec("sig A { f: set A } pred p[x: A] { some x.f } fact { all a: A | p[a] }")
                .unwrap();
        let out = elaborate_spec(&spec).unwrap();
        let mut ids = BTreeSet::new();
        idents_in_formula(&out.facts[0].body[0], &mut ids);
        assert!(ids.contains("f"));
        assert!(!ids.contains("p"));
    }

    #[test]
    fn fun_call_is_inlined() {
        let spec = parse_spec(
            "sig A { f: set A } fun succs[x: A]: set A { x.f } fact { all a: A | some succs[a] }",
        )
        .unwrap();
        let out = elaborate_spec(&spec).unwrap();
        let mut ids = BTreeSet::new();
        idents_in_formula(&out.facts[0].body[0], &mut ids);
        assert!(ids.contains("f"));
        assert!(!ids.contains("succs"));
    }

    #[test]
    fn field_application_desugars_to_box_join() {
        let spec = parse_spec(
            "sig R {} sig K {} one sig D { m: R -> lone K } fact { all r: R | some m[r] }",
        )
        .unwrap();
        // m[r] should become r.m (no FunCall remains).
        let out = elaborate_spec(&spec).unwrap();
        let printed = mualloy_syntax::print_formula(&out.facts[0].body[0]);
        assert!(printed.contains("r.m"), "got {printed}");
    }

    #[test]
    fn recursion_is_detected() {
        let spec = parse_spec("sig A {} pred p { p } fact { p }").unwrap();
        assert!(elaborate_spec(&spec).is_err());
        let spec = parse_spec("sig A {} pred p { q } pred q { p } fact { p }").unwrap();
        assert!(elaborate_spec(&spec).is_err());
    }

    #[test]
    fn unknown_pred_in_call_errors() {
        let spec = parse_spec("sig A {} fact { ghost }").unwrap();
        assert!(elaborate_spec(&spec).is_err());
    }

    #[test]
    fn wrong_arity_errors() {
        let spec = parse_spec("sig A {} pred p[x: A] { some x } fact { p }").unwrap();
        assert!(elaborate_spec(&spec).is_err());
    }

    #[test]
    fn capture_is_avoided_by_freshening() {
        // The argument `x` must not be captured by the pred body's binder `x`.
        let spec = parse_spec(
            "sig A { f: set A } pred p[y: A] { all x: A | y in x.f } fact { all x: A | p[x] }",
        )
        .unwrap();
        let out = elaborate_spec(&spec).unwrap();
        let printed = mualloy_syntax::print_formula(&out.facts[0].body[0]);
        // Inner binder is freshened; outer x flows into y's position.
        assert!(
            printed.contains("__"),
            "expected freshened binder in {printed}"
        );
    }

    #[test]
    fn pred_as_existential_quantifies_params() {
        let spec = parse_spec("sig A {} pred p[x: A] { some x }").unwrap();
        let f = pred_as_existential(&spec, "p").unwrap();
        assert!(matches!(f, Formula::Quant(Quant::Some, _, _, _)));
        assert!(pred_as_existential(&spec, "nope").is_err());
    }

    #[test]
    fn assert_body_conjoins() {
        let spec = parse_spec("sig A {} assert Q { no A some univ }").unwrap();
        let f = assert_body(&spec, "Q").unwrap();
        assert!(matches!(f, Formula::Binary(BinFormOp::And, _, _, _)));
        assert!(assert_body(&spec, "nope").is_err());
    }
}
