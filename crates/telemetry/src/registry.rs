//! The typed metric registry: named families of counters, gauges and
//! histograms with stable label sets.
//!
//! Registration is idempotent — asking for `(name, labels)` again returns
//! a clone of the existing handle — so a subsystem can register at its own
//! call site without coordinating with anyone. The registry lock is only
//! taken to *look up* a handle; once held, every increment is lock-free
//! (see [`crate::metric`]). Hot paths that register per-request label
//! values (endpoint × status) pay one short mutex-guarded BTreeMap probe,
//! the same cost profile as the map-of-counters it replaces.
//!
//! [`Registry::gather`] walks every family in name order and every series
//! in label order, which is what makes the JSON document's section
//! ordering and the Prometheus exposition deterministic.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::metric::{Counter, Gauge, Histogram, HistogramSnapshot};

/// The three metric types the registry holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone counter (`_total` by convention).
    Counter,
    /// A value that can go up and down.
    Gauge,
    /// A log₂ latency histogram.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` spelling.
    pub fn label(&self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One gathered (or parsed) metric sample: a family name, the label set
/// identifying the series, and its value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Family name, e.g. `specrepair_requests_total`.
    pub name: String,
    /// Label pairs in registration order, e.g. `[("endpoint", "repair"),
    /// ("status", "200")]`.
    pub labels: Vec<(String, String)>,
    /// The sample's kind and value.
    pub value: SampleValue,
}

/// The value of one [`Sample`].
///
/// The histogram variant is large (a full 28-bucket snapshot) but samples
/// are only materialized on scrape, never on the hot path, so the size
/// skew is irrelevant and not worth a `Box` indirection in every matcher.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)]
pub enum SampleValue {
    /// A monotone counter value.
    Counter(u64),
    /// A gauge value.
    Gauge(f64),
    /// A full histogram (buckets, count, sum, max).
    Histogram(HistogramSnapshot),
}

impl Sample {
    /// The series identity string: `name` or `name{k="v",k2="v2"}` — the
    /// key fleet aggregation groups on.
    pub fn id(&self) -> String {
        series_id(&self.name, &self.labels)
    }

    /// The sample's kind.
    pub fn kind(&self) -> MetricKind {
        match self.value {
            SampleValue::Counter(_) => MetricKind::Counter,
            SampleValue::Gauge(_) => MetricKind::Gauge,
            SampleValue::Histogram(_) => MetricKind::Histogram,
        }
    }
}

/// Formats a series identity: the family name plus its sorted label set,
/// in Prometheus line syntax.
pub fn series_id(name: &str, labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut id = String::from(name);
    id.push('{');
    for (i, (key, value)) in labels.iter().enumerate() {
        if i > 0 {
            id.push(',');
        }
        id.push_str(key);
        id.push_str("=\"");
        for c in value.chars() {
            match c {
                '\\' => id.push_str("\\\\"),
                '"' => id.push_str("\\\""),
                '\n' => id.push_str("\\n"),
                c => id.push(c),
            }
        }
        id.push('"');
    }
    id.push('}');
    id
}

/// One registered handle.
#[derive(Debug, Clone)]
enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Arc<Histogram>),
}

/// One metric family: a help string, a kind, and every labeled series.
#[derive(Debug)]
struct Family {
    help: &'static str,
    kind: MetricKind,
    /// Label set → handle. BTreeMap so gather order is deterministic.
    series: BTreeMap<Vec<(String, String)>, Handle>,
}

/// The registry: named metric families, each holding labeled series.
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<BTreeMap<&'static str, Family>>,
}

impl Registry {
    /// A fresh empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn handle(
        &self,
        name: &'static str,
        help: &'static str,
        kind: MetricKind,
        labels: &[(&str, &str)],
    ) -> Handle {
        let key: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let mut families = self.families.lock().unwrap();
        let family = families.entry(name).or_insert_with(|| Family {
            help,
            kind,
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric `{name}` registered twice with different kinds"
        );
        family
            .series
            .entry(key)
            .or_insert_with(|| match kind {
                MetricKind::Counter => Handle::Counter(Counter::new()),
                MetricKind::Gauge => Handle::Gauge(Gauge::new()),
                MetricKind::Histogram => Handle::Histogram(Arc::new(Histogram::new())),
            })
            .clone()
    }

    /// Registers (or fetches) a counter series.
    pub fn counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Counter {
        match self.handle(name, help, MetricKind::Counter, labels) {
            Handle::Counter(c) => c,
            _ => unreachable!("kind checked in handle()"),
        }
    }

    /// Registers (or fetches) a gauge series.
    pub fn gauge(&self, name: &'static str, help: &'static str, labels: &[(&str, &str)]) -> Gauge {
        match self.handle(name, help, MetricKind::Gauge, labels) {
            Handle::Gauge(g) => g,
            _ => unreachable!("kind checked in handle()"),
        }
    }

    /// Registers (or fetches) a histogram series.
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        match self.handle(name, help, MetricKind::Histogram, labels) {
            Handle::Histogram(h) => h,
            _ => unreachable!("kind checked in handle()"),
        }
    }

    /// Snapshots every registered series, families in name order, series
    /// in label order.
    pub fn gather(&self) -> Vec<Sample> {
        let families = self.families.lock().unwrap();
        let mut samples = Vec::new();
        for (name, family) in families.iter() {
            for (labels, handle) in &family.series {
                let value = match handle {
                    Handle::Counter(c) => SampleValue::Counter(c.get()),
                    Handle::Gauge(g) => SampleValue::Gauge(g.get() as f64),
                    Handle::Histogram(h) => SampleValue::Histogram(h.snapshot()),
                };
                samples.push(Sample {
                    name: name.to_string(),
                    labels: labels.clone(),
                    value,
                });
            }
        }
        samples
    }

    /// The help string registered for a family (empty when unknown).
    pub fn help(&self, name: &str) -> &'static str {
        self.families
            .lock()
            .unwrap()
            .get(name)
            .map(|f| f.help)
            .unwrap_or("")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_shared() {
        let registry = Registry::new();
        let a = registry.counter("hits_total", "hits", &[("shard", "0")]);
        let b = registry.counter("hits_total", "hits", &[("shard", "0")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "same (name, labels) shares one cell");
        let other = registry.counter("hits_total", "hits", &[("shard", "1")]);
        assert_eq!(other.get(), 0, "different labels, different series");
    }

    #[test]
    fn gather_is_sorted_by_name_then_labels() {
        let registry = Registry::new();
        registry.gauge("z_depth", "depth", &[]).set(7);
        registry
            .counter("a_total", "a", &[("endpoint", "repair"), ("status", "400")])
            .inc();
        registry
            .counter("a_total", "a", &[("endpoint", "repair"), ("status", "200")])
            .add(2);
        let samples = registry.gather();
        let ids: Vec<String> = samples.iter().map(|s| s.id()).collect();
        assert_eq!(
            ids,
            vec![
                "a_total{endpoint=\"repair\",status=\"200\"}",
                "a_total{endpoint=\"repair\",status=\"400\"}",
                "z_depth",
            ]
        );
        assert_eq!(samples[0].value, SampleValue::Counter(2));
        assert_eq!(samples[2].value, SampleValue::Gauge(7.0));
    }

    #[test]
    #[should_panic(expected = "different kinds")]
    fn kind_conflict_is_a_programmer_error() {
        let registry = Registry::new();
        registry.counter("x_total", "x", &[]);
        registry.gauge("x_total", "x", &[]);
    }

    #[test]
    fn series_id_escapes_label_values() {
        let labels = vec![("path".to_string(), "a\"b\\c".to_string())];
        assert_eq!(series_id("m", &labels), "m{path=\"a\\\"b\\\\c\"}");
    }
}
