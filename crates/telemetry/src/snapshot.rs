//! The typed [`Snapshot`]: every section of the daemon's metrics document
//! as plain data, with two serializers and one decoder.
//!
//! - [`Snapshot::to_json`] renders the legacy `GET /metrics` JSON document
//!   **byte-for-byte** as it has always looked (section order, field
//!   order, pretty-printing) — pinned by a golden-file test in the server
//!   crate. Subsystems construct their own sections (the `section()`
//!   conversions on `OracleCacheStats`, `DedupStats`, `TransportStats`, …)
//!   so no field is hand-threaded through the server anymore.
//! - [`Snapshot::samples`] flattens the same state into typed
//!   [`Sample`]s — the canonical series list behind the Prometheus
//!   exposition ([`crate::prom`]), the history ring ([`crate::history`])
//!   and fleet aggregation ([`crate::aggregate`]).
//! - [`Snapshot::from_json`] decodes a legacy document back into a
//!   `Snapshot` — the typed replacement for loadgen's stringly
//!   `section.field` parsers, with the same descriptive errors. Latency
//!   histograms are *not* recovered (the legacy document carries only
//!   their summaries); decoded snapshots exist to reconcile counters.

use serde::Value;

use crate::metric::HistogramSnapshot;
use crate::registry::{Sample, SampleValue};

/// The `oracle_cache` section: the shared memoizing oracle's counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OracleCacheSection {
    /// Queries answered from the memo table.
    pub hits: u64,
    /// Queries that had to solve.
    pub misses: u64,
    /// Underlying analyzer invocations actually executed.
    pub solver_invocations: u64,
    /// Queries whose answer was an analyzer error.
    pub errors: u64,
    /// Memoized entries dropped to honor the per-shard capacity.
    pub evictions: u64,
    /// Fraction of queries answered from the cache.
    pub hit_rate: f64,
    /// Memoized spec entries currently held.
    pub memoized_specs: u64,
    /// Verdict queries answered by the persistent disk tier.
    pub persist_hits: u64,
    /// Queries collapsed onto an identical in-flight solve (singleflight).
    pub collapsed: u64,
}

/// The `candidate_dedup` section: the cross-technique candidate registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DedupSection {
    /// Validations answered from the registry.
    pub hits: u64,
    /// First-of-fingerprint validations that solved.
    pub misses: u64,
    /// Hits that waited on a concurrent in-flight solve.
    pub coalesced: u64,
    /// `hits / (hits + misses)`.
    pub rate: f64,
}

/// The `incremental` section: the incremental oracle's counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IncrementalSection {
    /// Persistent sessions created.
    pub sessions: u64,
    /// Candidate checks answered incrementally.
    pub checks: u64,
    /// Checks the engine declined (cold path answered).
    pub fallbacks: u64,
    /// Activation literals allocated.
    pub activation_vars: u64,
    /// Fraction of per-check clauses retained from earlier candidates.
    pub clause_reuse_rate: f64,
    /// Learnt clauses carried between checks.
    pub learned_clauses_retained: u64,
}

/// The `persistent` section, present when the daemon runs a `--cache-dir`
/// verdict tier.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PersistSection {
    /// Whether the tier is currently degraded (breaker open).
    pub degraded: bool,
    /// Entries recovered from disk at open.
    pub preloaded: u64,
    /// Corrupt or torn records skipped.
    pub quarantined: u64,
    /// Entries currently held in memory.
    pub live_entries: u64,
    /// Lines currently in the live log file.
    pub disk_lines: u64,
    /// Valid records currently in the live log file.
    pub disk_good: u64,
    /// Store lookups in total.
    pub lookups: u64,
    /// Store lookups that found a verdict.
    pub hits: u64,
    /// Records durably appended.
    pub appends: u64,
    /// Appends that failed.
    pub append_errors: u64,
    /// Records skipped while degraded.
    pub skipped_degraded: u64,
    /// Times the disk breaker tripped open.
    pub breaker_trips: u64,
    /// Completed compactions.
    pub compactions: u64,
    /// Failed compaction attempts.
    pub compaction_failures: u64,
    /// Injected write errors (chaos mode).
    pub injected_write_errors: u64,
    /// Injected short writes (chaos mode).
    pub injected_short_writes: u64,
    /// Injected bit flips (chaos mode).
    pub injected_bit_flips: u64,
}

/// The `transport` section: the LM resilience layer's counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TransportSection {
    /// Retried attempts.
    pub retries: u64,
    /// Calls whose retry budget was exhausted.
    pub giveups: u64,
    /// Circuit-breaker trips.
    pub breaker_trips: u64,
    /// Calls rejected by an open breaker.
    pub breaker_rejections: u64,
    /// Backoff waits cut short by cancellation.
    pub cancelled_backoffs: u64,
    /// Injected-fault counts per kind label, in taxonomy order (the
    /// `total` field of the document is derived, not stored).
    pub injected_faults: Vec<(String, u64)>,
}

impl TransportSection {
    /// Total injected faults across all kinds.
    pub fn total_faults(&self) -> u64 {
        self.injected_faults.iter().map(|(_, n)| n).sum()
    }
}

/// The `cluster` section of a shard daemon.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardClusterSection {
    /// This daemon's index into the peer list.
    pub shard_id: u64,
    /// Cluster size.
    pub peers: u64,
    /// Remote lookups attempted.
    pub remote_lookups: u64,
    /// Lookups a peer answered with a verdict.
    pub remote_hits: u64,
    /// Lookups a peer answered with "unknown fingerprint".
    pub remote_misses: u64,
    /// `remote_hits / remote_lookups`.
    pub remote_hit_rate: f64,
    /// Write-through records sent to owning peers.
    pub remote_puts: u64,
    /// Lookups/records skipped because this node owns the key.
    pub self_owned: u64,
    /// Calls that failed in transport.
    pub transport_errors: u64,
    /// Transport retries taken.
    pub retries: u64,
    /// Peer-breaker trips.
    pub breaker_trips: u64,
    /// Calls skipped because a peer breaker was open.
    pub skipped_open: u64,
    /// Peer breakers currently open.
    pub open_breakers: u64,
}

/// One shard row of the router's `cluster.shards` map.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RouterShardRow {
    /// The shard's address (the map key).
    pub addr: String,
    /// Calls forwarded successfully.
    pub forwarded: u64,
    /// Forward retries taken.
    pub retries: u64,
    /// Forward calls that failed after the retry.
    pub failures: u64,
    /// Whether the shard's breaker is currently open.
    pub breaker_open: bool,
}

/// The `cluster` section of a router.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RouterClusterSection {
    /// Per-shard forwarding counters, in ring order.
    pub shards: Vec<RouterShardRow>,
    /// Requests the router solved itself because the owner was down.
    pub degraded_local_solves: u64,
    /// Shard-breaker trips.
    pub breaker_trips: u64,
    /// Forwards skipped because the owner's breaker was open.
    pub skipped_open: u64,
}

/// The `cluster` section: off, a shard's view, or a router's view.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum ClusterSection {
    /// Not running in cluster mode (`{"enabled": false}`).
    #[default]
    Off,
    /// A shard daemon's remote-tier counters.
    Shard(ShardClusterSection),
    /// A router's per-shard forwarding counters.
    Router(RouterClusterSection),
}

/// The complete typed metrics snapshot of one daemon or router.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Milliseconds since boot.
    pub uptime_ms: u64,
    /// Current admission-queue depth.
    pub queue_depth: u64,
    /// Requests currently executing in workers.
    pub inflight: u64,
    /// Connections shed at admission.
    pub shed_total: u64,
    /// Repairs that hit their deadline.
    pub deadline_exceeded_total: u64,
    /// Request counts: endpoint → `(status, count)` rows, both sorted.
    pub requests: Vec<(String, Vec<(String, u64)>)>,
    /// Per-technique repair latency histograms, sorted by label.
    pub latency: Vec<(String, HistogramSnapshot)>,
    /// The shared oracle's cache counters.
    pub oracle_cache: OracleCacheSection,
    /// The candidate-dedup registry's counters.
    pub candidate_dedup: DedupSection,
    /// The incremental oracle's counters.
    pub incremental: IncrementalSection,
    /// The persistent verdict tier's counters (`None` renders
    /// `{"enabled": false}`).
    pub persistent: Option<PersistSection>,
    /// The cluster section.
    pub cluster: ClusterSection,
    /// The LM resilience layer's counters.
    pub transport: TransportSection,
}

impl Snapshot {
    /// Renders the legacy `GET /metrics` JSON document, byte-for-byte the
    /// historical format (golden-file pinned).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.to_value()).expect("metrics document always serializes")
    }

    /// The document as a JSON value tree.
    pub fn to_value(&self) -> Value {
        let requests = Value::Map(
            self.requests
                .iter()
                .map(|(endpoint, statuses)| {
                    (
                        endpoint.clone(),
                        Value::Map(
                            statuses
                                .iter()
                                .map(|(status, count)| (status.clone(), Value::U64(*count)))
                                .collect(),
                        ),
                    )
                })
                .collect(),
        );
        let latency = Value::Map(
            self.latency
                .iter()
                .map(|(technique, h)| (technique.clone(), h.to_value()))
                .collect(),
        );
        let o = &self.oracle_cache;
        let oracle_value = Value::Map(vec![
            ("hits".to_string(), Value::U64(o.hits)),
            ("misses".to_string(), Value::U64(o.misses)),
            (
                "solver_invocations".to_string(),
                Value::U64(o.solver_invocations),
            ),
            ("errors".to_string(), Value::U64(o.errors)),
            ("evictions".to_string(), Value::U64(o.evictions)),
            ("hit_rate".to_string(), Value::F64(o.hit_rate)),
            ("memoized_specs".to_string(), Value::U64(o.memoized_specs)),
            ("persist_hits".to_string(), Value::U64(o.persist_hits)),
            ("collapsed".to_string(), Value::U64(o.collapsed)),
        ]);
        let d = &self.candidate_dedup;
        let dedup_value = Value::Map(vec![
            ("dedup_hits".to_string(), Value::U64(d.hits)),
            ("dedup_misses".to_string(), Value::U64(d.misses)),
            ("dedup_coalesced".to_string(), Value::U64(d.coalesced)),
            ("dedup_rate".to_string(), Value::F64(d.rate)),
        ]);
        let i = &self.incremental;
        let incremental_value = Value::Map(vec![
            ("incremental_sessions".to_string(), Value::U64(i.sessions)),
            ("incremental_checks".to_string(), Value::U64(i.checks)),
            ("incremental_fallbacks".to_string(), Value::U64(i.fallbacks)),
            ("activation_vars".to_string(), Value::U64(i.activation_vars)),
            (
                "clause_reuse_rate".to_string(),
                Value::F64(i.clause_reuse_rate),
            ),
            (
                "learned_clauses_retained".to_string(),
                Value::U64(i.learned_clauses_retained),
            ),
        ]);
        let persistent_value = match &self.persistent {
            None => Value::Map(vec![("enabled".to_string(), Value::Bool(false))]),
            Some(p) => Value::Map(vec![
                ("enabled".to_string(), Value::Bool(true)),
                ("degraded".to_string(), Value::Bool(p.degraded)),
                ("preloaded".to_string(), Value::U64(p.preloaded)),
                ("quarantined".to_string(), Value::U64(p.quarantined)),
                ("live_entries".to_string(), Value::U64(p.live_entries)),
                ("disk_lines".to_string(), Value::U64(p.disk_lines)),
                ("disk_good".to_string(), Value::U64(p.disk_good)),
                ("lookups".to_string(), Value::U64(p.lookups)),
                ("hits".to_string(), Value::U64(p.hits)),
                ("appends".to_string(), Value::U64(p.appends)),
                ("append_errors".to_string(), Value::U64(p.append_errors)),
                (
                    "skipped_degraded".to_string(),
                    Value::U64(p.skipped_degraded),
                ),
                ("breaker_trips".to_string(), Value::U64(p.breaker_trips)),
                ("compactions".to_string(), Value::U64(p.compactions)),
                (
                    "compaction_failures".to_string(),
                    Value::U64(p.compaction_failures),
                ),
                (
                    "injected_write_errors".to_string(),
                    Value::U64(p.injected_write_errors),
                ),
                (
                    "injected_short_writes".to_string(),
                    Value::U64(p.injected_short_writes),
                ),
                (
                    "injected_bit_flips".to_string(),
                    Value::U64(p.injected_bit_flips),
                ),
            ]),
        };
        let cluster_value = match &self.cluster {
            ClusterSection::Off => Value::Map(vec![("enabled".to_string(), Value::Bool(false))]),
            ClusterSection::Shard(s) => Value::Map(vec![
                ("enabled".to_string(), Value::Bool(true)),
                ("role".to_string(), Value::Str("shard".to_string())),
                ("shard_id".to_string(), Value::U64(s.shard_id)),
                ("peers".to_string(), Value::U64(s.peers)),
                ("remote_lookups".to_string(), Value::U64(s.remote_lookups)),
                ("remote_hits".to_string(), Value::U64(s.remote_hits)),
                ("remote_misses".to_string(), Value::U64(s.remote_misses)),
                ("remote_hit_rate".to_string(), Value::F64(s.remote_hit_rate)),
                ("remote_puts".to_string(), Value::U64(s.remote_puts)),
                ("self_owned".to_string(), Value::U64(s.self_owned)),
                (
                    "transport_errors".to_string(),
                    Value::U64(s.transport_errors),
                ),
                ("retries".to_string(), Value::U64(s.retries)),
                ("breaker_trips".to_string(), Value::U64(s.breaker_trips)),
                ("skipped_open".to_string(), Value::U64(s.skipped_open)),
                ("open_breakers".to_string(), Value::U64(s.open_breakers)),
            ]),
            ClusterSection::Router(r) => {
                let per_shard = Value::Map(
                    r.shards
                        .iter()
                        .map(|row| {
                            (
                                row.addr.clone(),
                                Value::Map(vec![
                                    ("forwarded".to_string(), Value::U64(row.forwarded)),
                                    ("retries".to_string(), Value::U64(row.retries)),
                                    ("failures".to_string(), Value::U64(row.failures)),
                                    ("breaker_open".to_string(), Value::Bool(row.breaker_open)),
                                ]),
                            )
                        })
                        .collect(),
                );
                Value::Map(vec![
                    ("enabled".to_string(), Value::Bool(true)),
                    ("role".to_string(), Value::Str("router".to_string())),
                    ("shards".to_string(), per_shard),
                    (
                        "degraded_local_solves".to_string(),
                        Value::U64(r.degraded_local_solves),
                    ),
                    ("breaker_trips".to_string(), Value::U64(r.breaker_trips)),
                    ("skipped_open".to_string(), Value::U64(r.skipped_open)),
                ])
            }
        };
        let t = &self.transport;
        let mut injected: Vec<(String, Value)> = t
            .injected_faults
            .iter()
            .map(|(kind, n)| (kind.clone(), Value::U64(*n)))
            .collect();
        injected.push(("total".to_string(), Value::U64(t.total_faults())));
        let transport_value = Value::Map(vec![
            ("retries".to_string(), Value::U64(t.retries)),
            ("giveups".to_string(), Value::U64(t.giveups)),
            ("breaker_trips".to_string(), Value::U64(t.breaker_trips)),
            (
                "breaker_rejections".to_string(),
                Value::U64(t.breaker_rejections),
            ),
            (
                "cancelled_backoffs".to_string(),
                Value::U64(t.cancelled_backoffs),
            ),
            ("injected_faults".to_string(), Value::Map(injected)),
        ]);
        Value::Map(vec![
            ("uptime_ms".to_string(), Value::U64(self.uptime_ms)),
            ("queue_depth".to_string(), Value::U64(self.queue_depth)),
            ("inflight".to_string(), Value::U64(self.inflight)),
            ("shed_total".to_string(), Value::U64(self.shed_total)),
            (
                "deadline_exceeded_total".to_string(),
                Value::U64(self.deadline_exceeded_total),
            ),
            ("requests".to_string(), requests),
            ("latency_ms".to_string(), latency),
            ("oracle_cache".to_string(), oracle_value),
            ("candidate_dedup".to_string(), dedup_value),
            ("incremental".to_string(), incremental_value),
            ("persistent".to_string(), persistent_value),
            ("cluster".to_string(), cluster_value),
            ("transport".to_string(), transport_value),
        ])
    }

    /// Flattens the snapshot into the canonical series list: every scalar
    /// as a counter or gauge sample, every latency histogram as a
    /// histogram sample plus a companion `_max` gauge. This is the single
    /// source behind the Prometheus exposition, the history ring and fleet
    /// aggregation — one list, three consumers, no drift.
    pub fn samples(&self) -> Vec<Sample> {
        let mut out = Vec::new();
        let gauge = |out: &mut Vec<Sample>, name: &str, value: f64| {
            out.push(Sample {
                name: name.to_string(),
                labels: Vec::new(),
                value: SampleValue::Gauge(value),
            });
        };
        let counter = |out: &mut Vec<Sample>, name: &str, value: u64| {
            out.push(Sample {
                name: name.to_string(),
                labels: Vec::new(),
                value: SampleValue::Counter(value),
            });
        };
        gauge(&mut out, "specrepair_uptime_ms", self.uptime_ms as f64);
        gauge(&mut out, "specrepair_queue_depth", self.queue_depth as f64);
        gauge(&mut out, "specrepair_inflight", self.inflight as f64);
        counter(&mut out, "specrepair_shed_total", self.shed_total);
        counter(
            &mut out,
            "specrepair_deadline_exceeded_total",
            self.deadline_exceeded_total,
        );
        for (endpoint, statuses) in &self.requests {
            for (status, count) in statuses {
                out.push(Sample {
                    name: "specrepair_requests_total".to_string(),
                    labels: vec![
                        ("endpoint".to_string(), endpoint.clone()),
                        ("status".to_string(), status.clone()),
                    ],
                    value: SampleValue::Counter(*count),
                });
            }
        }
        for (technique, h) in &self.latency {
            let labels = vec![("technique".to_string(), technique.clone())];
            out.push(Sample {
                name: "specrepair_repair_latency_us".to_string(),
                labels: labels.clone(),
                value: SampleValue::Histogram(h.clone()),
            });
            out.push(Sample {
                name: "specrepair_repair_latency_us_max".to_string(),
                labels,
                value: SampleValue::Gauge(h.max_micros() as f64),
            });
        }
        let o = &self.oracle_cache;
        counter(&mut out, "specrepair_oracle_hits_total", o.hits);
        counter(&mut out, "specrepair_oracle_misses_total", o.misses);
        counter(
            &mut out,
            "specrepair_oracle_solver_invocations_total",
            o.solver_invocations,
        );
        counter(&mut out, "specrepair_oracle_errors_total", o.errors);
        counter(&mut out, "specrepair_oracle_evictions_total", o.evictions);
        gauge(&mut out, "specrepair_oracle_hit_rate", o.hit_rate);
        gauge(
            &mut out,
            "specrepair_oracle_memoized_specs",
            o.memoized_specs as f64,
        );
        counter(
            &mut out,
            "specrepair_oracle_persist_hits_total",
            o.persist_hits,
        );
        counter(&mut out, "specrepair_oracle_collapsed_total", o.collapsed);
        let d = &self.candidate_dedup;
        counter(&mut out, "specrepair_dedup_hits_total", d.hits);
        counter(&mut out, "specrepair_dedup_misses_total", d.misses);
        counter(&mut out, "specrepair_dedup_coalesced_total", d.coalesced);
        gauge(&mut out, "specrepair_dedup_rate", d.rate);
        let i = &self.incremental;
        counter(
            &mut out,
            "specrepair_incremental_sessions_total",
            i.sessions,
        );
        counter(&mut out, "specrepair_incremental_checks_total", i.checks);
        counter(
            &mut out,
            "specrepair_incremental_fallbacks_total",
            i.fallbacks,
        );
        counter(
            &mut out,
            "specrepair_incremental_activation_vars_total",
            i.activation_vars,
        );
        gauge(
            &mut out,
            "specrepair_incremental_clause_reuse_rate",
            i.clause_reuse_rate,
        );
        counter(
            &mut out,
            "specrepair_incremental_learned_clauses_retained_total",
            i.learned_clauses_retained,
        );
        gauge(
            &mut out,
            "specrepair_persist_enabled",
            u64::from(self.persistent.is_some()) as f64,
        );
        if let Some(p) = &self.persistent {
            gauge(
                &mut out,
                "specrepair_persist_degraded",
                u64::from(p.degraded) as f64,
            );
            gauge(&mut out, "specrepair_persist_preloaded", p.preloaded as f64);
            gauge(
                &mut out,
                "specrepair_persist_quarantined",
                p.quarantined as f64,
            );
            gauge(
                &mut out,
                "specrepair_persist_live_entries",
                p.live_entries as f64,
            );
            gauge(
                &mut out,
                "specrepair_persist_disk_lines",
                p.disk_lines as f64,
            );
            gauge(&mut out, "specrepair_persist_disk_good", p.disk_good as f64);
            counter(&mut out, "specrepair_persist_lookups_total", p.lookups);
            counter(&mut out, "specrepair_persist_hits_total", p.hits);
            counter(&mut out, "specrepair_persist_appends_total", p.appends);
            counter(
                &mut out,
                "specrepair_persist_append_errors_total",
                p.append_errors,
            );
            counter(
                &mut out,
                "specrepair_persist_skipped_degraded_total",
                p.skipped_degraded,
            );
            counter(
                &mut out,
                "specrepair_persist_breaker_trips_total",
                p.breaker_trips,
            );
            counter(
                &mut out,
                "specrepair_persist_compactions_total",
                p.compactions,
            );
            counter(
                &mut out,
                "specrepair_persist_compaction_failures_total",
                p.compaction_failures,
            );
            counter(
                &mut out,
                "specrepair_persist_injected_write_errors_total",
                p.injected_write_errors,
            );
            counter(
                &mut out,
                "specrepair_persist_injected_short_writes_total",
                p.injected_short_writes,
            );
            counter(
                &mut out,
                "specrepair_persist_injected_bit_flips_total",
                p.injected_bit_flips,
            );
        }
        match &self.cluster {
            ClusterSection::Off => {
                gauge(&mut out, "specrepair_cluster_enabled", 0.0);
            }
            ClusterSection::Shard(s) => {
                out.push(Sample {
                    name: "specrepair_cluster_enabled".to_string(),
                    labels: vec![("role".to_string(), "shard".to_string())],
                    value: SampleValue::Gauge(1.0),
                });
                gauge(&mut out, "specrepair_cluster_shard_id", s.shard_id as f64);
                gauge(&mut out, "specrepair_cluster_peers", s.peers as f64);
                counter(
                    &mut out,
                    "specrepair_remote_lookups_total",
                    s.remote_lookups,
                );
                counter(&mut out, "specrepair_remote_hits_total", s.remote_hits);
                counter(&mut out, "specrepair_remote_misses_total", s.remote_misses);
                gauge(&mut out, "specrepair_remote_hit_rate", s.remote_hit_rate);
                counter(&mut out, "specrepair_remote_puts_total", s.remote_puts);
                counter(&mut out, "specrepair_remote_self_owned_total", s.self_owned);
                counter(
                    &mut out,
                    "specrepair_remote_transport_errors_total",
                    s.transport_errors,
                );
                counter(&mut out, "specrepair_remote_retries_total", s.retries);
                counter(
                    &mut out,
                    "specrepair_remote_breaker_trips_total",
                    s.breaker_trips,
                );
                counter(
                    &mut out,
                    "specrepair_remote_skipped_open_total",
                    s.skipped_open,
                );
                gauge(
                    &mut out,
                    "specrepair_remote_open_breakers",
                    s.open_breakers as f64,
                );
            }
            ClusterSection::Router(r) => {
                out.push(Sample {
                    name: "specrepair_cluster_enabled".to_string(),
                    labels: vec![("role".to_string(), "router".to_string())],
                    value: SampleValue::Gauge(1.0),
                });
                for row in &r.shards {
                    let labels = vec![("shard".to_string(), row.addr.clone())];
                    out.push(Sample {
                        name: "specrepair_router_forwarded_total".to_string(),
                        labels: labels.clone(),
                        value: SampleValue::Counter(row.forwarded),
                    });
                    out.push(Sample {
                        name: "specrepair_router_retries_total".to_string(),
                        labels: labels.clone(),
                        value: SampleValue::Counter(row.retries),
                    });
                    out.push(Sample {
                        name: "specrepair_router_failures_total".to_string(),
                        labels: labels.clone(),
                        value: SampleValue::Counter(row.failures),
                    });
                    out.push(Sample {
                        name: "specrepair_router_breaker_open".to_string(),
                        labels,
                        value: SampleValue::Gauge(u64::from(row.breaker_open) as f64),
                    });
                }
                counter(
                    &mut out,
                    "specrepair_router_degraded_local_solves_total",
                    r.degraded_local_solves,
                );
                counter(
                    &mut out,
                    "specrepair_router_breaker_trips_total",
                    r.breaker_trips,
                );
                counter(
                    &mut out,
                    "specrepair_router_skipped_open_total",
                    r.skipped_open,
                );
            }
        }
        let t = &self.transport;
        counter(&mut out, "specrepair_transport_retries_total", t.retries);
        counter(&mut out, "specrepair_transport_giveups_total", t.giveups);
        counter(
            &mut out,
            "specrepair_transport_breaker_trips_total",
            t.breaker_trips,
        );
        counter(
            &mut out,
            "specrepair_transport_breaker_rejections_total",
            t.breaker_rejections,
        );
        counter(
            &mut out,
            "specrepair_transport_cancelled_backoffs_total",
            t.cancelled_backoffs,
        );
        for (kind, count) in &t.injected_faults {
            out.push(Sample {
                name: "specrepair_transport_injected_faults_total".to_string(),
                labels: vec![("kind".to_string(), kind.clone())],
                value: SampleValue::Counter(*count),
            });
        }
        out
    }

    /// Every scalar series as `(series id, value)` — counters and gauges
    /// directly, histograms as their `_count` and `_sum` series. The
    /// history ring records exactly this list each tick.
    pub fn scalars(&self) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        for sample in self.samples() {
            let id = sample.id();
            match &sample.value {
                SampleValue::Counter(n) => out.push((id, *n as f64)),
                SampleValue::Gauge(v) => out.push((id, *v)),
                SampleValue::Histogram(h) => {
                    out.push((
                        crate::registry::series_id(
                            &format!("{}_count", sample.name),
                            &sample.labels,
                        ),
                        h.count() as f64,
                    ));
                    out.push((
                        crate::registry::series_id(&format!("{}_sum", sample.name), &sample.labels),
                        h.sum_micros() as f64,
                    ));
                }
            }
        }
        out
    }

    /// Decodes a legacy `/metrics` JSON document.
    ///
    /// Scalars, the oracle/dedup/incremental sections and the cluster
    /// role are recovered; latency histograms are not (the document only
    /// carries their summaries) and decode to an empty list. The
    /// `persistent` field is `None` when the tier renders disabled.
    ///
    /// # Errors
    ///
    /// A human-readable description of exactly which expectation the body
    /// violates: not JSON, not an object, a missing section, a missing
    /// field, or a mistyped value.
    pub fn from_json(body: &str) -> Result<Snapshot, String> {
        let doc = MetricsDoc::parse(body)?;
        let mut snapshot = Snapshot {
            uptime_ms: doc.top_number_or("uptime_ms", 0.0) as u64,
            queue_depth: doc.top_number_or("queue_depth", 0.0) as u64,
            inflight: doc.top_number_or("inflight", 0.0) as u64,
            shed_total: doc.top_number_or("shed_total", 0.0) as u64,
            deadline_exceeded_total: doc.top_number_or("deadline_exceeded_total", 0.0) as u64,
            ..Snapshot::default()
        };
        snapshot.oracle_cache = OracleCacheSection {
            hits: doc.number("oracle_cache", "hits")? as u64,
            misses: doc.number("oracle_cache", "misses")? as u64,
            solver_invocations: doc.number_or("oracle_cache", "solver_invocations", 0.0) as u64,
            errors: doc.number_or("oracle_cache", "errors", 0.0) as u64,
            evictions: doc.number_or("oracle_cache", "evictions", 0.0) as u64,
            hit_rate: doc.number("oracle_cache", "hit_rate")?,
            memoized_specs: doc.number_or("oracle_cache", "memoized_specs", 0.0) as u64,
            persist_hits: doc.number_or("oracle_cache", "persist_hits", 0.0) as u64,
            collapsed: doc.number_or("oracle_cache", "collapsed", 0.0) as u64,
        };
        snapshot.candidate_dedup = DedupSection {
            hits: doc.number("candidate_dedup", "dedup_hits")? as u64,
            misses: doc.number_or("candidate_dedup", "dedup_misses", 0.0) as u64,
            coalesced: doc.number_or("candidate_dedup", "dedup_coalesced", 0.0) as u64,
            rate: doc.number("candidate_dedup", "dedup_rate")?,
        };
        snapshot.incremental = IncrementalSection {
            sessions: doc.number_or("incremental", "incremental_sessions", 0.0) as u64,
            checks: doc.number("incremental", "incremental_checks")? as u64,
            fallbacks: doc.number_or("incremental", "incremental_fallbacks", 0.0) as u64,
            activation_vars: doc.number_or("incremental", "activation_vars", 0.0) as u64,
            clause_reuse_rate: doc.number("incremental", "clause_reuse_rate")?,
            learned_clauses_retained: doc.number_or("incremental", "learned_clauses_retained", 0.0)
                as u64,
        };
        // `persistent` renders `{"enabled": false}` when the tier is off:
        // a missing `preloaded` field is the signal, not an error.
        snapshot.persistent = if doc.flag("persistent", "enabled") {
            Some(PersistSection {
                degraded: doc.flag("persistent", "degraded"),
                preloaded: doc.number("persistent", "preloaded")? as u64,
                quarantined: doc.number_or("persistent", "quarantined", 0.0) as u64,
                live_entries: doc.number_or("persistent", "live_entries", 0.0) as u64,
                disk_lines: doc.number_or("persistent", "disk_lines", 0.0) as u64,
                disk_good: doc.number_or("persistent", "disk_good", 0.0) as u64,
                lookups: doc.number_or("persistent", "lookups", 0.0) as u64,
                hits: doc.number_or("persistent", "hits", 0.0) as u64,
                appends: doc.number_or("persistent", "appends", 0.0) as u64,
                append_errors: doc.number_or("persistent", "append_errors", 0.0) as u64,
                skipped_degraded: doc.number_or("persistent", "skipped_degraded", 0.0) as u64,
                breaker_trips: doc.number_or("persistent", "breaker_trips", 0.0) as u64,
                compactions: doc.number_or("persistent", "compactions", 0.0) as u64,
                compaction_failures: doc.number_or("persistent", "compaction_failures", 0.0) as u64,
                injected_write_errors: doc.number_or("persistent", "injected_write_errors", 0.0)
                    as u64,
                injected_short_writes: doc.number_or("persistent", "injected_short_writes", 0.0)
                    as u64,
                injected_bit_flips: doc.number_or("persistent", "injected_bit_flips", 0.0) as u64,
            })
        } else {
            None
        };
        snapshot.cluster = if !doc.flag("cluster", "enabled") {
            ClusterSection::Off
        } else if doc.string("cluster", "role").as_deref() == Some("shard") {
            ClusterSection::Shard(ShardClusterSection {
                shard_id: doc.number_or("cluster", "shard_id", 0.0) as u64,
                peers: doc.number_or("cluster", "peers", 0.0) as u64,
                remote_lookups: doc.number_or("cluster", "remote_lookups", 0.0) as u64,
                remote_hits: doc.number_or("cluster", "remote_hits", 0.0) as u64,
                remote_misses: doc.number_or("cluster", "remote_misses", 0.0) as u64,
                remote_hit_rate: doc.number_or("cluster", "remote_hit_rate", 0.0),
                remote_puts: doc.number_or("cluster", "remote_puts", 0.0) as u64,
                self_owned: doc.number_or("cluster", "self_owned", 0.0) as u64,
                transport_errors: doc.number_or("cluster", "transport_errors", 0.0) as u64,
                retries: doc.number_or("cluster", "retries", 0.0) as u64,
                breaker_trips: doc.number_or("cluster", "breaker_trips", 0.0) as u64,
                skipped_open: doc.number_or("cluster", "skipped_open", 0.0) as u64,
                open_breakers: doc.number_or("cluster", "open_breakers", 0.0) as u64,
            })
        } else {
            ClusterSection::Router(RouterClusterSection {
                shards: Vec::new(),
                degraded_local_solves: doc.number_or("cluster", "degraded_local_solves", 0.0)
                    as u64,
                breaker_trips: doc.number_or("cluster", "breaker_trips", 0.0) as u64,
                skipped_open: doc.number_or("cluster", "skipped_open", 0.0) as u64,
            })
        };
        snapshot.transport = TransportSection {
            retries: doc.number_or("transport", "retries", 0.0) as u64,
            giveups: doc.number_or("transport", "giveups", 0.0) as u64,
            breaker_trips: doc.number_or("transport", "breaker_trips", 0.0) as u64,
            breaker_rejections: doc.number_or("transport", "breaker_rejections", 0.0) as u64,
            cancelled_backoffs: doc.number_or("transport", "cancelled_backoffs", 0.0) as u64,
            injected_faults: Vec::new(),
        };
        Ok(snapshot)
    }
}

/// A parsed `/metrics` JSON document with described-field access — the
/// decoding seam [`Snapshot::from_json`] (and any ad-hoc reconciliation)
/// is built on.
pub struct MetricsDoc {
    root: Vec<(String, Value)>,
}

impl MetricsDoc {
    /// Parses the body and checks it is a JSON object.
    ///
    /// # Errors
    ///
    /// "not valid JSON" or "not a JSON object", each described.
    pub fn parse(body: &str) -> Result<MetricsDoc, String> {
        let value: Value = serde_json::from_str(body)
            .map_err(|e| format!("/metrics body is not valid JSON: {e}"))?;
        let Value::Map(root) = value else {
            return Err("/metrics body is not a JSON object".to_string());
        };
        Ok(MetricsDoc { root })
    }

    fn top(&self, name: &str) -> Option<&Value> {
        self.root.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    fn section(&self, section: &str) -> Result<&Vec<(String, Value)>, String> {
        let sec = self
            .top(section)
            .ok_or(format!("/metrics document has no `{section}` section"))?;
        let Value::Map(sec) = sec else {
            return Err(format!("/metrics `{section}` is not an object"));
        };
        Ok(sec)
    }

    /// A top-level number, with a default when absent or mistyped.
    pub fn top_number_or(&self, name: &str, default: f64) -> f64 {
        match self.top(name) {
            Some(Value::F64(n)) => *n,
            Some(Value::U64(n)) => *n as f64,
            Some(Value::I64(n)) => *n as f64,
            _ => default,
        }
    }

    /// `{section}.{field}` as a number, describing exactly which
    /// expectation a malformed body violates.
    ///
    /// # Errors
    ///
    /// The missing section, the missing field, or the mistyped value.
    pub fn number(&self, section: &str, field: &str) -> Result<f64, String> {
        let sec = self.section(section)?;
        let num = sec
            .iter()
            .find(|(k, _)| k == field)
            .map(|(_, v)| v)
            .ok_or(format!("/metrics `{section}` has no `{field}` field"))?;
        match num {
            Value::F64(n) => Ok(*n),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(format!("`{section}.{field}` is not a number: {other:?}")),
        }
    }

    /// `{section}.{field}` as a number, with a default when the section or
    /// field is absent (older daemons) or mistyped.
    pub fn number_or(&self, section: &str, field: &str, default: f64) -> f64 {
        self.number(section, field).unwrap_or(default)
    }

    /// `{section}.{field}` as a boolean (false when absent or mistyped).
    pub fn flag(&self, section: &str, field: &str) -> bool {
        matches!(
            self.section(section)
                .ok()
                .and_then(|sec| sec.iter().find(|(k, _)| k == field).map(|(_, v)| v)),
            Some(Value::Bool(true))
        )
    }

    /// `{section}.{field}` as a string, `None` when absent or mistyped.
    pub fn string(&self, section: &str, field: &str) -> Option<String> {
        match self
            .section(section)
            .ok()
            .and_then(|sec| sec.iter().find(|(k, _)| k == field).map(|(_, v)| v))
        {
            Some(Value::Str(s)) => Some(s.clone()),
            _ => None,
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// A richly populated snapshot exercising every section.
    pub(crate) fn rich_snapshot() -> Snapshot {
        let mut icebar = HistogramSnapshot::default();
        icebar.record(1_500);
        let mut atr = HistogramSnapshot::default();
        atr.record(800);
        atr.record(2_100);
        Snapshot {
            uptime_ms: 12_345,
            queue_depth: 1,
            inflight: 1,
            shed_total: 1,
            deadline_exceeded_total: 1,
            requests: vec![
                ("admission".to_string(), vec![("503".to_string(), 1)]),
                (
                    "repair".to_string(),
                    vec![("200".to_string(), 2), ("400".to_string(), 1)],
                ),
            ],
            latency: vec![("ATR".to_string(), atr), ("ICEBAR".to_string(), icebar)],
            oracle_cache: OracleCacheSection {
                hits: 12,
                misses: 4,
                solver_invocations: 5,
                errors: 1,
                evictions: 2,
                hit_rate: 0.75,
                memoized_specs: 6,
                persist_hits: 3,
                collapsed: 1,
            },
            candidate_dedup: DedupSection {
                hits: 4,
                misses: 12,
                coalesced: 1,
                rate: 0.25,
            },
            incremental: IncrementalSection {
                sessions: 2,
                checks: 8,
                fallbacks: 1,
                activation_vars: 8,
                clause_reuse_rate: 0.75,
                learned_clauses_retained: 5,
            },
            persistent: Some(PersistSection {
                degraded: true,
                preloaded: 7,
                quarantined: 1,
                live_entries: 9,
                disk_lines: 11,
                disk_good: 10,
                lookups: 5,
                hits: 3,
                appends: 2,
                append_errors: 1,
                skipped_degraded: 1,
                breaker_trips: 1,
                compactions: 1,
                compaction_failures: 0,
                injected_write_errors: 2,
                injected_short_writes: 0,
                injected_bit_flips: 1,
            }),
            cluster: ClusterSection::Shard(ShardClusterSection {
                shard_id: 1,
                peers: 3,
                remote_lookups: 10,
                remote_hits: 4,
                remote_misses: 6,
                remote_hit_rate: 0.4,
                remote_puts: 5,
                self_owned: 2,
                transport_errors: 1,
                retries: 1,
                breaker_trips: 0,
                skipped_open: 0,
                open_breakers: 0,
            }),
            transport: TransportSection {
                retries: 3,
                giveups: 1,
                breaker_trips: 0,
                breaker_rejections: 0,
                cancelled_backoffs: 0,
                injected_faults: vec![
                    ("timeout".to_string(), 1),
                    ("rate_limit".to_string(), 2),
                    ("transient".to_string(), 0),
                    ("truncated".to_string(), 0),
                ],
            },
        }
    }

    #[test]
    fn json_round_trip_recovers_every_decoded_field() {
        let snapshot = rich_snapshot();
        let decoded = Snapshot::from_json(&snapshot.to_json()).expect("own document decodes");
        assert_eq!(decoded.uptime_ms, 12_345);
        assert_eq!(decoded.queue_depth, 1);
        assert_eq!(decoded.shed_total, 1);
        assert_eq!(decoded.oracle_cache, snapshot.oracle_cache);
        assert_eq!(decoded.candidate_dedup, snapshot.candidate_dedup);
        assert_eq!(decoded.incremental, snapshot.incremental);
        assert_eq!(decoded.persistent, snapshot.persistent);
        assert_eq!(decoded.cluster, snapshot.cluster);
        assert_eq!(decoded.transport.retries, 3);
        // Histogram detail is summary-only in the legacy document.
        assert!(decoded.latency.is_empty());
    }

    #[test]
    fn default_snapshot_renders_disabled_sections() {
        let doc = Snapshot::default().to_json();
        for needle in [
            "\"persistent\"",
            "\"enabled\": false",
            "\"cluster\"",
            "\"uptime_ms\": 0",
            "\"total\": 0",
        ] {
            assert!(doc.contains(needle), "missing {needle}:\n{doc}");
        }
    }

    #[test]
    fn router_cluster_section_renders_shard_rows() {
        let snapshot = Snapshot {
            cluster: ClusterSection::Router(RouterClusterSection {
                shards: vec![RouterShardRow {
                    addr: "127.0.0.1:7971".to_string(),
                    forwarded: 9,
                    retries: 1,
                    failures: 0,
                    breaker_open: false,
                }],
                degraded_local_solves: 2,
                breaker_trips: 1,
                skipped_open: 0,
            }),
            ..Snapshot::default()
        };
        let doc = snapshot.to_json();
        for needle in [
            "\"role\": \"router\"",
            "\"127.0.0.1:7971\"",
            "\"forwarded\": 9",
            "\"degraded_local_solves\": 2",
        ] {
            assert!(doc.contains(needle), "missing {needle}:\n{doc}");
        }
        let decoded = Snapshot::from_json(&doc).expect("router document decodes");
        assert!(matches!(decoded.cluster, ClusterSection::Router(ref r)
            if r.degraded_local_solves == 2 && r.breaker_trips == 1));
    }

    #[test]
    fn from_json_describes_each_malformation() {
        let cases: [(&str, &str); 5] = [
            ("not json at all", "not valid JSON"),
            ("[1,2,3]", "not a JSON object"),
            (r#"{"queue":{}}"#, "no `oracle_cache` section"),
            (
                r#"{"oracle_cache":{"hits":3,"misses":1}}"#,
                "no `hit_rate` field",
            ),
            (
                r#"{"oracle_cache":{"hits":1,"misses":1,"hit_rate":"high"}}"#,
                "not a number",
            ),
        ];
        for (body, expected) in cases {
            let err = Snapshot::from_json(body).unwrap_err();
            assert!(err.contains(expected), "{body} => {err}");
        }
    }

    #[test]
    fn from_json_requires_the_dedup_and_incremental_sections() {
        let base = r#"{"oracle_cache":{"hits":1,"misses":1,"hit_rate":0.5}}"#;
        let err = Snapshot::from_json(base).unwrap_err();
        assert!(err.contains("no `candidate_dedup` section"), "{err}");
        let with_dedup = r#"{"oracle_cache":{"hits":1,"misses":1,"hit_rate":0.5},
            "candidate_dedup":{"dedup_hits":7,"dedup_rate":0.25}}"#;
        let err = Snapshot::from_json(with_dedup).unwrap_err();
        assert!(err.contains("no `incremental` section"), "{err}");
    }

    #[test]
    fn from_json_treats_disabled_persistence_as_none() {
        let body = r#"{"oracle_cache":{"hits":1,"misses":1,"hit_rate":0.5},
            "candidate_dedup":{"dedup_hits":0,"dedup_rate":0},
            "incremental":{"incremental_checks":0,"clause_reuse_rate":0},
            "persistent":{"enabled":false}}"#;
        let snapshot = Snapshot::from_json(body).expect("decodes");
        assert_eq!(snapshot.persistent, None);
        assert_eq!(snapshot.cluster, ClusterSection::Off);
        // An enabled tier without its counters is a described error.
        let broken = body.replace("\"enabled\":false", "\"enabled\":true");
        let err = Snapshot::from_json(&broken).unwrap_err();
        assert!(err.contains("no `preloaded` field"), "{err}");
    }

    #[test]
    fn scalars_cover_histograms_as_count_and_sum() {
        let scalars = rich_snapshot().scalars();
        let find = |id: &str| {
            scalars
                .iter()
                .find(|(k, _)| k == id)
                .unwrap_or_else(|| panic!("no scalar {id}"))
                .1
        };
        assert_eq!(
            find("specrepair_repair_latency_us_count{technique=\"ATR\"}"),
            2.0
        );
        assert_eq!(
            find("specrepair_repair_latency_us_sum{technique=\"ATR\"}"),
            2_900.0
        );
        assert_eq!(
            find("specrepair_requests_total{endpoint=\"repair\",status=\"200\"}"),
            2.0
        );
        assert_eq!(find("specrepair_oracle_hit_rate"), 0.75);
        // No raw histogram entries leak into the scalar list.
        assert!(scalars
            .iter()
            .all(|(k, _)| !k.starts_with("specrepair_repair_latency_us{")));
    }
}
