//! Prometheus text exposition: [`render`] turns a [`Snapshot`]'s sample
//! list into the text format, [`parse`] reads it back into samples.
//!
//! The parser exists so the repo can verify its own exposition end to end
//! — the round-trip test asserts `parse(render(snapshot))` equals the
//! snapshot's own (sorted) sample list, including full histogram bucket
//! detail. Histograms follow the Prometheus convention exactly: one
//! `_bucket` line per log₂ upper bound with *cumulative* counts, a
//! trailing `+Inf` bucket, then `_sum` (microseconds) and `_count`.
//! Because the text format has no slot for a histogram's observed max,
//! each histogram family `X` travels with a companion gauge family
//! `X_max`; the parser folds it back into the decoded histogram so the
//! round trip loses nothing.

use std::collections::BTreeMap;

use crate::metric::{bucket_upper_micros, HistogramSnapshot, BUCKETS};
use crate::registry::{MetricKind, Sample, SampleValue};
use crate::snapshot::Snapshot;

/// Help text for every canonical family ([`Snapshot::samples`] names).
/// Unknown names render without a `# HELP` line.
pub fn help_text(name: &str) -> &'static str {
    match name {
        "specrepair_uptime_ms" => "Milliseconds since the daemon booted.",
        "specrepair_queue_depth" => "Requests waiting in the admission queue.",
        "specrepair_inflight" => "Requests currently executing in workers.",
        "specrepair_shed_total" => "Connections shed at admission.",
        "specrepair_deadline_exceeded_total" => "Repairs that exceeded their deadline.",
        "specrepair_requests_total" => "Requests served, by endpoint and status.",
        "specrepair_repair_latency_us" => "Repair latency in microseconds, by technique.",
        "specrepair_repair_latency_us_max" => {
            "Maximum observed repair latency in microseconds, by technique."
        }
        "specrepair_oracle_hits_total" => "Oracle queries answered from the memo table.",
        "specrepair_oracle_misses_total" => "Oracle queries that had to solve.",
        "specrepair_oracle_solver_invocations_total" => "Analyzer invocations executed.",
        "specrepair_oracle_errors_total" => "Oracle queries that ended in an analyzer error.",
        "specrepair_oracle_evictions_total" => "Memoized entries evicted for capacity.",
        "specrepair_oracle_hit_rate" => "Fraction of oracle queries answered from cache.",
        "specrepair_oracle_memoized_specs" => "Memoized spec entries currently held.",
        "specrepair_oracle_persist_hits_total" => "Verdicts answered by the persistent tier.",
        "specrepair_oracle_collapsed_total" => "Queries collapsed onto an in-flight solve.",
        "specrepair_dedup_hits_total" => "Candidate validations answered by the dedup registry.",
        "specrepair_dedup_misses_total" => "First-of-fingerprint candidate validations.",
        "specrepair_dedup_coalesced_total" => "Validations that waited on an in-flight solve.",
        "specrepair_dedup_rate" => "Fraction of validations answered by the dedup registry.",
        "specrepair_incremental_sessions_total" => "Incremental oracle sessions created.",
        "specrepair_incremental_checks_total" => "Checks answered incrementally.",
        "specrepair_incremental_fallbacks_total" => "Checks the incremental engine declined.",
        "specrepair_incremental_activation_vars_total" => "Activation literals allocated.",
        "specrepair_incremental_clause_reuse_rate" => "Fraction of per-check clauses reused.",
        "specrepair_incremental_learned_clauses_retained_total" => {
            "Learnt clauses carried between checks."
        }
        "specrepair_persist_enabled" => "Whether a persistent verdict tier is configured.",
        "specrepair_persist_degraded" => "Whether the persistent tier is degraded.",
        "specrepair_persist_preloaded" => "Entries recovered from disk at open.",
        "specrepair_persist_quarantined" => "Corrupt or torn records skipped at open.",
        "specrepair_persist_live_entries" => "Entries held in the persistent tier's memory.",
        "specrepair_persist_disk_lines" => "Lines currently in the live log file.",
        "specrepair_persist_disk_good" => "Valid records currently in the live log file.",
        "specrepair_persist_lookups_total" => "Persistent-tier lookups.",
        "specrepair_persist_hits_total" => "Persistent-tier lookups that found a verdict.",
        "specrepair_persist_appends_total" => "Records durably appended.",
        "specrepair_persist_append_errors_total" => "Appends that failed.",
        "specrepair_persist_skipped_degraded_total" => "Records skipped while degraded.",
        "specrepair_persist_breaker_trips_total" => "Disk-breaker trips.",
        "specrepair_persist_compactions_total" => "Completed log compactions.",
        "specrepair_persist_compaction_failures_total" => "Failed compaction attempts.",
        "specrepair_persist_injected_write_errors_total" => "Injected write errors (chaos).",
        "specrepair_persist_injected_short_writes_total" => "Injected short writes (chaos).",
        "specrepair_persist_injected_bit_flips_total" => "Injected bit flips (chaos).",
        "specrepair_cluster_enabled" => "Whether cluster mode is enabled, labeled by role.",
        "specrepair_cluster_shard_id" => "This daemon's index into the peer list.",
        "specrepair_cluster_peers" => "Cluster size.",
        "specrepair_remote_lookups_total" => "Remote verdict lookups attempted.",
        "specrepair_remote_hits_total" => "Remote lookups a peer answered with a verdict.",
        "specrepair_remote_misses_total" => "Remote lookups answered unknown.",
        "specrepair_remote_hit_rate" => "Fraction of remote lookups that hit.",
        "specrepair_remote_puts_total" => "Write-through records sent to owning peers.",
        "specrepair_remote_self_owned_total" => "Calls skipped because this node owns the key.",
        "specrepair_remote_transport_errors_total" => "Remote calls that failed in transport.",
        "specrepair_remote_retries_total" => "Remote transport retries.",
        "specrepair_remote_breaker_trips_total" => "Peer-breaker trips.",
        "specrepair_remote_skipped_open_total" => "Remote calls skipped on an open breaker.",
        "specrepair_remote_open_breakers" => "Peer breakers currently open.",
        "specrepair_router_forwarded_total" => "Requests forwarded, by shard.",
        "specrepair_router_retries_total" => "Forward retries, by shard.",
        "specrepair_router_failures_total" => "Forwards that failed after retry, by shard.",
        "specrepair_router_breaker_open" => "Whether the shard's breaker is open, by shard.",
        "specrepair_router_degraded_local_solves_total" => {
            "Requests the router solved itself because the owner was down."
        }
        "specrepair_router_breaker_trips_total" => "Shard-breaker trips at the router.",
        "specrepair_router_skipped_open_total" => "Forwards skipped on an open shard breaker.",
        "specrepair_transport_retries_total" => "LM transport attempts retried.",
        "specrepair_transport_giveups_total" => "LM calls whose retry budget was exhausted.",
        "specrepair_transport_breaker_trips_total" => "LM circuit-breaker trips.",
        "specrepair_transport_breaker_rejections_total" => "LM calls rejected by an open breaker.",
        "specrepair_transport_cancelled_backoffs_total" => {
            "LM backoff waits cut short by cancellation."
        }
        "specrepair_transport_injected_faults_total" => "Injected LM faults, by kind.",
        _ => "",
    }
}

/// Sorts samples by family name, then label set — the canonical order
/// both [`render`] and [`parse`] produce.
pub fn sort_samples(samples: &mut [Sample]) {
    samples.sort_by(|a, b| a.name.cmp(&b.name).then_with(|| a.labels.cmp(&b.labels)));
}

fn write_series(out: &mut String, name: &str, labels: &[(String, String)], extra_le: Option<&str>) {
    out.push_str(name);
    if !labels.is_empty() || extra_le.is_some() {
        out.push('{');
        let mut first = true;
        for (key, value) in labels {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(key);
            out.push_str("=\"");
            for c in value.chars() {
                match c {
                    '\\' => out.push_str("\\\\"),
                    '"' => out.push_str("\\\""),
                    '\n' => out.push_str("\\n"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        if let Some(le) = extra_le {
            if !first {
                out.push(',');
            }
            out.push_str("le=\"");
            out.push_str(le);
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
}

/// Renders the snapshot's sample list as Prometheus text exposition,
/// families sorted by name, series sorted by label set.
pub fn render(snapshot: &Snapshot) -> String {
    let mut samples = snapshot.samples();
    sort_samples(&mut samples);
    let mut out = String::new();
    let mut current_family: Option<&str> = None;
    for sample in &samples {
        if current_family != Some(sample.name.as_str()) {
            current_family = Some(sample.name.as_str());
            let help = help_text(&sample.name);
            if !help.is_empty() {
                out.push_str("# HELP ");
                out.push_str(&sample.name);
                out.push(' ');
                out.push_str(help);
                out.push('\n');
            }
            out.push_str("# TYPE ");
            out.push_str(&sample.name);
            out.push(' ');
            out.push_str(sample.kind().label());
            out.push('\n');
        }
        match &sample.value {
            SampleValue::Counter(n) => {
                write_series(&mut out, &sample.name, &sample.labels, None);
                out.push_str(&n.to_string());
                out.push('\n');
            }
            SampleValue::Gauge(v) => {
                write_series(&mut out, &sample.name, &sample.labels, None);
                out.push_str(&v.to_string());
                out.push('\n');
            }
            SampleValue::Histogram(h) => {
                let cumulative = h.cumulative();
                for (bucket, cum) in cumulative.iter().enumerate() {
                    let le = match bucket_upper_micros(bucket) {
                        Some(bound) => bound.to_string(),
                        None => "+Inf".to_string(),
                    };
                    write_series(
                        &mut out,
                        &format!("{}_bucket", sample.name),
                        &sample.labels,
                        Some(&le),
                    );
                    out.push_str(&cum.to_string());
                    out.push('\n');
                }
                write_series(
                    &mut out,
                    &format!("{}_sum", sample.name),
                    &sample.labels,
                    None,
                );
                out.push_str(&h.sum_micros().to_string());
                out.push('\n');
                write_series(
                    &mut out,
                    &format!("{}_count", sample.name),
                    &sample.labels,
                    None,
                );
                out.push_str(&h.count().to_string());
                out.push('\n');
            }
        }
    }
    out
}

/// One parsed exposition line: series name, labels, raw value text.
struct Line {
    name: String,
    labels: Vec<(String, String)>,
    value: String,
}

fn parse_line(line: &str, lineno: usize) -> Result<Line, String> {
    let err = |what: &str| format!("prom line {lineno}: {what}: {line:?}");
    let (series, value) = match line.find('{') {
        Some(_) => {
            let close = line.rfind('}').ok_or_else(|| err("unclosed label set"))?;
            (&line[..=close], line[close + 1..].trim())
        }
        None => {
            let space = line.find(' ').ok_or_else(|| err("no value"))?;
            (&line[..space], line[space + 1..].trim())
        }
    };
    if value.is_empty() {
        return Err(err("no value"));
    }
    let (name, labels) = match series.find('{') {
        None => (series.to_string(), Vec::new()),
        Some(brace) => {
            let name = series[..brace].to_string();
            let body = &series[brace + 1..series.len() - 1];
            let mut labels = Vec::new();
            let mut rest = body;
            while !rest.is_empty() {
                let eq = rest.find("=\"").ok_or_else(|| err("malformed label"))?;
                let key = rest[..eq].trim_start_matches(',').to_string();
                let mut value = String::new();
                let mut chars = rest[eq + 2..].char_indices();
                let mut consumed = None;
                while let Some((i, c)) = chars.next() {
                    match c {
                        '\\' => match chars.next() {
                            Some((_, '\\')) => value.push('\\'),
                            Some((_, '"')) => value.push('"'),
                            Some((_, 'n')) => value.push('\n'),
                            _ => return Err(err("bad escape in label value")),
                        },
                        '"' => {
                            consumed = Some(eq + 2 + i + 1);
                            break;
                        }
                        c => value.push(c),
                    }
                }
                let end = consumed.ok_or_else(|| err("unterminated label value"))?;
                labels.push((key, value));
                rest = &rest[end..];
            }
            (name, labels)
        }
    };
    Ok(Line {
        name,
        labels,
        value: value.to_string(),
    })
}

/// Accumulates one histogram series' `_bucket`/`_sum`/`_count` lines.
#[derive(Default)]
struct HistogramBuilder {
    buckets: Vec<(Option<u64>, u64)>,
    sum: Option<u64>,
    count: Option<u64>,
}

impl HistogramBuilder {
    fn finish(self, id: &str) -> Result<HistogramSnapshot, String> {
        let mut counts = [0u64; BUCKETS];
        let mut previous = 0u64;
        for (bucket, (le, cum)) in self.buckets.iter().enumerate() {
            if bucket >= BUCKETS {
                break;
            }
            if *le != bucket_upper_micros(bucket) {
                return Err(format!(
                    "histogram `{id}` bucket {bucket} has le {le:?}, expected {:?}",
                    bucket_upper_micros(bucket)
                ));
            }
            if *cum < previous {
                return Err(format!(
                    "histogram `{id}` cumulative counts decrease at bucket {bucket}"
                ));
            }
            counts[bucket] = cum - previous;
            previous = *cum;
        }
        if self.buckets.len() != BUCKETS {
            return Err(format!(
                "histogram `{id}` has {} buckets, expected {BUCKETS}",
                self.buckets.len()
            ));
        }
        let sum = self
            .sum
            .ok_or(format!("histogram `{id}` has no _sum line"))?;
        let count = self
            .count
            .ok_or(format!("histogram `{id}` has no _count line"))?;
        if previous != count {
            return Err(format!(
                "histogram `{id}` _count {count} disagrees with +Inf bucket {previous}"
            ));
        }
        Ok(HistogramSnapshot::from_parts(counts, count, sum, 0))
    }
}

/// Parses Prometheus text exposition back into samples, sorted by family
/// name then labels. Histogram `_bucket`/`_sum`/`_count` lines are folded
/// back into full [`SampleValue::Histogram`] values (cumulative counts
/// validated and de-accumulated), and each histogram's observed max is
/// recovered from its companion `{name}_max` gauge when present.
///
/// # Errors
///
/// A description of the first malformed line or inconsistent histogram.
pub fn parse(text: &str) -> Result<Vec<Sample>, String> {
    let mut kinds: BTreeMap<String, MetricKind> = BTreeMap::new();
    let mut scalars: Vec<Sample> = Vec::new();
    let mut histograms: BTreeMap<(String, Vec<(String, String)>), HistogramBuilder> =
        BTreeMap::new();
    for (index, raw) in text.lines().enumerate() {
        let lineno = index + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts
                .next()
                .ok_or(format!("prom line {lineno}: TYPE without a name"))?;
            let kind = match parts.next() {
                Some("counter") => MetricKind::Counter,
                Some("gauge") => MetricKind::Gauge,
                Some("histogram") => MetricKind::Histogram,
                other => {
                    return Err(format!(
                        "prom line {lineno}: unknown metric type {other:?} for `{name}`"
                    ))
                }
            };
            kinds.insert(name.to_string(), kind);
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let parsed = parse_line(line, lineno)?;
        // Histogram component lines route to their builder, keyed by the
        // base family and the label set minus `le`.
        let histogram_base = ["_bucket", "_sum", "_count"].iter().find_map(|suffix| {
            let base = parsed.name.strip_suffix(suffix)?;
            (kinds.get(base) == Some(&MetricKind::Histogram)).then(|| (base.to_string(), *suffix))
        });
        if let Some((base, suffix)) = histogram_base {
            let mut labels = parsed.labels.clone();
            let le = labels
                .iter()
                .position(|(k, _)| k == "le")
                .map(|i| labels.remove(i).1);
            let builder = histograms.entry((base, labels)).or_default();
            match suffix {
                "_bucket" => {
                    let le = le.ok_or(format!("prom line {lineno}: _bucket without le"))?;
                    let bound = if le == "+Inf" {
                        None
                    } else {
                        Some(
                            le.parse::<u64>()
                                .map_err(|e| format!("prom line {lineno}: bad le `{le}`: {e}"))?,
                        )
                    };
                    let cum = parsed
                        .value
                        .parse::<u64>()
                        .map_err(|e| format!("prom line {lineno}: bad bucket count: {e}"))?;
                    builder.buckets.push((bound, cum));
                }
                "_sum" => {
                    builder.sum = Some(
                        parsed
                            .value
                            .parse::<u64>()
                            .map_err(|e| format!("prom line {lineno}: bad _sum: {e}"))?,
                    );
                }
                _ => {
                    builder.count = Some(
                        parsed
                            .value
                            .parse::<u64>()
                            .map_err(|e| format!("prom line {lineno}: bad _count: {e}"))?,
                    );
                }
            }
            continue;
        }
        let value = match kinds.get(&parsed.name) {
            Some(MetricKind::Counter) => SampleValue::Counter(
                parsed
                    .value
                    .parse::<u64>()
                    .map_err(|e| format!("prom line {lineno}: bad counter value: {e}"))?,
            ),
            Some(MetricKind::Gauge) => SampleValue::Gauge(
                parsed
                    .value
                    .parse::<f64>()
                    .map_err(|e| format!("prom line {lineno}: bad gauge value: {e}"))?,
            ),
            Some(MetricKind::Histogram) => {
                return Err(format!(
                    "prom line {lineno}: bare sample for histogram family `{}`",
                    parsed.name
                ))
            }
            None => {
                return Err(format!(
                    "prom line {lineno}: sample for `{}` with no preceding # TYPE",
                    parsed.name
                ))
            }
        };
        scalars.push(Sample {
            name: parsed.name,
            labels: parsed.labels,
            value,
        });
    }
    let mut out = scalars;
    for ((name, labels), builder) in histograms {
        let id = crate::registry::series_id(&name, &labels);
        let mut snapshot = builder.finish(&id)?;
        // The text format has no max slot; recover it from the companion
        // `{name}_max` gauge with the same labels.
        let max_name = format!("{name}_max");
        if let Some(max) = out.iter().find_map(|s| match &s.value {
            SampleValue::Gauge(v) if s.name == max_name && s.labels == labels => Some(*v),
            _ => None,
        }) {
            snapshot.set_max_micros(max as u64);
        }
        out.push(Sample {
            name,
            labels,
            value: SampleValue::Histogram(snapshot),
        });
    }
    sort_samples(&mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::tests::rich_snapshot;

    #[test]
    fn render_parse_round_trips_every_sample_exactly() {
        let snapshot = rich_snapshot();
        let text = render(&snapshot);
        let parsed = parse(&text).expect("own exposition parses");
        let mut expected = snapshot.samples();
        sort_samples(&mut expected);
        assert_eq!(parsed.len(), expected.len());
        for (got, want) in parsed.iter().zip(expected.iter()) {
            assert_eq!(got, want, "series {}", want.id());
        }
    }

    #[test]
    fn histogram_exposition_is_cumulative_and_terminated_by_inf() {
        let text = render(&rich_snapshot());
        // ATR recorded 800µs and 2100µs: bucket le=1024 holds one
        // observation cumulatively, le=4096 both, and +Inf stays at 2.
        for needle in [
            "specrepair_repair_latency_us_bucket{technique=\"ATR\",le=\"1024\"} 1",
            "specrepair_repair_latency_us_bucket{technique=\"ATR\",le=\"4096\"} 2",
            "specrepair_repair_latency_us_bucket{technique=\"ATR\",le=\"+Inf\"} 2",
            "specrepair_repair_latency_us_sum{technique=\"ATR\"} 2900",
            "specrepair_repair_latency_us_count{technique=\"ATR\"} 2",
            "# TYPE specrepair_repair_latency_us histogram",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn parse_rejects_inconsistent_histograms() {
        let decreasing = "\
# TYPE h histogram
h_bucket{le=\"2\"} 5
h_bucket{le=\"4\"} 3
";
        let err = parse(decreasing).unwrap_err();
        assert!(err.contains("decrease"), "{err}");
        let no_type = "mystery_total 4\n";
        let err = parse(no_type).unwrap_err();
        assert!(err.contains("no preceding # TYPE"), "{err}");
        let bad_value = "# TYPE c counter\nc notanumber\n";
        let err = parse(bad_value).unwrap_err();
        assert!(err.contains("bad counter value"), "{err}");
    }

    #[test]
    fn parse_recovers_label_escapes() {
        let text = "# TYPE c counter\nc{path=\"a\\\"b\\\\c\"} 7\n";
        let samples = parse(text).expect("parses");
        assert_eq!(
            samples[0].labels,
            vec![("path".to_string(), "a\"b\\c".to_string())]
        );
        assert_eq!(samples[0].value, SampleValue::Counter(7));
    }

    #[test]
    fn every_canonical_family_has_help_text() {
        for sample in rich_snapshot().samples() {
            assert!(
                !help_text(&sample.name).is_empty(),
                "no help text for `{}`",
                sample.name
            );
        }
    }
}
