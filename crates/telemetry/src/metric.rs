//! The metric primitives: lock-free [`Counter`] and [`Gauge`] handles and
//! the log₂ latency [`Histogram`], each cheap enough for the daemon's
//! request hot path.
//!
//! The discipline mirrors the `trace` crate's: every hot-path operation is
//! a handful of relaxed atomic read-modify-writes — no locks, no
//! allocation, no wall clock. Reading happens through point-in-time
//! snapshots ([`Counter::get`], [`Histogram::snapshot`]), so a reporter
//! racing a writer sees a consistent-enough view without ever stalling it.
//!
//! Latencies land in log₂-bucketed histograms (microsecond resolution,
//! [`BUCKETS`] = 28 buckets ≈ 2¼ minutes of range), so p50/p90/p99/p99.9
//! are answered from ~200 bytes of state per technique no matter how many
//! requests have been served — the usual production trade of a
//! bucket-width error bound for O(1) memory.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use serde::Value;

/// Number of log₂ latency buckets: bucket `i` covers `[2^i, 2^(i+1))` µs,
/// the last bucket catches everything beyond ~2¼ minutes.
pub const BUCKETS: usize = 28;

/// The bucket an observation of `micros` lands in.
fn bucket_of(micros: u64) -> usize {
    (63 - micros.max(1).leading_zeros() as usize).min(BUCKETS - 1)
}

/// The exclusive upper bound of bucket `i` in microseconds, or `None` for
/// the last (unbounded, `+Inf`) bucket — the `le` bound of the Prometheus
/// `_bucket` line.
pub fn bucket_upper_micros(bucket: usize) -> Option<u64> {
    if bucket + 1 >= BUCKETS {
        None
    } else {
        Some(1u64 << (bucket + 1))
    }
}

/// A monotone counter. Cloning shares the underlying cell: the registry
/// hands out clones of one registered counter, and every holder increments
/// the same value.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh zeroed counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (queue depth, inflight
/// requests, breaker state). Signed so transient over-decrements in racy
/// shutdown paths clamp instead of wrapping.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// A fresh zeroed gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the value outright.
    pub fn set(&self, value: i64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Adjusts the value by `delta` (negative to decrement).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Current value clamped at zero (for gauges that are logically
    /// unsigned, like queue depths).
    pub fn get_unsigned(&self) -> u64 {
        self.get().max(0) as u64
    }
}

/// A fixed-size log₂ histogram of microsecond latencies, recordable from
/// any thread without locking. Reading goes through [`Histogram::snapshot`].
#[derive(Debug, Default)]
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl Histogram {
    /// A fresh empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation: four relaxed atomic updates, no lock.
    pub fn record(&self, micros: u64) {
        self.counts[bucket_of(micros)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// A point-in-time copy for rendering and percentile math.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; BUCKETS];
        for (slot, counter) in counts.iter_mut().zip(&self.counts) {
            *slot = counter.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            counts,
            count: self.count.load(Ordering::Relaxed),
            sum_micros: self.sum_micros.load(Ordering::Relaxed),
            max_micros: self.max_micros.load(Ordering::Relaxed),
        }
    }
}

/// A plain-value histogram: the snapshot form of [`Histogram`], and the
/// single-threaded recorder used by clients (loadgen) that never share one
/// across threads. Supports merging, so fleet aggregation can sum
/// per-shard histograms bucket-wise without losing percentile fidelity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: [u64; BUCKETS],
    count: u64,
    sum_micros: u64,
    max_micros: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            counts: [0; BUCKETS],
            count: 0,
            sum_micros: 0,
            max_micros: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Reassembles a snapshot from its parts (the Prometheus parser's
    /// path: per-bucket counts, total count, sum and max).
    pub fn from_parts(
        counts: [u64; BUCKETS],
        count: u64,
        sum_micros: u64,
        max_micros: u64,
    ) -> HistogramSnapshot {
        HistogramSnapshot {
            counts,
            count,
            sum_micros,
            max_micros,
        }
    }

    /// Overwrites the observed maximum — used by the exposition parser,
    /// which recovers the max from a companion gauge series.
    pub fn set_max_micros(&mut self, micros: u64) {
        self.max_micros = micros;
    }

    /// Records one observation.
    pub fn record(&mut self, micros: u64) {
        self.counts[bucket_of(micros)] += 1;
        self.count += 1;
        self.sum_micros += micros;
        self.max_micros = self.max_micros.max(micros);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations in microseconds.
    pub fn sum_micros(&self) -> u64 {
        self.sum_micros
    }

    /// Largest observation in microseconds.
    pub fn max_micros(&self) -> u64 {
        self.max_micros
    }

    /// Per-bucket counts.
    pub fn counts(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// Cumulative per-bucket counts — `cumulative()[i]` is the number of
    /// observations `< bucket i`'s upper bound, exactly the value a
    /// Prometheus `_bucket{le=...}` line carries. The last entry equals
    /// [`HistogramSnapshot::count`].
    pub fn cumulative(&self) -> [u64; BUCKETS] {
        let mut cumulative = [0u64; BUCKETS];
        let mut seen = 0u64;
        for (slot, &c) in cumulative.iter_mut().zip(&self.counts) {
            seen += c;
            *slot = seen;
        }
        cumulative
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_micros(&self) -> u64 {
        self.sum_micros.checked_div(self.count).unwrap_or(0)
    }

    /// Approximate `q`-quantile in microseconds: the upper bound of the
    /// first bucket whose cumulative count reaches `q · total`, clamped to
    /// the maximum observed value. `None` when empty.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper = bucket_upper_micros(i).unwrap_or(u64::MAX);
                return Some(upper.min(self.max_micros.max(1)));
            }
        }
        Some(self.max_micros)
    }

    /// The p99.9 quantile in microseconds — the tail bound corpus-scale
    /// campaigns gate on. `None` when empty.
    pub fn p999_micros(&self) -> Option<u64> {
        self.percentile(0.999)
    }

    /// Folds another histogram into this one, bucket-wise: counts and sums
    /// add, the max takes the larger — the fleet-aggregation primitive.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_micros += other.sum_micros;
        self.max_micros = self.max_micros.max(other.max_micros);
    }

    /// The legacy `/metrics` JSON shape: `count`, `mean_ms`, `p50_ms`,
    /// `p90_ms`, `p99_ms`, `max_ms` — byte-for-byte what the document has
    /// always carried (no p99.9 here; that lives in the richer
    /// [`HistogramSnapshot::summary_value`] and the Prometheus exposition).
    pub fn to_value(&self) -> Value {
        let ms = |micros: Option<u64>| Value::F64(micros.unwrap_or(0) as f64 / 1000.0);
        Value::Map(vec![
            ("count".to_string(), Value::U64(self.count)),
            (
                "mean_ms".to_string(),
                Value::F64(self.mean_micros() as f64 / 1000.0),
            ),
            ("p50_ms".to_string(), ms(self.percentile(0.50))),
            ("p90_ms".to_string(), ms(self.percentile(0.90))),
            ("p99_ms".to_string(), ms(self.percentile(0.99))),
            (
                "max_ms".to_string(),
                Value::F64(self.max_micros as f64 / 1000.0),
            ),
        ])
    }

    /// The extended summary used by new surfaces (`/cluster/metrics`):
    /// the legacy fields plus `p999_ms`.
    pub fn summary_value(&self) -> Value {
        let ms = |micros: Option<u64>| Value::F64(micros.unwrap_or(0) as f64 / 1000.0);
        Value::Map(vec![
            ("count".to_string(), Value::U64(self.count)),
            (
                "mean_ms".to_string(),
                Value::F64(self.mean_micros() as f64 / 1000.0),
            ),
            ("p50_ms".to_string(), ms(self.percentile(0.50))),
            ("p90_ms".to_string(), ms(self.percentile(0.90))),
            ("p99_ms".to_string(), ms(self.percentile(0.99))),
            ("p999_ms".to_string(), ms(self.p999_micros())),
            (
                "max_ms".to_string(),
                Value::F64(self.max_micros as f64 / 1000.0),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_share_through_clones() {
        let c = Counter::new();
        let c2 = c.clone();
        c.inc();
        c2.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        let g2 = g.clone();
        g.add(3);
        g2.add(-1);
        assert_eq!(g.get(), 2);
        g.add(-5);
        assert_eq!(g.get(), -3);
        assert_eq!(g.get_unsigned(), 0, "unsigned view clamps at zero");
    }

    #[test]
    fn atomic_histogram_snapshot_matches_plain_recording() {
        let atomic = Histogram::new();
        let mut plain = HistogramSnapshot::default();
        for micros in [100, 200, 300, 400, 500, 10_000, 20_000, 900_000] {
            atomic.record(micros);
            plain.record(micros);
        }
        assert_eq!(atomic.snapshot(), plain);
    }

    #[test]
    fn percentiles_are_ordered_and_bounded() {
        let mut h = HistogramSnapshot::default();
        for micros in [100, 200, 300, 400, 500, 10_000, 20_000, 900_000] {
            h.record(micros);
        }
        assert_eq!(h.count(), 8);
        let p50 = h.percentile(0.50).unwrap();
        let p90 = h.percentile(0.90).unwrap();
        let p99 = h.percentile(0.99).unwrap();
        let p999 = h.p999_micros().unwrap();
        assert!(
            p50 <= p90 && p90 <= p99 && p99 <= p999,
            "{p50} {p90} {p99} {p999}"
        );
        assert!(p999 <= 900_000, "clamped to the observed max");
        assert!((256..=1024).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn empty_and_zero_observations() {
        let mut h = HistogramSnapshot::default();
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.p999_micros(), None);
        assert_eq!(h.mean_micros(), 0);
        h.record(0); // clamped into the first bucket
        assert_eq!(h.count(), 1);
        assert!(h.percentile(0.999).is_some());
    }

    #[test]
    fn single_sample_pins_every_percentile() {
        let mut h = HistogramSnapshot::default();
        h.record(1_000);
        for q in [0.0, 0.01, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(h.percentile(q), Some(1_000), "q = {q}");
        }
        assert_eq!(h.mean_micros(), 1_000);
    }

    #[test]
    fn bucket_bounds_are_powers_of_two_with_inf_tail() {
        assert_eq!(bucket_upper_micros(0), Some(2));
        assert_eq!(bucket_upper_micros(9), Some(1_024));
        assert_eq!(bucket_upper_micros(BUCKETS - 2), Some(1 << (BUCKETS - 1)));
        assert_eq!(
            bucket_upper_micros(BUCKETS - 1),
            None,
            "last bucket is +Inf"
        );
    }

    #[test]
    fn cumulative_counts_are_monotone_and_end_at_total() {
        let mut h = HistogramSnapshot::default();
        for micros in [1, 3, 3, 1_000, 5_000_000] {
            h.record(micros);
        }
        let cumulative = h.cumulative();
        for window in cumulative.windows(2) {
            assert!(window[0] <= window[1], "cumulative counts are monotone");
        }
        assert_eq!(cumulative[BUCKETS - 1], h.count());
        // The observation at 1 µs lands below the first bound (2 µs).
        assert_eq!(cumulative[0], 1);
    }

    #[test]
    fn p999_separates_a_thin_tail_p99_misses() {
        // 500 fast observations and 1 slow one: p99's rank (496) stays in
        // the fast cluster, p99.9's rank (501) must reach the tail.
        let mut h = HistogramSnapshot::default();
        for _ in 0..500 {
            h.record(100);
        }
        h.record(60_000_000);
        assert!(h.percentile(0.99).unwrap() <= 128);
        assert_eq!(h.p999_micros(), Some(60_000_000));
        assert_eq!(h.percentile(1.0), Some(60_000_000));
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let mut a = HistogramSnapshot::default();
        let mut b = HistogramSnapshot::default();
        let mut all = HistogramSnapshot::default();
        for micros in [10, 500, 90_000] {
            a.record(micros);
            all.record(micros);
        }
        for micros in [20, 20, 7_000_000] {
            b.record(micros);
            all.record(micros);
        }
        a.merge(&b);
        assert_eq!(a, all);
        assert_eq!(a.count(), 6);
        assert_eq!(a.max_micros(), 7_000_000);
    }

    #[test]
    fn exact_bucket_boundary_lands_in_upper_bucket() {
        let mut h = HistogramSnapshot::default();
        h.record(1_024);
        assert_eq!(h.percentile(0.5), Some(1_024));
        h.record(1_023);
        assert_eq!(h.percentile(0.5), Some(1_024));
        assert_eq!(h.percentile(1.0), Some(1_024));
    }
}
