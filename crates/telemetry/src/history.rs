//! The time-series layer: a fixed-capacity ring of scalar samples.
//!
//! A sampler thread (owned by the server) calls [`History::record`] with
//! [`crate::snapshot::Snapshot::scalars`] every `--metrics-history-interval`.
//! Samples carry a deterministic tick index (0, 1, 2, …) rather than a
//! wall-clock timestamp, so test assertions and replayed studies don't
//! depend on scheduler timing; the configured interval is reported once in
//! the document header for anyone who wants real time back. When the ring
//! is full the oldest sample is dropped and counted.

use std::collections::VecDeque;
use std::sync::Mutex;

use serde::Value;

/// One recorded sample: the tick index and every scalar series.
#[derive(Debug, Clone)]
pub struct HistorySample {
    /// Deterministic tick index, starting at 0.
    pub index: u64,
    /// `(series id, value)` pairs, in canonical snapshot order.
    pub values: Vec<(String, f64)>,
}

#[derive(Debug, Default)]
struct Ring {
    next_index: u64,
    dropped: u64,
    samples: VecDeque<HistorySample>,
}

/// A bounded in-memory time series of metric scalars.
#[derive(Debug)]
pub struct History {
    capacity: usize,
    interval_ms: u64,
    ring: Mutex<Ring>,
}

impl History {
    /// A ring holding at most `capacity` samples, taken every
    /// `interval_ms` (reported in the document; the caller owns the
    /// actual timer).
    pub fn new(capacity: usize, interval_ms: u64) -> History {
        History {
            capacity: capacity.max(1),
            interval_ms,
            ring: Mutex::new(Ring::default()),
        }
    }

    /// The configured sampling interval in milliseconds.
    pub fn interval_ms(&self) -> u64 {
        self.interval_ms
    }

    /// Records one sample and returns its tick index. Drops the oldest
    /// sample when full.
    pub fn record(&self, values: Vec<(String, f64)>) -> u64 {
        let mut ring = self.ring.lock().unwrap();
        let index = ring.next_index;
        ring.next_index += 1;
        if ring.samples.len() == self.capacity {
            ring.samples.pop_front();
            ring.dropped += 1;
        }
        ring.samples.push_back(HistorySample { index, values });
        index
    }

    /// Samples currently retained, oldest first.
    pub fn samples(&self) -> Vec<HistorySample> {
        self.ring.lock().unwrap().samples.iter().cloned().collect()
    }

    /// Renders the `GET /metrics/history` document.
    pub fn to_json(&self) -> String {
        let ring = self.ring.lock().unwrap();
        let samples = Value::Seq(
            ring.samples
                .iter()
                .map(|sample| {
                    Value::Map(vec![
                        ("index".to_string(), Value::U64(sample.index)),
                        (
                            "values".to_string(),
                            Value::Map(
                                sample
                                    .values
                                    .iter()
                                    .map(|(id, v)| (id.clone(), Value::F64(*v)))
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        let doc = Value::Map(vec![
            ("enabled".to_string(), Value::Bool(true)),
            ("interval_ms".to_string(), Value::U64(self.interval_ms)),
            ("capacity".to_string(), Value::U64(self.capacity as u64)),
            ("dropped".to_string(), Value::U64(ring.dropped)),
            (
                "retained".to_string(),
                Value::U64(ring.samples.len() as u64),
            ),
            ("samples".to_string(), samples),
        ]);
        serde_json::to_string_pretty(&doc).expect("history document serializes")
    }

    /// Renders the drain dump: one compact JSON object per line
    /// (`metrics_history.jsonl`), oldest first.
    pub fn dump_jsonl(&self) -> String {
        let ring = self.ring.lock().unwrap();
        let mut out = String::new();
        for sample in &ring.samples {
            let line = Value::Map(vec![
                ("index".to_string(), Value::U64(sample.index)),
                (
                    "values".to_string(),
                    Value::Map(
                        sample
                            .values
                            .iter()
                            .map(|(id, v)| (id.clone(), Value::F64(*v)))
                            .collect(),
                    ),
                ),
            ]);
            out.push_str(&serde_json::to_string(&line).expect("history line serializes"));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(value: f64) -> Vec<(String, f64)> {
        vec![("specrepair_queue_depth".to_string(), value)]
    }

    #[test]
    fn indices_are_deterministic_and_survive_eviction() {
        let history = History::new(3, 250);
        for i in 0..5 {
            assert_eq!(history.record(sample(i as f64)), i);
        }
        let samples = history.samples();
        assert_eq!(
            samples.iter().map(|s| s.index).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "ring keeps the newest samples with their original indices"
        );
        let doc = history.to_json();
        for needle in [
            "\"interval_ms\": 250",
            "\"capacity\": 3",
            "\"dropped\": 2",
            "\"retained\": 3",
        ] {
            assert!(doc.contains(needle), "missing {needle}:\n{doc}");
        }
    }

    #[test]
    fn jsonl_dump_is_one_compact_object_per_line() {
        let history = History::new(8, 100);
        history.record(sample(1.0));
        history.record(sample(2.0));
        let dump = history.dump_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"index\":0"), "{}", lines[0]);
        assert!(lines[1].contains("\"index\":1"), "{}", lines[1]);
        assert!(!lines[0].contains('\n'));
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let history = History::new(0, 100);
        history.record(sample(1.0));
        history.record(sample(2.0));
        assert_eq!(history.samples().len(), 1);
    }
}
