//! `specrepair-telemetry`: the unified, std-only metric layer.
//!
//! Every subsystem used to keep its own ad-hoc stats struct and the
//! server hand-threaded each one into a bespoke JSON renderer; loadgen
//! then re-parsed that JSON stringly. This crate replaces that sprawl
//! with one typed pipeline:
//!
//! 1. [`metric`] — the primitives: [`Counter`], [`Gauge`] and the log₂
//!    [`Histogram`] (promoted from the server crate), all with lock-free
//!    relaxed-atomic hot paths, plus the immutable [`HistogramSnapshot`].
//! 2. [`registry`] — named, labeled families with idempotent static
//!    registration and deterministic [`Registry::gather`] order.
//! 3. [`snapshot`] — the typed [`Snapshot`] of a whole daemon:
//!    byte-compatible legacy JSON out ([`Snapshot::to_json`]), typed
//!    decoding back in ([`Snapshot::from_json`]), and the canonical
//!    flattened sample list ([`Snapshot::samples`]).
//! 4. [`prom`] — Prometheus text exposition for `GET /metrics/prom`,
//!    with an in-repo parser so the round trip is testable.
//! 5. [`history`] — the fixed-capacity time-series ring behind
//!    `GET /metrics/history` and the `metrics_history.jsonl` drain dump.
//! 6. [`aggregate`] — fleet-wide merging behind the router's
//!    `GET /cluster/metrics`.
//!
//! The crate depends only on the vendored `serde`/`serde_json` used
//! everywhere else in the workspace — no external dependencies.

pub mod aggregate;
pub mod history;
pub mod metric;
pub mod prom;
pub mod registry;
pub mod snapshot;

pub use aggregate::{fleet_document, ShardScrape};
pub use history::{History, HistorySample};
pub use metric::{bucket_upper_micros, Counter, Gauge, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{series_id, MetricKind, Registry, Sample, SampleValue};
pub use snapshot::{
    ClusterSection, DedupSection, IncrementalSection, MetricsDoc, OracleCacheSection,
    PersistSection, RouterClusterSection, RouterShardRow, ShardClusterSection, Snapshot,
    TransportSection,
};
