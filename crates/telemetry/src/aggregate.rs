//! Fleet-wide aggregation: merging per-shard sample lists into one
//! `GET /cluster/metrics` document.
//!
//! The router scrapes every shard's `/metrics/prom` (breaker-guarded, so
//! a dead shard can't stall the scrape loop) and hands the parsed sample
//! lists here. Merging is by series identity ([`Sample::id`]): counters
//! sum, gauges report min/max/mean across shards, histograms merge
//! bucketwise and render their full summary (including p99.9). Shards
//! whose scrape failed are reported with `stale: true` and the error, and
//! are simply absent from the aggregates — partial fleets still serve.

use std::collections::BTreeMap;

use serde::Value;

use crate::metric::HistogramSnapshot;
use crate::registry::{Sample, SampleValue};

/// One shard's scrape result: its samples, or the error that kept it out
/// of the aggregates.
#[derive(Debug, Clone)]
pub struct ShardScrape {
    /// The shard's address, used as its key in the document.
    pub addr: String,
    /// Why the scrape failed (`None` means fresh samples below).
    pub error: Option<String>,
    /// Parsed samples (empty when the scrape failed).
    pub samples: Vec<Sample>,
}

impl ShardScrape {
    /// A successful scrape.
    pub fn fresh(addr: impl Into<String>, samples: Vec<Sample>) -> ShardScrape {
        ShardScrape {
            addr: addr.into(),
            error: None,
            samples,
        }
    }

    /// A failed scrape: the shard is reported stale and excluded from
    /// aggregates.
    pub fn stale(addr: impl Into<String>, error: impl Into<String>) -> ShardScrape {
        ShardScrape {
            addr: addr.into(),
            error: Some(error.into()),
            samples: Vec::new(),
        }
    }
}

#[derive(Default)]
struct GaugeSpread {
    min: f64,
    max: f64,
    sum: f64,
    shards: u64,
}

/// Builds the fleet document from every shard's scrape result.
pub fn fleet_document(scrapes: &[ShardScrape]) -> String {
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut gauges: BTreeMap<String, GaugeSpread> = BTreeMap::new();
    let mut histograms: BTreeMap<String, HistogramSnapshot> = BTreeMap::new();
    let mut shards_ok = 0u64;
    for scrape in scrapes {
        if scrape.error.is_some() {
            continue;
        }
        shards_ok += 1;
        for sample in &scrape.samples {
            let id = sample.id();
            match &sample.value {
                SampleValue::Counter(n) => *counters.entry(id).or_insert(0) += n,
                SampleValue::Gauge(v) => {
                    let spread = gauges.entry(id).or_default();
                    if spread.shards == 0 {
                        spread.min = *v;
                        spread.max = *v;
                    } else {
                        spread.min = spread.min.min(*v);
                        spread.max = spread.max.max(*v);
                    }
                    spread.sum += *v;
                    spread.shards += 1;
                }
                SampleValue::Histogram(h) => {
                    histograms.entry(id).or_default().merge(h);
                }
            }
        }
    }
    let shards = Value::Map(
        scrapes
            .iter()
            .map(|scrape| {
                let mut entry = vec![("stale".to_string(), Value::Bool(scrape.error.is_some()))];
                if let Some(error) = &scrape.error {
                    entry.push(("error".to_string(), Value::Str(error.clone())));
                } else {
                    entry.push((
                        "series".to_string(),
                        Value::U64(scrape.samples.len() as u64),
                    ));
                }
                (scrape.addr.clone(), Value::Map(entry))
            })
            .collect(),
    );
    let doc = Value::Map(vec![
        ("enabled".to_string(), Value::Bool(true)),
        ("role".to_string(), Value::Str("fleet".to_string())),
        ("shards_total".to_string(), Value::U64(scrapes.len() as u64)),
        ("shards_ok".to_string(), Value::U64(shards_ok)),
        (
            "shards_stale".to_string(),
            Value::U64(scrapes.len() as u64 - shards_ok),
        ),
        ("shards".to_string(), shards),
        (
            "counters".to_string(),
            Value::Map(
                counters
                    .into_iter()
                    .map(|(id, n)| (id, Value::U64(n)))
                    .collect(),
            ),
        ),
        (
            "gauges".to_string(),
            Value::Map(
                gauges
                    .into_iter()
                    .map(|(id, spread)| {
                        (
                            id,
                            Value::Map(vec![
                                ("min".to_string(), Value::F64(spread.min)),
                                ("max".to_string(), Value::F64(spread.max)),
                                (
                                    "mean".to_string(),
                                    Value::F64(spread.sum / spread.shards as f64),
                                ),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
        (
            "histograms".to_string(),
            Value::Map(
                histograms
                    .into_iter()
                    .map(|(id, h)| (id, h.summary_value()))
                    .collect(),
            ),
        ),
    ]);
    serde_json::to_string_pretty(&doc).expect("fleet document serializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter(name: &str, value: u64) -> Sample {
        Sample {
            name: name.to_string(),
            labels: Vec::new(),
            value: SampleValue::Counter(value),
        }
    }

    fn gauge(name: &str, value: f64) -> Sample {
        Sample {
            name: name.to_string(),
            labels: Vec::new(),
            value: SampleValue::Gauge(value),
        }
    }

    #[test]
    fn counters_sum_and_gauges_spread_across_shards() {
        let doc = fleet_document(&[
            ShardScrape::fresh(
                "127.0.0.1:7001",
                vec![
                    counter("specrepair_oracle_hits_total", 10),
                    gauge("specrepair_queue_depth", 2.0),
                ],
            ),
            ShardScrape::fresh(
                "127.0.0.1:7002",
                vec![
                    counter("specrepair_oracle_hits_total", 5),
                    gauge("specrepair_queue_depth", 6.0),
                ],
            ),
        ]);
        for needle in [
            "\"specrepair_oracle_hits_total\": 15",
            "\"min\": 2.0",
            "\"max\": 6.0",
            "\"mean\": 4.0",
            "\"shards_ok\": 2",
            "\"shards_stale\": 0",
        ] {
            assert!(doc.contains(needle), "missing {needle}:\n{doc}");
        }
    }

    #[test]
    fn stale_shards_are_labeled_and_excluded_from_aggregates() {
        let doc = fleet_document(&[
            ShardScrape::fresh(
                "127.0.0.1:7001",
                vec![counter("specrepair_oracle_hits_total", 10)],
            ),
            ShardScrape::stale("127.0.0.1:7002", "connect refused"),
        ]);
        for needle in [
            "\"specrepair_oracle_hits_total\": 10",
            "\"stale\": true",
            "\"error\": \"connect refused\"",
            "\"shards_ok\": 1",
            "\"shards_stale\": 1",
        ] {
            assert!(doc.contains(needle), "missing {needle}:\n{doc}");
        }
    }

    #[test]
    fn histograms_merge_bucketwise_with_percentiles() {
        let mut a = HistogramSnapshot::default();
        a.record(100);
        let mut b = HistogramSnapshot::default();
        b.record(5_000);
        let sample = |h: HistogramSnapshot| Sample {
            name: "specrepair_repair_latency_us".to_string(),
            labels: vec![("technique".to_string(), "ATR".to_string())],
            value: SampleValue::Histogram(h),
        };
        let doc = fleet_document(&[
            ShardScrape::fresh("s1", vec![sample(a)]),
            ShardScrape::fresh("s2", vec![sample(b)]),
        ]);
        // The series id's inner quotes are JSON-escaped in the map key.
        for needle in [
            "specrepair_repair_latency_us{technique=\\\"ATR\\\"}",
            "\"count\": 2",
            "\"p999_ms\"",
        ] {
            assert!(doc.contains(needle), "missing {needle}:\n{doc}");
        }
    }
}
