//! # specrepair-faults
//!
//! Deterministic fault injection for the repair pipelines' chaos mode.
//!
//! The paper's LLM pipelines sit on a flaky remote API: calls time out, get
//! rate-limited, fail transiently, or come back truncated (Alhanahnah et
//! al. report malformed model output as a routine failure mode). This crate
//! models that fault surface *reproducibly*: a [`FaultPlan`] is a pure
//! function from a seed and a call index to an optional [`FaultKind`], so a
//! chaos run is exactly replayable — same seed, same faults, same outcome —
//! the property every resilience test in this workspace leans on.
//!
//! [`FaultStats`] is the shared injected-fault accounting surfaced by
//! `specrepaird`'s `GET /metrics` and the study harness's chaos report.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};

use serde::Value;

/// The kinds of transport fault the plan can inject, mirroring the failure
/// taxonomy of a remote LLM API (DESIGN.md §7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The call exceeded its transport timeout; nothing came back.
    Timeout,
    /// The provider rejected the call with a rate limit; retry later.
    RateLimit,
    /// A transient transport error (connection reset, 5xx, …).
    Transient,
    /// The completion came back truncated / malformed mid-stream.
    Truncated,
}

impl FaultKind {
    /// All kinds, in taxonomy order.
    pub const ALL: [FaultKind; 4] = [
        FaultKind::Timeout,
        FaultKind::RateLimit,
        FaultKind::Transient,
        FaultKind::Truncated,
    ];

    /// Stable lower-case label (metrics keys, reports).
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Timeout => "timeout",
            FaultKind::RateLimit => "rate_limit",
            FaultKind::Transient => "transient",
            FaultKind::Truncated => "truncated",
        }
    }
}

/// SplitMix64: a tiny, high-quality mixer — the per-call fault draw must
/// not need any shared RNG state, so each call index is hashed directly.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic per-call fault schedule.
///
/// `fault_at(i)` is a pure function of `(seed, i)`: two plans with the same
/// seed, rate and kind set inject byte-identical fault sequences, no matter
/// how calls interleave across threads. Retried calls consume fresh indices,
/// so a retry is a fresh draw — exactly how a real flaky endpoint behaves,
/// minus the nondeterminism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of the schedule.
    pub seed: u64,
    /// Probability of injecting a fault on any given call, in `[0, 1]`.
    pub rate: f64,
    /// Which kinds the plan may inject (subset of [`FaultKind::ALL`]).
    kinds: [bool; 4],
}

impl FaultPlan {
    /// The fault-free plan (rate 0): the production default.
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            rate: 0.0,
            kinds: [true; 4],
        }
    }

    /// A plan injecting every fault kind at `rate`.
    pub fn new(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan {
            seed,
            rate: rate.clamp(0.0, 1.0),
            kinds: [true; 4],
        }
    }

    /// Restricts the plan to the given kinds (empty = keep all).
    pub fn with_kinds(mut self, kinds: &[FaultKind]) -> FaultPlan {
        if kinds.is_empty() {
            return self;
        }
        self.kinds = [false; 4];
        for k in kinds {
            self.kinds[*k as usize] = true;
        }
        self
    }

    /// Whether the plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        self.rate > 0.0 && self.kinds.iter().any(|&k| k)
    }

    /// The fault (if any) scheduled for call number `call` — a pure
    /// function of the plan and the index.
    pub fn fault_at(&self, call: u64) -> Option<FaultKind> {
        if !self.is_active() {
            return None;
        }
        let draw = mix(self.seed ^ call.wrapping_mul(0x2545_f491_4f6c_dd1d));
        // Top 53 bits → uniform f64 in [0, 1).
        let unit = (draw >> 11) as f64 / (1u64 << 53) as f64;
        if unit >= self.rate {
            return None;
        }
        let enabled: Vec<FaultKind> = FaultKind::ALL
            .into_iter()
            .filter(|k| self.kinds[*k as usize])
            .collect();
        let pick = mix(draw) as usize % enabled.len();
        Some(enabled[pick])
    }

    /// The longest run of consecutive scheduled faults in the first
    /// `calls` indices — the retry budget needed to absorb every fault of
    /// a bounded run (chaos CI sizes its `--retries` with this).
    pub fn max_consecutive_faults(&self, calls: u64) -> usize {
        let mut longest = 0usize;
        let mut current = 0usize;
        for i in 0..calls {
            if self.fault_at(i).is_some() {
                current += 1;
                longest = longest.max(current);
            } else {
                current = 0;
            }
        }
        longest
    }
}

/// The kinds of disk fault the persistent cache's I/O seam can inject,
/// modeling the storage failure taxonomy (DESIGN.md §14): a write that
/// errors outright, a write that lands only partially (torn tail), and
/// silent media corruption flipping a stored byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiskFaultKind {
    /// The write syscall fails; nothing reaches the log.
    WriteError,
    /// Only a prefix of the record reaches the log (torn write).
    ShortWrite,
    /// The record lands whole but one byte is flipped (media corruption).
    BitFlip,
}

impl DiskFaultKind {
    /// All kinds, in taxonomy order.
    pub const ALL: [DiskFaultKind; 3] = [
        DiskFaultKind::WriteError,
        DiskFaultKind::ShortWrite,
        DiskFaultKind::BitFlip,
    ];

    /// Stable lower-case label (metrics keys, reports).
    pub fn label(&self) -> &'static str {
        match self {
            DiskFaultKind::WriteError => "write_error",
            DiskFaultKind::ShortWrite => "short_write",
            DiskFaultKind::BitFlip => "bit_flip",
        }
    }
}

/// A deterministic per-append disk fault schedule, sharing [`FaultPlan`]'s
/// pure-function discipline: `fault_at(i)` depends only on `(seed, i)`, so
/// a chaotic cache run replays byte-identically under the same seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskFaultPlan {
    /// Seed of the schedule.
    pub seed: u64,
    /// Probability of injecting a fault on any given append, in `[0, 1]`.
    pub rate: f64,
    /// Which kinds the plan may inject (subset of [`DiskFaultKind::ALL`]).
    kinds: [bool; 3],
}

impl DiskFaultPlan {
    /// The fault-free plan (rate 0): the production default.
    pub fn none() -> DiskFaultPlan {
        DiskFaultPlan {
            seed: 0,
            rate: 0.0,
            kinds: [true; 3],
        }
    }

    /// A plan injecting every disk fault kind at `rate`.
    pub fn new(seed: u64, rate: f64) -> DiskFaultPlan {
        DiskFaultPlan {
            seed,
            rate: rate.clamp(0.0, 1.0),
            kinds: [true; 3],
        }
    }

    /// Restricts the plan to the given kinds (empty = keep all).
    pub fn with_kinds(mut self, kinds: &[DiskFaultKind]) -> DiskFaultPlan {
        if kinds.is_empty() {
            return self;
        }
        self.kinds = [false; 3];
        for k in kinds {
            self.kinds[*k as usize] = true;
        }
        self
    }

    /// Whether the plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        self.rate > 0.0 && self.kinds.iter().any(|&k| k)
    }

    /// The disk fault (if any) scheduled for append number `call` — a pure
    /// function of the plan and the index. A distinct stream constant keeps
    /// disk draws uncorrelated with the transport plan at equal seeds.
    pub fn fault_at(&self, call: u64) -> Option<DiskFaultKind> {
        if !self.is_active() {
            return None;
        }
        let draw =
            mix(self.seed ^ call.wrapping_mul(0x9e6c_63d0_876a_3f35) ^ 0xd15c_fa17_0000_0001);
        let unit = (draw >> 11) as f64 / (1u64 << 53) as f64;
        if unit >= self.rate {
            return None;
        }
        let enabled: Vec<DiskFaultKind> = DiskFaultKind::ALL
            .into_iter()
            .filter(|k| self.kinds[*k as usize])
            .collect();
        let pick = mix(draw) as usize % enabled.len();
        Some(enabled[pick])
    }
}

/// A call-count circuit breaker: the degradation discipline shared by every
/// unreliable seam in the workspace (the persistent cache's disk appends,
/// the LM transport, the cluster's per-shard links).
///
/// Counting calls instead of wall-clock time keeps chaos runs deterministic:
/// the same fault schedule trips and heals the breaker at the same call
/// indices on every run. `trip_after` consecutive failures open it; while
/// open every `halfopen_after`-th call is allowed through as a probe, and a
/// probe success closes it again.
#[derive(Debug)]
pub struct CallBreaker {
    trip_after: u32,
    halfopen_after: u32,
    inner: std::sync::Mutex<CallBreakerInner>,
}

#[derive(Debug, Default)]
struct CallBreakerInner {
    consecutive_failures: u32,
    open: bool,
    skips_while_open: u32,
}

impl CallBreaker {
    /// A closed breaker tripping after `trip_after` consecutive failures
    /// and probing every `halfopen_after`-th call while open.
    pub fn new(trip_after: u32, halfopen_after: u32) -> CallBreaker {
        CallBreaker {
            trip_after: trip_after.max(1),
            halfopen_after: halfopen_after.max(1),
            inner: std::sync::Mutex::new(CallBreakerInner::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CallBreakerInner> {
        // Poisoning is absorbed: a panicking caller leaves valid counters.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Whether the next call may go through. While open, every
    /// `halfopen_after`-th request is allowed as a half-open probe.
    pub fn allow(&self) -> bool {
        let mut inner = self.lock();
        if !inner.open {
            return true;
        }
        inner.skips_while_open += 1;
        if inner.skips_while_open >= self.halfopen_after {
            inner.skips_while_open = 0;
            return true;
        }
        false
    }

    /// Records a success; a successful half-open probe closes the breaker.
    pub fn success(&self) {
        let mut inner = self.lock();
        inner.consecutive_failures = 0;
        inner.open = false;
    }

    /// Records a failure. Returns `true` when this failure tripped the
    /// breaker open.
    pub fn failure(&self) -> bool {
        let mut inner = self.lock();
        inner.consecutive_failures += 1;
        if inner.open {
            // A failed half-open probe restarts the cooldown.
            inner.skips_while_open = 0;
            return false;
        }
        if inner.consecutive_failures >= self.trip_after {
            inner.open = true;
            inner.skips_while_open = 0;
            return true;
        }
        false
    }

    /// Whether the breaker is currently open (the seam is degraded).
    pub fn is_open(&self) -> bool {
        self.lock().open
    }
}

/// Shared injected-fault accounting: one atomic counter per kind. Cheap to
/// clone behind an `Arc`; every decorated transport records here.
#[derive(Debug, Default)]
pub struct FaultStats {
    counters: [AtomicU64; 4],
}

impl FaultStats {
    /// A zeroed registry.
    pub fn new() -> FaultStats {
        FaultStats::default()
    }

    /// Records one injected fault.
    pub fn record(&self, kind: FaultKind) {
        self.counters[kind as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Count injected so far for one kind.
    pub fn count(&self, kind: FaultKind) -> u64 {
        self.counters[kind as usize].load(Ordering::Relaxed)
    }

    /// Total faults injected across all kinds.
    pub fn total(&self) -> u64 {
        FaultKind::ALL.iter().map(|&k| self.count(k)).sum()
    }

    /// Snapshot as `(kind label, count)` pairs in taxonomy order — the
    /// typed form the telemetry snapshot's transport section carries.
    pub fn pairs(&self) -> Vec<(String, u64)> {
        FaultKind::ALL
            .iter()
            .map(|&k| (k.label().to_string(), self.count(k)))
            .collect()
    }

    /// Snapshot as a JSON value (`kind label -> count`, plus `total`), the
    /// shape embedded in `GET /metrics`.
    pub fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = FaultKind::ALL
            .iter()
            .map(|&k| (k.label().to_string(), Value::U64(self.count(k))))
            .collect();
        fields.push(("total".to_string(), Value::U64(self.total())));
        Value::Map(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_plans_never_fault() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        assert!((0..10_000).all(|i| plan.fault_at(i).is_none()));
        let zero_rate = FaultPlan::new(7, 0.0);
        assert!((0..1_000).all(|i| zero_rate.fault_at(i).is_none()));
    }

    #[test]
    fn schedule_is_deterministic_and_seed_sensitive() {
        let a = FaultPlan::new(42, 0.2);
        let b = FaultPlan::new(42, 0.2);
        let c = FaultPlan::new(43, 0.2);
        let seq = |p: &FaultPlan| (0..500).map(|i| p.fault_at(i)).collect::<Vec<_>>();
        assert_eq!(seq(&a), seq(&b), "same seed, same schedule");
        assert_ne!(seq(&a), seq(&c), "different seed, different schedule");
    }

    #[test]
    fn rate_is_approximately_honored() {
        let plan = FaultPlan::new(9, 0.25);
        let hits = (0..20_000).filter(|&i| plan.fault_at(i).is_some()).count();
        let rate = hits as f64 / 20_000.0;
        assert!((0.22..=0.28).contains(&rate), "observed rate {rate}");
    }

    #[test]
    fn kind_restriction_holds() {
        let plan = FaultPlan::new(3, 0.5).with_kinds(&[FaultKind::Transient]);
        let mut saw = 0;
        for i in 0..2_000 {
            if let Some(kind) = plan.fault_at(i) {
                assert_eq!(kind, FaultKind::Transient);
                saw += 1;
            }
        }
        assert!(saw > 500, "restricted plan still injects ({saw})");
    }

    #[test]
    fn all_kinds_eventually_appear() {
        let plan = FaultPlan::new(5, 0.5);
        let mut seen = std::collections::HashSet::new();
        for i in 0..2_000 {
            if let Some(kind) = plan.fault_at(i) {
                seen.insert(kind);
            }
        }
        assert_eq!(seen.len(), 4, "only saw {seen:?}");
    }

    #[test]
    fn max_consecutive_bounds_the_schedule() {
        let plan = FaultPlan::new(11, 0.15);
        let longest = plan.max_consecutive_faults(5_000);
        assert!(longest >= 1, "a 15% plan faults somewhere in 5k calls");
        assert!(longest <= 10, "unreasonable run length {longest}");
        // Verify against a direct recount.
        let (mut cur, mut max) = (0usize, 0usize);
        for i in 0..5_000 {
            cur = if plan.fault_at(i).is_some() {
                cur + 1
            } else {
                0
            };
            max = max.max(cur);
        }
        assert_eq!(longest, max);
    }

    #[test]
    fn disk_plan_is_deterministic_and_distinct_from_transport_stream() {
        let a = DiskFaultPlan::new(42, 0.3);
        let b = DiskFaultPlan::new(42, 0.3);
        let seq = |p: &DiskFaultPlan| (0..500).map(|i| p.fault_at(i)).collect::<Vec<_>>();
        assert_eq!(seq(&a), seq(&b), "same seed, same schedule");
        assert!(!DiskFaultPlan::none().is_active());
        assert!((0..1_000).all(|i| DiskFaultPlan::new(7, 0.0).fault_at(i).is_none()));
        // Equal seeds must not mean equal draws across the two fault surfaces.
        let transport = FaultPlan::new(42, 0.3);
        let disk_hits: Vec<u64> = (0..2_000).filter(|&i| a.fault_at(i).is_some()).collect();
        let lm_hits: Vec<u64> = (0..2_000)
            .filter(|&i| transport.fault_at(i).is_some())
            .collect();
        assert_ne!(disk_hits, lm_hits, "disk and transport streams correlate");
    }

    #[test]
    fn disk_plan_kind_restriction_and_coverage() {
        let only_flip = DiskFaultPlan::new(3, 0.5).with_kinds(&[DiskFaultKind::BitFlip]);
        let mut saw = 0;
        for i in 0..2_000 {
            if let Some(kind) = only_flip.fault_at(i) {
                assert_eq!(kind, DiskFaultKind::BitFlip);
                saw += 1;
            }
        }
        assert!(saw > 500, "restricted plan still injects ({saw})");
        let all = DiskFaultPlan::new(5, 0.5);
        let mut seen = std::collections::HashSet::new();
        for i in 0..2_000 {
            if let Some(kind) = all.fault_at(i) {
                seen.insert(kind);
            }
        }
        assert_eq!(seen.len(), 3, "only saw {seen:?}");
    }

    #[test]
    fn breaker_trips_after_consecutive_failures_and_probes_half_open() {
        let breaker = CallBreaker::new(3, 4);
        assert!(!breaker.is_open());
        assert!(!breaker.failure());
        assert!(!breaker.failure());
        breaker.success(); // a success resets the consecutive count
        assert!(!breaker.failure());
        assert!(!breaker.failure());
        assert!(breaker.failure(), "third consecutive failure trips");
        assert!(breaker.is_open());
        // While open, exactly one probe per `halfopen_after` calls.
        let allowed = (0..8).filter(|_| breaker.allow()).count();
        assert_eq!(allowed, 2);
        // A failed probe restarts the cooldown without re-tripping.
        assert!(!breaker.failure());
        assert!(breaker.is_open());
        // A successful probe closes the breaker.
        breaker.success();
        assert!(!breaker.is_open());
        assert!(breaker.allow());
    }

    #[test]
    fn stats_count_per_kind_and_total() {
        let stats = FaultStats::new();
        stats.record(FaultKind::Timeout);
        stats.record(FaultKind::Timeout);
        stats.record(FaultKind::Truncated);
        assert_eq!(stats.count(FaultKind::Timeout), 2);
        assert_eq!(stats.count(FaultKind::RateLimit), 0);
        assert_eq!(stats.total(), 3);
        let rendered = serde_json::to_string(&stats.to_value()).unwrap();
        assert!(rendered.contains("\"timeout\": 2") || rendered.contains("\"timeout\":2"));
    }
}
