//! Server observability: request counters, per-technique latency
//! histograms and queue gauges, rendered as the `GET /metrics` JSON
//! document.
//!
//! Latencies land in log₂-bucketed histograms (microsecond resolution, 28
//! buckets ≈ 2¼ minutes of range), so p50/p90/p99 are answered from ~200
//! bytes of state per technique no matter how many requests have been
//! served — the usual production trade of a bucket-width error bound for
//! O(1) memory.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use mualloy_analyzer::{IncrementalStats, OracleCacheStats};
use serde::Value;
use specrepair_cache::PersistStats;
use specrepair_core::DedupStats;
use specrepair_llm::TransportStats;

/// Number of log₂ latency buckets: bucket `i` covers `[2^i, 2^(i+1))` µs,
/// the last bucket catches everything beyond ~2¼ minutes.
const BUCKETS: usize = 28;

/// A fixed-size log₂ histogram of microsecond latencies.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum_micros: u64,
    max_micros: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum_micros: 0,
            max_micros: 0,
        }
    }
}

impl Histogram {
    fn bucket_of(micros: u64) -> usize {
        (63 - micros.max(1).leading_zeros() as usize).min(BUCKETS - 1)
    }

    /// Records one observation.
    pub fn record(&mut self, micros: u64) {
        self.counts[Histogram::bucket_of(micros)] += 1;
        self.count += 1;
        self.sum_micros += micros;
        self.max_micros = self.max_micros.max(micros);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_micros(&self) -> u64 {
        self.sum_micros.checked_div(self.count).unwrap_or(0)
    }

    /// Approximate `q`-quantile in microseconds: the upper bound of the
    /// first bucket whose cumulative count reaches `q · total`, clamped to
    /// the maximum observed value. `None` when empty.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper = if i + 1 >= 64 {
                    u64::MAX
                } else {
                    1u64 << (i + 1)
                };
                return Some(upper.min(self.max_micros.max(1)));
            }
        }
        Some(self.max_micros)
    }

    fn to_value(&self) -> Value {
        let ms = |micros: Option<u64>| Value::F64(micros.unwrap_or(0) as f64 / 1000.0);
        Value::Map(vec![
            ("count".to_string(), Value::U64(self.count)),
            (
                "mean_ms".to_string(),
                Value::F64(self.mean_micros() as f64 / 1000.0),
            ),
            ("p50_ms".to_string(), ms(self.percentile(0.50))),
            ("p90_ms".to_string(), ms(self.percentile(0.90))),
            ("p99_ms".to_string(), ms(self.percentile(0.99))),
            (
                "max_ms".to_string(),
                Value::F64(self.max_micros as f64 / 1000.0),
            ),
        ])
    }
}

/// The server-wide metrics registry. All methods take `&self`; it is shared
/// behind the server state `Arc` across acceptor and workers.
#[derive(Debug)]
pub struct ServerMetrics {
    started: Instant,
    /// `(endpoint, status)` → request count. Endpoint is the route name
    /// (`repair`, `healthz`, …) or `admission` for requests shed before
    /// routing.
    requests: Mutex<BTreeMap<(String, u16), u64>>,
    /// Technique label → repair latency histogram.
    latency: Mutex<BTreeMap<String, Histogram>>,
    queue_depth: AtomicUsize,
    inflight: AtomicUsize,
    shed_total: AtomicU64,
    deadline_exceeded_total: AtomicU64,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        ServerMetrics::new()
    }
}

impl ServerMetrics {
    /// A fresh registry.
    pub fn new() -> ServerMetrics {
        ServerMetrics {
            started: Instant::now(),
            requests: Mutex::new(BTreeMap::new()),
            latency: Mutex::new(BTreeMap::new()),
            queue_depth: AtomicUsize::new(0),
            inflight: AtomicUsize::new(0),
            shed_total: AtomicU64::new(0),
            deadline_exceeded_total: AtomicU64::new(0),
        }
    }

    /// Counts one routed request with its response status.
    pub fn record_request(&self, endpoint: &str, status: u16) {
        *self
            .requests
            .lock()
            .unwrap()
            .entry((endpoint.to_string(), status))
            .or_insert(0) += 1;
    }

    /// Counts one connection shed at admission (queue full → `503`).
    pub fn record_shed(&self) {
        self.shed_total.fetch_add(1, Ordering::Relaxed);
        self.record_request("admission", 503);
    }

    /// Counts one repair that hit its deadline.
    pub fn record_deadline_exceeded(&self) {
        self.deadline_exceeded_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one repair latency under the technique's label.
    pub fn record_latency(&self, technique: &str, micros: u64) {
        self.latency
            .lock()
            .unwrap()
            .entry(technique.to_string())
            .or_default()
            .record(micros);
    }

    /// Total count of requests served for one endpoint (all statuses).
    pub fn requests_for(&self, endpoint: &str) -> u64 {
        self.requests
            .lock()
            .unwrap()
            .iter()
            .filter(|((e, _), _)| e == endpoint)
            .map(|(_, c)| *c)
            .sum()
    }

    /// Adjusts the admission-queue depth gauge.
    pub fn queue_depth_add(&self, delta: isize) {
        if delta >= 0 {
            self.queue_depth
                .fetch_add(delta as usize, Ordering::Relaxed);
        } else {
            self.queue_depth
                .fetch_sub((-delta) as usize, Ordering::Relaxed);
        }
    }

    /// Current admission-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Marks one request entering/leaving a worker.
    pub fn inflight_add(&self, delta: isize) {
        if delta >= 0 {
            self.inflight.fetch_add(delta as usize, Ordering::Relaxed);
        } else {
            self.inflight
                .fetch_sub((-delta) as usize, Ordering::Relaxed);
        }
    }

    /// Number of requests currently executing in workers.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Renders the whole registry (plus the shared oracle's cache stats,
    /// the global candidate-dedup counters, the incremental-session
    /// counters, the daemon-wide LM resilience counters, — when the
    /// daemon runs with `--cache-dir` — the persistent verdict tier's
    /// counters, and — in cluster mode — the caller-prebuilt `cluster`
    /// section) as the `GET /metrics` JSON document.
    ///
    /// One parameter per stats source is deliberate: every call site must
    /// decide explicitly what each section shows.
    #[allow(clippy::too_many_arguments)]
    pub fn render(
        &self,
        oracle: &OracleCacheStats,
        memoized_specs: usize,
        dedup: &DedupStats,
        incremental: &IncrementalStats,
        transport: &TransportStats,
        persist: Option<&PersistStats>,
        cluster: Option<Value>,
    ) -> String {
        // requests: endpoint -> {status -> count}
        let mut per_endpoint: BTreeMap<String, Vec<(String, Value)>> = BTreeMap::new();
        for ((endpoint, status), count) in self.requests.lock().unwrap().iter() {
            per_endpoint
                .entry(endpoint.clone())
                .or_default()
                .push((status.to_string(), Value::U64(*count)));
        }
        let requests = Value::Map(
            per_endpoint
                .into_iter()
                .map(|(endpoint, statuses)| (endpoint, Value::Map(statuses)))
                .collect(),
        );
        let latency = Value::Map(
            self.latency
                .lock()
                .unwrap()
                .iter()
                .map(|(technique, h)| (technique.clone(), h.to_value()))
                .collect(),
        );
        let oracle_value = Value::Map(vec![
            ("hits".to_string(), Value::U64(oracle.hits)),
            ("misses".to_string(), Value::U64(oracle.misses)),
            (
                "solver_invocations".to_string(),
                Value::U64(oracle.solver_invocations),
            ),
            ("errors".to_string(), Value::U64(oracle.errors)),
            ("evictions".to_string(), Value::U64(oracle.evictions)),
            ("hit_rate".to_string(), Value::F64(oracle.hit_rate())),
            (
                "memoized_specs".to_string(),
                Value::U64(memoized_specs as u64),
            ),
            ("persist_hits".to_string(), Value::U64(oracle.persist_hits)),
            ("collapsed".to_string(), Value::U64(oracle.collapsed)),
        ]);
        let persistent_value = match persist {
            None => Value::Map(vec![("enabled".to_string(), Value::Bool(false))]),
            Some(p) => Value::Map(vec![
                ("enabled".to_string(), Value::Bool(true)),
                ("degraded".to_string(), Value::Bool(p.degraded)),
                ("preloaded".to_string(), Value::U64(p.preloaded)),
                ("quarantined".to_string(), Value::U64(p.quarantined)),
                ("live_entries".to_string(), Value::U64(p.live_entries)),
                ("disk_lines".to_string(), Value::U64(p.disk_lines)),
                ("disk_good".to_string(), Value::U64(p.disk_good)),
                ("lookups".to_string(), Value::U64(p.lookups)),
                ("hits".to_string(), Value::U64(p.hits)),
                ("appends".to_string(), Value::U64(p.appends)),
                ("append_errors".to_string(), Value::U64(p.append_errors)),
                (
                    "skipped_degraded".to_string(),
                    Value::U64(p.skipped_degraded),
                ),
                ("breaker_trips".to_string(), Value::U64(p.breaker_trips)),
                ("compactions".to_string(), Value::U64(p.compactions)),
                (
                    "compaction_failures".to_string(),
                    Value::U64(p.compaction_failures),
                ),
                (
                    "injected_write_errors".to_string(),
                    Value::U64(p.injected_write_errors),
                ),
                (
                    "injected_short_writes".to_string(),
                    Value::U64(p.injected_short_writes),
                ),
                (
                    "injected_bit_flips".to_string(),
                    Value::U64(p.injected_bit_flips),
                ),
            ]),
        };
        let dedup_value = Value::Map(vec![
            ("dedup_hits".to_string(), Value::U64(dedup.hits)),
            ("dedup_misses".to_string(), Value::U64(dedup.misses)),
            ("dedup_coalesced".to_string(), Value::U64(dedup.coalesced)),
            ("dedup_rate".to_string(), Value::F64(dedup.dedup_rate())),
        ]);
        let incremental_value = Value::Map(vec![
            (
                "incremental_sessions".to_string(),
                Value::U64(incremental.sessions),
            ),
            (
                "incremental_checks".to_string(),
                Value::U64(incremental.checks),
            ),
            (
                "incremental_fallbacks".to_string(),
                Value::U64(incremental.fallbacks),
            ),
            (
                "activation_vars".to_string(),
                Value::U64(incremental.activation_vars),
            ),
            (
                "clause_reuse_rate".to_string(),
                Value::F64(incremental.clause_reuse_rate()),
            ),
            (
                "learned_clauses_retained".to_string(),
                Value::U64(incremental.learned_clauses_retained),
            ),
        ]);
        let cluster_value = cluster
            .unwrap_or_else(|| Value::Map(vec![("enabled".to_string(), Value::Bool(false))]));
        let mut transport_value: Vec<(String, Value)> = transport
            .snapshot()
            .into_iter()
            .map(|(name, value)| (name.to_string(), Value::U64(value)))
            .collect();
        transport_value.push(("injected_faults".to_string(), transport.faults.to_value()));
        let doc = Value::Map(vec![
            (
                "uptime_ms".to_string(),
                Value::U64(self.started.elapsed().as_millis() as u64),
            ),
            (
                "queue_depth".to_string(),
                Value::U64(self.queue_depth() as u64),
            ),
            ("inflight".to_string(), Value::U64(self.inflight() as u64)),
            (
                "shed_total".to_string(),
                Value::U64(self.shed_total.load(Ordering::Relaxed)),
            ),
            (
                "deadline_exceeded_total".to_string(),
                Value::U64(self.deadline_exceeded_total.load(Ordering::Relaxed)),
            ),
            ("requests".to_string(), requests),
            ("latency_ms".to_string(), latency),
            ("oracle_cache".to_string(), oracle_value),
            ("candidate_dedup".to_string(), dedup_value),
            ("incremental".to_string(), incremental_value),
            ("persistent".to_string(), persistent_value),
            ("cluster".to_string(), cluster_value),
            ("transport".to_string(), Value::Map(transport_value)),
        ]);
        serde_json::to_string_pretty(&doc).expect("metrics document always serializes")
    }
}

/// Per-phase busy-time totals since boot, aggregated from every traced
/// repair request — the state behind `GET /trace/summary`. Empty (and the
/// document says so) unless the daemon runs with tracing on.
#[derive(Debug, Default)]
pub struct TraceTotals {
    spans: AtomicU64,
    requests: AtomicU64,
    /// Exclusive nanoseconds per phase, in [`Phase::ALL`] order.
    phase_ns: [AtomicU64; 4],
}

use specrepair_trace::{Phase, SpanRecord};

impl TraceTotals {
    /// A zeroed accumulator.
    pub fn new() -> TraceTotals {
        TraceTotals::default()
    }

    /// Folds one drained batch of spans (typically: everything one repair
    /// request produced) into the totals.
    pub fn absorb(&self, spans: &[SpanRecord]) {
        if spans.is_empty() {
            return;
        }
        self.spans.fetch_add(spans.len() as u64, Ordering::Relaxed);
        self.requests.fetch_add(1, Ordering::Relaxed);
        for (i, ns) in specrepair_trace::phase_totals_ns(spans).iter().enumerate() {
            self.phase_ns[i].fetch_add(*ns, Ordering::Relaxed);
        }
    }

    /// Spans absorbed since boot.
    pub fn spans(&self) -> u64 {
        self.spans.load(Ordering::Relaxed)
    }

    /// Renders the `GET /trace/summary` JSON document: whether the
    /// collector is on, how many spans landed, and per-phase busy
    /// milliseconds plus percentage of the attributed total since boot.
    pub fn render(&self, enabled: bool) -> String {
        let phase_ns: Vec<u64> = self
            .phase_ns
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total_ns: u64 = phase_ns.iter().sum();
        let phases = Value::Map(
            Phase::ALL
                .iter()
                .zip(&phase_ns)
                .map(|(phase, &ns)| {
                    let pct = if total_ns == 0 {
                        0.0
                    } else {
                        100.0 * ns as f64 / total_ns as f64
                    };
                    (
                        phase.label().to_string(),
                        Value::Map(vec![
                            ("busy_ms".to_string(), Value::F64(ns as f64 / 1e6)),
                            ("pct".to_string(), Value::F64(pct)),
                        ]),
                    )
                })
                .collect(),
        );
        let doc = Value::Map(vec![
            ("tracing_enabled".to_string(), Value::Bool(enabled)),
            ("spans_total".to_string(), Value::U64(self.spans())),
            (
                "traced_requests_total".to_string(),
                Value::U64(self.requests.load(Ordering::Relaxed)),
            ),
            (
                "attributed_ms_total".to_string(),
                Value::F64(total_ns as f64 / 1e6),
            ),
            ("phases".to_string(), phases),
        ]);
        serde_json::to_string_pretty(&doc).expect("trace summary always serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_are_ordered_and_bounded() {
        let mut h = Histogram::default();
        for micros in [100, 200, 300, 400, 500, 10_000, 20_000, 900_000] {
            h.record(micros);
        }
        assert_eq!(h.count(), 8);
        let p50 = h.percentile(0.50).unwrap();
        let p90 = h.percentile(0.90).unwrap();
        let p99 = h.percentile(0.99).unwrap();
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        assert!(p99 <= 900_000, "clamped to the observed max");
        // p50 of the sample sits near the 300–500 µs cluster; the log₂
        // bucket upper bound is 512 µs.
        assert!((256..=1024).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn histogram_empty_and_zero() {
        let mut h = Histogram::default();
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.mean_micros(), 0);
        h.record(0); // clamped into the first bucket
        assert_eq!(h.count(), 1);
        assert!(h.percentile(0.99).is_some());
    }

    #[test]
    fn histogram_single_sample_pins_every_percentile() {
        let mut h = Histogram::default();
        h.record(1_000);
        // With one observation every quantile collapses to it: the bucket
        // upper bound (1024) is clamped to the observed max.
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(q), Some(1_000), "q = {q}");
        }
        assert_eq!(h.mean_micros(), 1_000);
    }

    #[test]
    fn histogram_exact_bucket_boundary_lands_in_upper_bucket() {
        // 1024 = 2^10 sits exactly on a bucket edge; buckets are
        // half-open [2^i, 2^(i+1)), so it belongs to bucket 10 and the
        // reported quantile is the clamped upper bound 1024, not 2048.
        let mut h = Histogram::default();
        h.record(1_024);
        assert_eq!(h.percentile(0.5), Some(1_024));
        // A second sample just below the edge stays in bucket 9, so the
        // median drops to that bucket's upper bound.
        h.record(1_023);
        assert_eq!(h.percentile(0.5), Some(1_024));
        assert_eq!(h.percentile(1.0), Some(1_024));
    }

    #[test]
    fn trace_totals_absorb_and_render() {
        use specrepair_trace::{AttrValue, Phase, SpanRecord};
        let parent = SpanRecord {
            id: 10,
            parent: 0,
            name: "cell",
            phase: Phase::Orchestration,
            cell: 1,
            ordinal: 0,
            start_ns: 0,
            dur_ns: 10_000_000,
            attrs: Vec::<(&'static str, AttrValue)>::new(),
        };
        let child = SpanRecord {
            id: 11,
            parent: 10,
            name: "sat.solve",
            phase: Phase::Sat,
            cell: 1,
            ordinal: 0,
            start_ns: 1_000_000,
            dur_ns: 4_000_000,
            attrs: Vec::new(),
        };
        let totals = TraceTotals::new();
        totals.absorb(&[]); // empty batches are not counted as requests
        totals.absorb(&[parent, child]);
        assert_eq!(totals.spans(), 2);
        let doc = totals.render(true);
        // Exclusive attribution: 6 ms orchestration + 4 ms SAT = 10 ms.
        for needle in [
            "\"tracing_enabled\": true",
            "\"spans_total\": 2",
            "\"traced_requests_total\": 1",
            "\"attributed_ms_total\": 10",
            "\"sat\"",
            "\"orchestration\"",
        ] {
            assert!(doc.contains(needle), "summary missing {needle}:\n{doc}");
        }
    }

    #[test]
    fn registry_counts_and_renders() {
        let m = ServerMetrics::new();
        m.record_request("repair", 200);
        m.record_request("repair", 200);
        m.record_request("repair", 400);
        m.record_shed();
        m.record_latency("ICEBAR", 1_500);
        m.queue_depth_add(2);
        m.queue_depth_add(-1);
        assert_eq!(m.requests_for("repair"), 3);
        assert_eq!(m.requests_for("admission"), 1);
        assert_eq!(m.queue_depth(), 1);
        let transport = TransportStats::new();
        transport
            .retries
            .fetch_add(3, std::sync::atomic::Ordering::Relaxed);
        transport
            .faults
            .record(specrepair_faults::FaultKind::Timeout);
        let dedup = DedupStats {
            hits: 4,
            misses: 12,
            coalesced: 1,
        };
        let incremental = IncrementalStats {
            sessions: 2,
            checks: 8,
            fallbacks: 1,
            activation_vars: 8,
            clauses_reused: 30,
            clauses_total: 40,
            learned_clauses_retained: 5,
        };
        let doc = m.render(
            &OracleCacheStats::default(),
            0,
            &dedup,
            &incremental,
            &transport,
            None,
            None,
        );
        for needle in [
            "\"repair\"",
            "\"200\": 2",
            "\"400\": 1",
            "\"shed_total\": 1",
            "\"ICEBAR\"",
            "\"queue_depth\": 1",
            "\"hit_rate\"",
            "\"evictions\"",
            "\"retries\": 3",
            "\"breaker_trips\": 0",
            "\"injected_faults\"",
            "\"timeout\": 1",
            "\"candidate_dedup\"",
            "\"dedup_hits\": 4",
            "\"dedup_rate\": 0.25",
            "\"incremental\"",
            "\"incremental_sessions\": 2",
            "\"incremental_checks\": 8",
            "\"clause_reuse_rate\": 0.75",
            "\"learned_clauses_retained\": 5",
            "\"persist_hits\": 0",
            "\"collapsed\": 0",
            "\"persistent\"",
            "\"enabled\": false",
            "\"cluster\"",
        ] {
            assert!(doc.contains(needle), "metrics missing {needle}:\n{doc}");
        }
    }

    #[test]
    fn persistent_section_renders_when_attached() {
        let m = ServerMetrics::new();
        let persist = PersistStats {
            preloaded: 7,
            live_entries: 9,
            hits: 3,
            lookups: 5,
            appends: 2,
            degraded: true,
            breaker_trips: 1,
            ..PersistStats::default()
        };
        let doc = m.render(
            &OracleCacheStats::default(),
            0,
            &DedupStats::default(),
            &IncrementalStats::default(),
            &TransportStats::new(),
            Some(&persist),
            None,
        );
        for needle in [
            "\"persistent\"",
            "\"enabled\": true",
            "\"degraded\": true",
            "\"preloaded\": 7",
            "\"live_entries\": 9",
        ] {
            assert!(doc.contains(needle), "metrics missing {needle}:\n{doc}");
        }
    }

    #[test]
    fn cluster_section_renders_when_provided() {
        let m = ServerMetrics::new();
        let cluster = Value::Map(vec![
            ("enabled".to_string(), Value::Bool(true)),
            ("role".to_string(), Value::Str("shard".to_string())),
            ("remote_hits".to_string(), Value::U64(4)),
        ]);
        let doc = m.render(
            &OracleCacheStats::default(),
            0,
            &DedupStats::default(),
            &IncrementalStats::default(),
            &TransportStats::new(),
            None,
            Some(cluster),
        );
        for needle in ["\"cluster\"", "\"role\": \"shard\"", "\"remote_hits\": 4"] {
            assert!(doc.contains(needle), "metrics missing {needle}:\n{doc}");
        }
    }
}
