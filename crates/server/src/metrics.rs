//! Server observability, rebased on the unified telemetry registry.
//!
//! [`ServerMetrics`] used to keep its own maps of counters and latency
//! histograms and hand-render the `GET /metrics` JSON; now every series
//! lives in a [`Registry`] (lock-free relaxed-atomic increments on the
//! hot path) and the document is produced by assembling a typed
//! [`Snapshot`] — the same snapshot that backs the Prometheus exposition
//! at `GET /metrics/prom`, the time-series ring at `GET /metrics/history`
//! and fleet aggregation at the router. The JSON document itself is
//! byte-for-byte the historical format, pinned by the golden-file test
//! below.

use std::time::Instant;

use mualloy_analyzer::{IncrementalStats, OracleCacheStats};
use serde::Value;
use specrepair_cache::PersistStats;
use specrepair_core::DedupStats;
use specrepair_llm::TransportStats;
use specrepair_telemetry::{
    ClusterSection, Counter, Gauge, Registry, Sample, SampleValue, Snapshot,
};

/// The log₂ latency histogram, promoted into the telemetry crate; the
/// historical `server::Histogram` name keeps working.
pub use specrepair_telemetry::HistogramSnapshot as Histogram;

fn label(sample: &Sample, key: &str) -> String {
    sample
        .labels
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.clone())
        .unwrap_or_default()
}

/// The server-wide metrics registry. All methods take `&self`; it is shared
/// behind the server state `Arc` across acceptor and workers.
#[derive(Debug)]
pub struct ServerMetrics {
    started: Instant,
    registry: Registry,
    queue_depth: Gauge,
    inflight: Gauge,
    shed_total: Counter,
    deadline_exceeded_total: Counter,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        ServerMetrics::new()
    }
}

impl ServerMetrics {
    /// A fresh registry.
    pub fn new() -> ServerMetrics {
        let registry = Registry::new();
        let queue_depth = registry.gauge(
            "specrepair_queue_depth",
            "Requests waiting in the admission queue.",
            &[],
        );
        let inflight = registry.gauge(
            "specrepair_inflight",
            "Requests currently executing in workers.",
            &[],
        );
        let shed_total = registry.counter(
            "specrepair_shed_total",
            "Connections shed at admission.",
            &[],
        );
        let deadline_exceeded_total = registry.counter(
            "specrepair_deadline_exceeded_total",
            "Repairs that exceeded their deadline.",
            &[],
        );
        ServerMetrics {
            started: Instant::now(),
            registry,
            queue_depth,
            inflight,
            shed_total,
            deadline_exceeded_total,
        }
    }

    /// Counts one routed request with its response status.
    pub fn record_request(&self, endpoint: &str, status: u16) {
        self.registry
            .counter(
                "specrepair_requests_total",
                "Requests served, by endpoint and status.",
                &[("endpoint", endpoint), ("status", &status.to_string())],
            )
            .inc();
    }

    /// Counts one connection shed at admission (queue full → `503`).
    pub fn record_shed(&self) {
        self.shed_total.inc();
        self.record_request("admission", 503);
    }

    /// Counts one repair that hit its deadline.
    pub fn record_deadline_exceeded(&self) {
        self.deadline_exceeded_total.inc();
    }

    /// Records one repair latency under the technique's label.
    pub fn record_latency(&self, technique: &str, micros: u64) {
        self.registry
            .histogram(
                "specrepair_repair_latency_us",
                "Repair latency in microseconds, by technique.",
                &[("technique", technique)],
            )
            .record(micros);
    }

    /// Total count of requests served for one endpoint (all statuses).
    pub fn requests_for(&self, endpoint: &str) -> u64 {
        self.registry
            .gather()
            .iter()
            .filter(|s| s.name == "specrepair_requests_total" && label(s, "endpoint") == endpoint)
            .map(|s| match s.value {
                SampleValue::Counter(n) => n,
                _ => 0,
            })
            .sum()
    }

    /// Adjusts the admission-queue depth gauge.
    pub fn queue_depth_add(&self, delta: isize) {
        self.queue_depth.add(delta as i64);
    }

    /// Current admission-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.queue_depth.get_unsigned() as usize
    }

    /// Marks one request entering/leaving a worker.
    pub fn inflight_add(&self, delta: isize) {
        self.inflight.add(delta as i64);
    }

    /// Number of requests currently executing in workers.
    pub fn inflight(&self) -> usize {
        self.inflight.get_unsigned() as usize
    }

    /// Assembles the typed snapshot of this daemon: the registry's own
    /// series (requests, latencies, gauges) plus every subsystem section.
    ///
    /// One parameter per stats source is deliberate: every call site must
    /// decide explicitly what each section shows.
    #[allow(clippy::too_many_arguments)]
    pub fn snapshot(
        &self,
        oracle: &OracleCacheStats,
        memoized_specs: usize,
        dedup: &DedupStats,
        incremental: &IncrementalStats,
        transport: &TransportStats,
        persist: Option<&PersistStats>,
        cluster: ClusterSection,
    ) -> Snapshot {
        let mut requests: Vec<(String, Vec<(String, u64)>)> = Vec::new();
        let mut latency: Vec<(String, Histogram)> = Vec::new();
        // gather() is sorted by (name, labels), so request rows arrive
        // grouped by endpoint and latencies sorted by technique.
        for sample in self.registry.gather() {
            match (sample.name.as_str(), &sample.value) {
                ("specrepair_requests_total", SampleValue::Counter(n)) => {
                    let endpoint = label(&sample, "endpoint");
                    let status = label(&sample, "status");
                    match requests.last_mut() {
                        Some((e, rows)) if *e == endpoint => rows.push((status, *n)),
                        _ => requests.push((endpoint, vec![(status, *n)])),
                    }
                }
                ("specrepair_repair_latency_us", SampleValue::Histogram(h)) => {
                    latency.push((label(&sample, "technique"), h.clone()));
                }
                _ => {}
            }
        }
        Snapshot {
            uptime_ms: self.started.elapsed().as_millis() as u64,
            queue_depth: self.queue_depth.get_unsigned(),
            inflight: self.inflight.get_unsigned(),
            shed_total: self.shed_total.get(),
            deadline_exceeded_total: self.deadline_exceeded_total.get(),
            requests,
            latency,
            oracle_cache: oracle.section(memoized_specs),
            candidate_dedup: dedup.section(),
            incremental: incremental.section(),
            persistent: persist.map(|p| p.section()),
            cluster,
            transport: transport.section(),
        }
    }

    /// Renders the `GET /metrics` JSON document — byte-compatible with
    /// the pre-registry format (see the golden-file test).
    #[allow(clippy::too_many_arguments)]
    pub fn render(
        &self,
        oracle: &OracleCacheStats,
        memoized_specs: usize,
        dedup: &DedupStats,
        incremental: &IncrementalStats,
        transport: &TransportStats,
        persist: Option<&PersistStats>,
        cluster: ClusterSection,
    ) -> String {
        self.snapshot(
            oracle,
            memoized_specs,
            dedup,
            incremental,
            transport,
            persist,
            cluster,
        )
        .to_json()
    }
}

/// Per-phase busy-time totals since boot, aggregated from every traced
/// repair request — the state behind `GET /trace/summary`. Empty (and the
/// document says so) unless the daemon runs with tracing on. Carried as
/// telemetry [`Counter`] cells: same lock-free discipline as the rest of
/// the registry.
#[derive(Debug, Default)]
pub struct TraceTotals {
    spans: Counter,
    requests: Counter,
    /// Exclusive nanoseconds per phase, in [`Phase::ALL`] order.
    phase_ns: [Counter; 4],
}

use specrepair_trace::{Phase, SpanRecord};

impl TraceTotals {
    /// A zeroed accumulator.
    pub fn new() -> TraceTotals {
        TraceTotals::default()
    }

    /// Folds one drained batch of spans (typically: everything one repair
    /// request produced) into the totals.
    pub fn absorb(&self, spans: &[SpanRecord]) {
        if spans.is_empty() {
            return;
        }
        self.spans.add(spans.len() as u64);
        self.requests.inc();
        for (i, ns) in specrepair_trace::phase_totals_ns(spans).iter().enumerate() {
            self.phase_ns[i].add(*ns);
        }
    }

    /// Spans absorbed since boot.
    pub fn spans(&self) -> u64 {
        self.spans.get()
    }

    /// Renders the `GET /trace/summary` JSON document: whether the
    /// collector is on, how many spans landed, and per-phase busy
    /// milliseconds plus percentage of the attributed total since boot.
    pub fn render(&self, enabled: bool) -> String {
        let phase_ns: Vec<u64> = self.phase_ns.iter().map(|c| c.get()).collect();
        let total_ns: u64 = phase_ns.iter().sum();
        let phases = Value::Map(
            Phase::ALL
                .iter()
                .zip(&phase_ns)
                .map(|(phase, &ns)| {
                    let pct = if total_ns == 0 {
                        0.0
                    } else {
                        100.0 * ns as f64 / total_ns as f64
                    };
                    (
                        phase.label().to_string(),
                        Value::Map(vec![
                            ("busy_ms".to_string(), Value::F64(ns as f64 / 1e6)),
                            ("pct".to_string(), Value::F64(pct)),
                        ]),
                    )
                })
                .collect(),
        );
        let doc = Value::Map(vec![
            ("tracing_enabled".to_string(), Value::Bool(enabled)),
            ("spans_total".to_string(), Value::U64(self.spans())),
            (
                "traced_requests_total".to_string(),
                Value::U64(self.requests.get()),
            ),
            (
                "attributed_ms_total".to_string(),
                Value::F64(total_ns as f64 / 1e6),
            ),
            ("phases".to_string(), phases),
        ]);
        serde_json::to_string_pretty(&doc).expect("trace summary always serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specrepair_telemetry::ShardClusterSection;

    #[test]
    fn histogram_percentiles_are_ordered_and_bounded() {
        let mut h = Histogram::default();
        for micros in [100, 200, 300, 400, 500, 10_000, 20_000, 900_000] {
            h.record(micros);
        }
        assert_eq!(h.count(), 8);
        let p50 = h.percentile(0.50).unwrap();
        let p90 = h.percentile(0.90).unwrap();
        let p99 = h.percentile(0.99).unwrap();
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        assert!(p99 <= 900_000, "clamped to the observed max");
        // p50 of the sample sits near the 300–500 µs cluster; the log₂
        // bucket upper bound is 512 µs.
        assert!((256..=1024).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn histogram_empty_and_zero() {
        let mut h = Histogram::default();
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.mean_micros(), 0);
        h.record(0); // clamped into the first bucket
        assert_eq!(h.count(), 1);
        assert!(h.percentile(0.99).is_some());
    }

    #[test]
    fn histogram_single_sample_pins_every_percentile() {
        let mut h = Histogram::default();
        h.record(1_000);
        // With one observation every quantile collapses to it: the bucket
        // upper bound (1024) is clamped to the observed max.
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(q), Some(1_000), "q = {q}");
        }
        assert_eq!(h.mean_micros(), 1_000);
    }

    #[test]
    fn histogram_exact_bucket_boundary_lands_in_upper_bucket() {
        // 1024 = 2^10 sits exactly on a bucket edge; buckets are
        // half-open [2^i, 2^(i+1)), so it belongs to bucket 10 and the
        // reported quantile is the clamped upper bound 1024, not 2048.
        let mut h = Histogram::default();
        h.record(1_024);
        assert_eq!(h.percentile(0.5), Some(1_024));
        // A second sample just below the edge stays in bucket 9, so the
        // median drops to that bucket's upper bound.
        h.record(1_023);
        assert_eq!(h.percentile(0.5), Some(1_024));
        assert_eq!(h.percentile(1.0), Some(1_024));
    }

    #[test]
    fn trace_totals_absorb_and_render() {
        use specrepair_trace::{AttrValue, Phase, SpanRecord};
        let parent = SpanRecord {
            id: 10,
            parent: 0,
            name: "cell",
            phase: Phase::Orchestration,
            cell: 1,
            ordinal: 0,
            start_ns: 0,
            dur_ns: 10_000_000,
            attrs: Vec::<(&'static str, AttrValue)>::new(),
        };
        let child = SpanRecord {
            id: 11,
            parent: 10,
            name: "sat.solve",
            phase: Phase::Sat,
            cell: 1,
            ordinal: 0,
            start_ns: 1_000_000,
            dur_ns: 4_000_000,
            attrs: Vec::new(),
        };
        let totals = TraceTotals::new();
        totals.absorb(&[]); // empty batches are not counted as requests
        totals.absorb(&[parent, child]);
        assert_eq!(totals.spans(), 2);
        let doc = totals.render(true);
        // Exclusive attribution: 6 ms orchestration + 4 ms SAT = 10 ms.
        for needle in [
            "\"tracing_enabled\": true",
            "\"spans_total\": 2",
            "\"traced_requests_total\": 1",
            "\"attributed_ms_total\": 10",
            "\"sat\"",
            "\"orchestration\"",
        ] {
            assert!(doc.contains(needle), "summary missing {needle}:\n{doc}");
        }
    }

    #[test]
    fn registry_counts_and_renders() {
        let m = ServerMetrics::new();
        m.record_request("repair", 200);
        m.record_request("repair", 200);
        m.record_request("repair", 400);
        m.record_shed();
        m.record_latency("ICEBAR", 1_500);
        m.queue_depth_add(2);
        m.queue_depth_add(-1);
        assert_eq!(m.requests_for("repair"), 3);
        assert_eq!(m.requests_for("admission"), 1);
        assert_eq!(m.queue_depth(), 1);
        let transport = TransportStats::new();
        transport.retries.add(3);
        transport
            .faults
            .record(specrepair_faults::FaultKind::Timeout);
        let dedup = DedupStats {
            hits: 4,
            misses: 12,
            coalesced: 1,
        };
        let incremental = IncrementalStats {
            sessions: 2,
            checks: 8,
            fallbacks: 1,
            activation_vars: 8,
            clauses_reused: 30,
            clauses_total: 40,
            learned_clauses_retained: 5,
        };
        let doc = m.render(
            &OracleCacheStats::default(),
            0,
            &dedup,
            &incremental,
            &transport,
            None,
            ClusterSection::Off,
        );
        for needle in [
            "\"repair\"",
            "\"200\": 2",
            "\"400\": 1",
            "\"shed_total\": 1",
            "\"ICEBAR\"",
            "\"queue_depth\": 1",
            "\"hit_rate\"",
            "\"evictions\"",
            "\"retries\": 3",
            "\"breaker_trips\": 0",
            "\"injected_faults\"",
            "\"timeout\": 1",
            "\"candidate_dedup\"",
            "\"dedup_hits\": 4",
            "\"dedup_rate\": 0.25",
            "\"incremental\"",
            "\"incremental_sessions\": 2",
            "\"incremental_checks\": 8",
            "\"clause_reuse_rate\": 0.75",
            "\"learned_clauses_retained\": 5",
            "\"persist_hits\": 0",
            "\"collapsed\": 0",
            "\"persistent\"",
            "\"enabled\": false",
            "\"cluster\"",
        ] {
            assert!(doc.contains(needle), "metrics missing {needle}:\n{doc}");
        }
    }

    #[test]
    fn persistent_section_renders_when_attached() {
        let m = ServerMetrics::new();
        let persist = PersistStats {
            preloaded: 7,
            live_entries: 9,
            hits: 3,
            lookups: 5,
            appends: 2,
            degraded: true,
            breaker_trips: 1,
            ..PersistStats::default()
        };
        let doc = m.render(
            &OracleCacheStats::default(),
            0,
            &DedupStats::default(),
            &IncrementalStats::default(),
            &TransportStats::new(),
            Some(&persist),
            ClusterSection::Off,
        );
        for needle in [
            "\"persistent\"",
            "\"enabled\": true",
            "\"degraded\": true",
            "\"preloaded\": 7",
            "\"live_entries\": 9",
        ] {
            assert!(doc.contains(needle), "metrics missing {needle}:\n{doc}");
        }
    }

    #[test]
    fn cluster_section_renders_when_provided() {
        let m = ServerMetrics::new();
        let cluster = ClusterSection::Shard(ShardClusterSection {
            remote_hits: 4,
            ..ShardClusterSection::default()
        });
        let doc = m.render(
            &OracleCacheStats::default(),
            0,
            &DedupStats::default(),
            &IncrementalStats::default(),
            &TransportStats::new(),
            None,
            cluster,
        );
        for needle in ["\"cluster\"", "\"role\": \"shard\"", "\"remote_hits\": 4"] {
            assert!(doc.contains(needle), "metrics missing {needle}:\n{doc}");
        }
    }

    /// The legacy `GET /metrics` document must stay byte-identical across
    /// the registry rebase. The golden file was generated by the
    /// pre-registry renderer from exactly the inputs below; only the
    /// timing-dependent `uptime_ms` line is normalized.
    #[test]
    fn metrics_document_matches_pre_registry_golden() {
        let golden = include_str!("../testdata/metrics_golden.json");
        let m = ServerMetrics::new();
        m.record_request("repair", 200);
        m.record_request("repair", 200);
        m.record_request("repair", 400);
        m.record_shed();
        m.record_latency("ICEBAR", 1_500);
        m.record_latency("ATR", 800);
        m.queue_depth_add(2);
        m.queue_depth_add(-1);
        m.inflight_add(1);
        m.record_deadline_exceeded();
        let oracle = OracleCacheStats {
            hits: 12,
            misses: 4,
            solver_invocations: 5,
            errors: 1,
            evictions: 2,
            persist_hits: 3,
            collapsed: 1,
        };
        let dedup = DedupStats {
            hits: 4,
            misses: 12,
            coalesced: 1,
        };
        let incremental = IncrementalStats {
            sessions: 2,
            checks: 8,
            fallbacks: 1,
            activation_vars: 8,
            clauses_reused: 30,
            clauses_total: 40,
            learned_clauses_retained: 5,
        };
        let transport = TransportStats::new();
        transport.retries.add(3);
        transport.giveups.add(1);
        transport
            .faults
            .record(specrepair_faults::FaultKind::Timeout);
        transport
            .faults
            .record(specrepair_faults::FaultKind::RateLimit);
        transport
            .faults
            .record(specrepair_faults::FaultKind::RateLimit);
        let persist = PersistStats {
            preloaded: 7,
            quarantined: 1,
            live_entries: 9,
            disk_lines: 11,
            disk_good: 10,
            hits: 3,
            lookups: 5,
            appends: 2,
            append_errors: 1,
            skipped_degraded: 1,
            breaker_trips: 1,
            degraded: true,
            compactions: 1,
            compaction_failures: 0,
            injected_write_errors: 2,
            injected_short_writes: 0,
            injected_bit_flips: 1,
        };
        let cluster = ClusterSection::Shard(ShardClusterSection {
            shard_id: 1,
            peers: 3,
            remote_lookups: 10,
            remote_hits: 4,
            remote_misses: 6,
            remote_hit_rate: 0.4,
            remote_puts: 5,
            self_owned: 2,
            transport_errors: 1,
            retries: 1,
            breaker_trips: 0,
            skipped_open: 0,
            open_breakers: 0,
        });
        let doc = m.render(
            &oracle,
            6,
            &dedup,
            &incremental,
            &transport,
            Some(&persist),
            cluster,
        );
        let normalize = |text: &str| -> String {
            text.lines()
                .map(|line| {
                    if line.trim_start().starts_with("\"uptime_ms\":") {
                        "  \"uptime_ms\": 0,".to_string()
                    } else {
                        line.to_string()
                    }
                })
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(
            normalize(&doc),
            normalize(golden.trim_end()),
            "legacy /metrics document drifted from the golden file"
        );
    }
}
