//! The built-in load generator (`specrepaird loadgen`): replays generated
//! faulty specifications against a running daemon from N concurrent
//! connections and reports throughput, latency percentiles and the
//! response-status mix.
//!
//! The workload is deterministic: faulty specs come from
//! `specrepair-mutation`'s injector over the A4F exercises with fixed
//! seeds, so a second identical run replays byte-identical candidates and
//! the daemon's oracle cache hit rate must rise — the `/metrics`
//! reconciliation the CI smoke job checks.
//!
//! Two workload shapes: `uniform` cycles through one shared variant pool,
//! `zipfian` models a multi-tenant Alloy4Fun deployment — each tenant gets
//! its own injected-fault variant pool (tenant-offset seeds) and draws
//! from it with a Zipf rank distribution, so a few variants per tenant are
//! hot and the long tail is cold. Both shapes are pure functions of the
//! config, so reruns replay byte-identical request streams.
//!
//! Against a cluster (`--shards a,b,c`) the generator reads every shard's
//! `/metrics` after the run and reports per-shard and aggregate hit rates
//! plus the remote verdict traffic.

use std::net::TcpStream;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use mualloy_syntax::print_spec;
use specrepair_benchmarks::a4f;
use specrepair_cluster::client::connect_with_retry;
use specrepair_core::CancelToken;
use specrepair_mutation::{inject_fault, InjectorConfig};
use specrepair_study::TechniqueId;
use specrepair_telemetry::{ClusterSection, Snapshot};

use crate::metrics::Histogram;
use crate::server::roundtrip;
use crate::service::push_json_string;

/// Bounded connect-retry budget for `/metrics` and `/healthz` probes: a
/// daemon booted "concurrently" with the generator (the CI smoke jobs) may
/// still be binding its listener, so the first connects can lose the race.
/// 25 × 40 ms ≈ one second of patience, counted in the report rather than
/// silently absorbed.
const PROBE_ATTEMPTS: usize = 25;

/// Backoff between connect attempts; each wait polls a [`CancelToken`].
const PROBE_BACKOFF: Duration = Duration::from_millis(40);

/// The shape of the generated request stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WorkloadProfile {
    /// One shared variant pool, cycled round-robin (the original shape).
    #[default]
    Uniform,
    /// Multi-tenant Zipf: per-tenant variant pools, rank-skewed draws.
    Zipfian,
}

impl WorkloadProfile {
    /// Parses the CLI spelling.
    pub fn parse(label: &str) -> Result<WorkloadProfile, String> {
        match label {
            "uniform" => Ok(WorkloadProfile::Uniform),
            "zipfian" => Ok(WorkloadProfile::Zipfian),
            other => Err(format!(
                "unknown profile {other:?} (want uniform or zipfian)"
            )),
        }
    }
}

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Daemon (or router) address, e.g. `127.0.0.1:7878`.
    pub addr: String,
    /// Total number of `POST /repair` requests to send.
    pub requests: usize,
    /// Concurrent client connections (threads).
    pub connections: usize,
    /// Per-request deadline forwarded as `deadline_ms`.
    pub deadline_ms: u64,
    /// Base seed for fault injection (also forwarded per request).
    pub seed: u64,
    /// Injected LM-transport fault rate forwarded per request (0.0 = off):
    /// the opt-in chaos mode, exercising the daemon's resilience layer.
    pub chaos_rate: f64,
    /// Backoff before retrying a request shed with `503` (0 = never retry).
    /// The wait polls a [`CancelToken`], so a deadline or Ctrl-C-style
    /// cancellation would cut it short rather than blocking the thread.
    pub shed_backoff_ms: u64,
    /// Workload shape; see [`WorkloadProfile`].
    pub profile: WorkloadProfile,
    /// Tenant count for the zipfian profile (ignored by uniform).
    pub tenants: usize,
    /// Cluster mode: the shard `/metrics` addresses to read hit rates
    /// from after the run (the ordered `--shards` list). Empty = single
    /// node, read only `addr`.
    pub shards: Vec<String>,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:7878".to_string(),
            requests: 50,
            connections: 4,
            deadline_ms: 10_000,
            seed: 42,
            chaos_rate: 0.0,
            shed_backoff_ms: 0,
            profile: WorkloadProfile::Uniform,
            tenants: 4,
            shards: Vec::new(),
        }
    }
}

/// One shard's post-run `/metrics` reading (cluster mode).
#[derive(Debug, Clone)]
pub struct ShardReading {
    /// The shard's address.
    pub addr: String,
    /// Oracle cache hits on this shard.
    pub hits: u64,
    /// Oracle cache misses on this shard.
    pub misses: u64,
    /// The shard's own hit rate.
    pub hit_rate: f64,
    /// Verdicts this shard fetched from peers (`cluster.remote_hits`).
    pub remote_hits: Option<u64>,
    /// Verdicts this shard pushed to peers (`cluster.remote_puts`).
    pub remote_puts: Option<u64>,
}

/// The outcome of one load-generation run.
#[derive(Debug)]
pub struct LoadgenReport {
    /// Requests attempted.
    pub total: usize,
    /// `200` responses.
    pub ok: usize,
    /// `503` responses (shed at admission — expected under overload).
    pub shed: usize,
    /// `504` responses (deadline fired — expected under tight deadlines).
    pub timed_out: usize,
    /// Anything else: unexpected statuses and transport errors.
    pub unexpected: usize,
    /// End-to-end latency distribution over all completed requests.
    pub latency: Histogram,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// The daemon's oracle cache hit rate fetched from `/metrics` after the
    /// run (absent when the fetch failed).
    pub cache_hit_rate: Option<f64>,
    /// Candidate-dedup hits fetched from the same post-run `/metrics`
    /// document (absent when the fetch failed or the daemon predates the
    /// `candidate_dedup` section).
    pub dedup_hits: Option<u64>,
    /// Candidate-dedup rate (`hits / (hits + misses)`) from `/metrics`.
    pub dedup_rate: Option<f64>,
    /// Incremental-session checks fetched from the same post-run
    /// `/metrics` document (absent when the fetch failed or the daemon
    /// predates the `incremental` section).
    pub incremental_checks: Option<u64>,
    /// Incremental clause reuse rate (`clauses_reused / clauses_total`)
    /// from `/metrics`.
    pub clause_reuse_rate: Option<f64>,
    /// The daemon's oracle cache hit rate fetched *before* the run: the
    /// baseline for the warm-boot delta (absent when the fetch failed).
    pub hit_rate_before: Option<f64>,
    /// Verdicts the daemon preloaded from its persistent cache at boot
    /// (absent when the tier is off or the daemon predates it).
    pub persist_preloaded: Option<u64>,
    /// Oracle hits served by the persistent tier, from the post-run
    /// `/metrics` document.
    pub persist_hits: Option<u64>,
    /// Post-run `/metrics` fetches that failed (connect error, non-200, or
    /// a malformed body). Nonzero means `cache_hit_rate` is missing for a
    /// *reported* reason, not silently.
    pub metrics_fetch_failures: usize,
    /// Connect retries spent winning the boot race across every `/metrics`
    /// fetch of the run (bounded per fetch by [`PROBE_ATTEMPTS`]). Nonzero
    /// is normal when the generator starts alongside the daemon; it is
    /// counted so a chronically slow boot is visible, not absorbed.
    pub metrics_fetch_retries: usize,
    /// Per-shard readings (cluster mode; empty otherwise). In cluster mode
    /// `cache_hit_rate` is the *aggregate* over these shards — summed hits
    /// over summed lookups, not a mean of rates.
    pub per_shard: Vec<ShardReading>,
    /// Cluster-wide verdicts fetched from remote peers (summed
    /// `cluster.remote_hits`; cluster mode only).
    pub remote_hits: Option<u64>,
    /// Cluster-wide verdicts pushed to remote peers (summed
    /// `cluster.remote_puts`; cluster mode only).
    pub remote_puts: Option<u64>,
}

impl LoadgenReport {
    /// Requests per second over the run.
    pub fn throughput(&self) -> f64 {
        self.total as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Whether every response was one of the expected statuses.
    pub fn clean(&self) -> bool {
        self.unexpected == 0
    }

    /// The warm-boot hit-rate delta: after-run minus before-run hit rate,
    /// when both readings landed. Against a daemon warm-booted from a
    /// populated `--cache-dir`, an identical replay must push this up.
    pub fn hit_rate_delta(&self) -> Option<f64> {
        Some(self.cache_hit_rate? - self.hit_rate_before?)
    }

    /// The human-readable report printed by the CLI.
    pub fn render(&self) -> String {
        let ms = |q: f64| self.latency.percentile(q).unwrap_or(0) as f64 / 1000.0;
        let mut text = format!(
            "{} requests in {:.2?} ({:.1} req/s)\n\
             status: {} ok, {} shed (503), {} deadline (504), {} unexpected\n\
             latency: p50 {:.1} ms, p90 {:.1} ms, p99 {:.1} ms\n\
             oracle cache hit rate after run: {}\n\
             candidate dedup after run: {}\n\
             incremental oracle after run: {}\n\
             persistent tier after run: {}",
            self.total,
            self.elapsed,
            self.throughput(),
            self.ok,
            self.shed,
            self.timed_out,
            self.unexpected,
            ms(0.50),
            ms(0.90),
            ms(0.99),
            match self.cache_hit_rate {
                Some(rate) => format!("{:.1}%", rate * 100.0),
                None => format!(
                    "unavailable ({} metrics fetch failure(s))",
                    self.metrics_fetch_failures
                ),
            },
            match (self.dedup_hits, self.dedup_rate) {
                (Some(hits), Some(rate)) =>
                    format!("{hits} hits ({:.1}% dedup rate)", rate * 100.0),
                _ => "unavailable".to_string(),
            },
            match (self.incremental_checks, self.clause_reuse_rate) {
                (Some(checks), Some(rate)) =>
                    format!("{checks} checks ({:.1}% clause reuse)", rate * 100.0),
                _ => "unavailable".to_string(),
            },
            match (self.persist_preloaded, self.persist_hits) {
                (Some(preloaded), Some(hits)) => {
                    let delta = match self.hit_rate_delta() {
                        Some(d) => format!(", hit rate {:+.1} points over the run", d * 100.0),
                        None => String::new(),
                    };
                    format!("{preloaded} preloaded, {hits} persist hits{delta}")
                }
                _ => "off".to_string(),
            }
        );
        if self.metrics_fetch_retries > 0 {
            text.push_str(&format!(
                "\nmetrics fetches won the boot race after {} connect retr{}",
                self.metrics_fetch_retries,
                if self.metrics_fetch_retries == 1 {
                    "y"
                } else {
                    "ies"
                }
            ));
        }
        if !self.per_shard.is_empty() {
            text.push_str(&format!(
                "\ncluster: aggregate hit rate {}, {} remote hits, {} remote puts",
                match self.cache_hit_rate {
                    Some(rate) => format!("{:.1}%", rate * 100.0),
                    None => "unavailable".to_string(),
                },
                self.remote_hits.unwrap_or(0),
                self.remote_puts.unwrap_or(0),
            ));
            for shard in &self.per_shard {
                text.push_str(&format!(
                    "\n  shard {}: {:.1}% hit rate ({} hits / {} misses), remote {} hits / {} puts",
                    shard.addr,
                    shard.hit_rate * 100.0,
                    shard.hits,
                    shard.misses,
                    shard.remote_hits.unwrap_or(0),
                    shard.remote_puts.unwrap_or(0),
                ));
            }
        }
        text
    }
}

/// SplitMix64 — the workload sampler's only randomness primitive, so the
/// draw sequence is a pure function of the config seed.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic pool of up to `cap` injected-fault variants of the A4F
/// exercises, seeded by `seed`.
fn fault_pool(seed: u64, cap: usize) -> Vec<String> {
    let mut sources = Vec::new();
    'domains: for domain in a4f::domains() {
        for (i, (_, truth_source)) in a4f::exercises(domain).iter().enumerate() {
            let Ok(truth) = mualloy_syntax::parse_spec(truth_source) else {
                continue;
            };
            let seed = seed.wrapping_add(i as u64);
            if let Some(fault) = inject_fault(&truth, seed, InjectorConfig::default()) {
                sources.push(print_spec(&fault.faulty));
            }
            if sources.len() >= cap {
                break 'domains;
            }
        }
    }
    assert!(!sources.is_empty(), "the A4F corpus is never empty");
    sources
}

/// The Zipf rank for a uniform draw `u ∈ [0, 1)` over `n` ranks with the
/// classic 1/(r+1) weights: rank 0 is the hottest, the tail is cold.
fn zipf_rank(n: usize, u: f64) -> usize {
    let total: f64 = (1..=n).map(|r| 1.0 / r as f64).sum();
    let target = u * total;
    let mut cumulative = 0.0;
    for rank in 0..n {
        cumulative += 1.0 / (rank + 1) as f64;
        if cumulative >= target {
            return rank;
        }
    }
    n.saturating_sub(1)
}

/// Builds the deterministic request bodies, rotating through all twelve
/// technique labels.
///
/// Uniform: one 24-variant pool cycled round-robin. Zipfian: request `i`
/// belongs to tenant `i % tenants`; each tenant owns a 12-variant pool
/// seeded from `seed` and the tenant index, and picks a variant by Zipf
/// rank from a per-request SplitMix64 draw — hot heads, cold tails, and
/// (because variant pools differ per tenant) cross-tenant fingerprints
/// that spread over the whole shard ring.
pub fn request_bodies(config: &LoadgenConfig) -> Vec<String> {
    let picks: Vec<String> = match config.profile {
        WorkloadProfile::Uniform => {
            let sources = fault_pool(config.seed, 24);
            (0..config.requests)
                .map(|i| sources[i % sources.len()].clone())
                .collect()
        }
        WorkloadProfile::Zipfian => {
            let tenants = config.tenants.max(1);
            let pools: Vec<Vec<String>> = (0..tenants)
                .map(|tenant| fault_pool(mix(config.seed ^ (tenant as u64 + 1)), 12))
                .collect();
            (0..config.requests)
                .map(|i| {
                    let tenant = i % tenants;
                    let pool = &pools[tenant];
                    // One independent draw per (tenant, request): the 53
                    // high bits of a SplitMix64 output as a unit float.
                    let draw = mix(mix(config.seed ^ tenant as u64) ^ (i as u64 + 1));
                    let u = (draw >> 11) as f64 / (1u64 << 53) as f64;
                    pool[zipf_rank(pool.len(), u)].clone()
                })
                .collect()
        }
    };
    let techniques = TechniqueId::all();
    picks
        .into_iter()
        .enumerate()
        .map(|(i, source)| {
            let mut spec = String::new();
            push_json_string(&source, &mut spec);
            let chaos = if config.chaos_rate > 0.0 {
                format!(
                    ",\"fault_rate\":{},\"fault_seed\":{}",
                    config.chaos_rate, config.seed
                )
            } else {
                String::new()
            };
            format!(
                "{{\"spec\":{spec},\"technique\":\"{}\",\"deadline_ms\":{},\"seed\":{}{chaos},\
                 \"budget\":{{\"max_candidates\":8,\"max_rounds\":2}}}}",
                techniques[i % techniques.len()].label(),
                config.deadline_ms,
                config.seed,
            )
        })
        .collect()
}

/// Runs the load generation: `connections` threads, one fresh connection
/// per request, interleaved over the body list.
pub fn run(config: &LoadgenConfig) -> LoadgenReport {
    let bodies = request_bodies(config);
    let connections = config.connections.max(1);
    let mut metrics_fetch_retries = 0usize;
    // Pre-run baseline for the warm-boot delta. Best-effort: a daemon that
    // cannot even answer `/metrics` will fail the post-run fetch too, and
    // that one is the reported failure. In cluster mode the baseline is
    // the shard aggregate — the router's own oracle is only a degraded
    // fallback and says nothing about cluster cache locality.
    let hit_rate_before = if config.shards.is_empty() {
        fetch_metrics_counting(&config.addr)
            .ok()
            .and_then(|(body, retries)| {
                metrics_fetch_retries += retries;
                Snapshot::from_json(&body).ok()
            })
            .map(|snapshot| snapshot.oracle_cache.hit_rate)
    } else {
        let (rate, retries) = aggregate_shard_hit_rate(&config.shards);
        metrics_fetch_retries += retries;
        rate
    };
    let started = Instant::now();
    let (tx, rx) = mpsc::channel::<(Option<u16>, u64)>();
    std::thread::scope(|scope| {
        for worker in 0..connections {
            let tx = tx.clone();
            let bodies = &bodies;
            let addr = &config.addr;
            let shed_backoff_ms = config.shed_backoff_ms;
            scope.spawn(move || {
                let cancel = CancelToken::none();
                for body in bodies.iter().skip(worker).step_by(connections) {
                    let t0 = Instant::now();
                    let mut status = send_one(addr, body);
                    // Honour the daemon's `Retry-After` once: a shed under
                    // transient overload usually admits on the next try.
                    if status == Some(503)
                        && shed_backoff_ms > 0
                        && cancel.sleep(Duration::from_millis(shed_backoff_ms))
                    {
                        status = send_one(addr, body);
                    }
                    let micros = t0.elapsed().as_micros() as u64;
                    if tx.send((status, micros)).is_err() {
                        return;
                    }
                }
            });
        }
        drop(tx);
    });

    let mut report = LoadgenReport {
        total: 0,
        ok: 0,
        shed: 0,
        timed_out: 0,
        unexpected: 0,
        latency: Histogram::default(),
        elapsed: Duration::ZERO,
        cache_hit_rate: None,
        dedup_hits: None,
        dedup_rate: None,
        incremental_checks: None,
        clause_reuse_rate: None,
        hit_rate_before,
        persist_preloaded: None,
        persist_hits: None,
        metrics_fetch_failures: 0,
        metrics_fetch_retries,
        per_shard: Vec::new(),
        remote_hits: None,
        remote_puts: None,
    };
    for (status, micros) in rx {
        report.total += 1;
        report.latency.record(micros);
        match status {
            Some(200) => report.ok += 1,
            Some(503) => report.shed += 1,
            Some(504) => report.timed_out += 1,
            _ => report.unexpected += 1,
        }
    }
    report.elapsed = started.elapsed();
    // One post-run `/metrics` fetch, decoded once through the shared typed
    // snapshot, feeds every reconciliation reading: the oracle cache hit
    // rate, the candidate-dedup counters, the incremental-session counters
    // and the persistent tier.
    match fetch_metrics_counting(&config.addr).and_then(|(body, retries)| {
        report.metrics_fetch_retries += retries;
        Snapshot::from_json(&body)
    }) {
        Ok(snapshot) => {
            report.cache_hit_rate = Some(snapshot.oracle_cache.hit_rate);
            report.dedup_hits = Some(snapshot.candidate_dedup.hits);
            report.dedup_rate = Some(snapshot.candidate_dedup.rate);
            report.incremental_checks = Some(snapshot.incremental.checks);
            report.clause_reuse_rate = Some(snapshot.incremental.clause_reuse_rate);
            if let Some(persist) = &snapshot.persistent {
                report.persist_preloaded = Some(persist.preloaded);
                report.persist_hits = Some(snapshot.oracle_cache.persist_hits);
            }
        }
        Err(why) => {
            // A daemon whose `/metrics` endpoint answers garbage is a bug
            // worth surfacing, not a `None` to shrug at.
            eprintln!("warning: could not read oracle hit rate from /metrics: {why}");
            report.metrics_fetch_failures += 1;
        }
    }
    // Cluster mode: read every shard and report the aggregate — summed
    // hits over summed lookups, so a hot shard cannot hide a cold one.
    if !config.shards.is_empty() {
        let (mut hits_sum, mut misses_sum) = (0u64, 0u64);
        let (mut remote_hits, mut remote_puts) = (0u64, 0u64);
        let mut any = false;
        for addr in &config.shards {
            match read_shard(addr) {
                Ok((reading, retries)) => {
                    report.metrics_fetch_retries += retries;
                    hits_sum += reading.hits;
                    misses_sum += reading.misses;
                    remote_hits += reading.remote_hits.unwrap_or(0);
                    remote_puts += reading.remote_puts.unwrap_or(0);
                    any = true;
                    report.per_shard.push(reading);
                }
                Err(why) => {
                    eprintln!("warning: could not read shard {addr} /metrics: {why}");
                    report.metrics_fetch_failures += 1;
                }
            }
        }
        if any {
            report.remote_hits = Some(remote_hits);
            report.remote_puts = Some(remote_puts);
        }
        report.cache_hit_rate = if hits_sum + misses_sum > 0 {
            Some(hits_sum as f64 / (hits_sum + misses_sum) as f64)
        } else {
            None
        };
    }
    report
}

/// Aggregate hit rate over a shard list — summed hits over summed
/// lookups — plus the connect retries spent. `None` when no shard (or no
/// lookup) answered.
fn aggregate_shard_hit_rate(shards: &[String]) -> (Option<f64>, usize) {
    let (mut hits_sum, mut misses_sum, mut retries_sum) = (0u64, 0u64, 0usize);
    for addr in shards {
        if let Ok((reading, retries)) = read_shard(addr) {
            hits_sum += reading.hits;
            misses_sum += reading.misses;
            retries_sum += retries;
        }
    }
    let rate = if hits_sum + misses_sum > 0 {
        Some(hits_sum as f64 / (hits_sum + misses_sum) as f64)
    } else {
        None
    };
    (rate, retries_sum)
}

/// Reads one shard's `/metrics` into a [`ShardReading`], plus the connect
/// retries the fetch needed.
///
/// # Errors
///
/// A human-readable description of the failed fetch or the malformed body.
fn read_shard(addr: &str) -> Result<(ShardReading, usize), String> {
    let (body, retries) = fetch_metrics_counting(addr)?;
    let snapshot = Snapshot::from_json(&body)?;
    // A non-shard `cluster` section (a daemon booted without peers) simply
    // has no remote-tier counters to report.
    let (remote_hits, remote_puts) = match &snapshot.cluster {
        ClusterSection::Shard(shard) => (Some(shard.remote_hits), Some(shard.remote_puts)),
        _ => (None, None),
    };
    let reading = ShardReading {
        addr: addr.to_string(),
        hits: snapshot.oracle_cache.hits,
        misses: snapshot.oracle_cache.misses,
        hit_rate: snapshot.oracle_cache.hit_rate,
        remote_hits,
        remote_puts,
    };
    Ok((reading, retries))
}

/// Polls `GET /healthz` until the daemon answers `200`, with the same
/// bounded deterministic retry budget as the metrics fetches. Returns how
/// many attempts were spent waiting (0 = healthy on the first try).
///
/// # Errors
///
/// A description of the last failure once the budget is exhausted.
pub fn wait_healthy(addr: &str) -> Result<usize, String> {
    let cancel = CancelToken::none();
    let mut last = String::from("never attempted");
    for attempt in 0..PROBE_ATTEMPTS {
        match connect_with_retry(addr, 1, PROBE_BACKOFF, &cancel)
            .map_err(|e| format!("connect: {e}"))
            .and_then(|(mut stream, _)| {
                let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
                roundtrip(&mut stream, "GET", "/healthz", "").map_err(|e| format!("transport: {e}"))
            }) {
            Ok((200, _)) => return Ok(attempt),
            Ok((status, _)) => last = format!("status {status}"),
            Err(why) => last = why,
        }
        if !cancel.sleep(PROBE_BACKOFF) {
            break;
        }
    }
    Err(format!(
        "{addr} not healthy after {PROBE_ATTEMPTS} attempts (last: {last})"
    ))
}

/// One `POST /repair` over a fresh connection; `None` on transport errors.
fn send_one(addr: &str, body: &str) -> Option<u16> {
    TcpStream::connect(addr)
        .and_then(|mut stream| roundtrip(&mut stream, "POST", "/repair", body))
        .map(|(status, _)| status)
        .ok()
}

/// Fetches `/metrics` and extracts `oracle_cache.hit_rate` through the
/// shared typed [`Snapshot`] decoder.
///
/// # Errors
///
/// A human-readable description of exactly where the fetch went wrong:
/// connect/transport failure, a non-200 status, a body that is not JSON,
/// or a JSON document missing (or mistyping) the expected fields. Callers
/// are expected to surface this rather than collapse it to "unavailable".
pub fn fetch_hit_rate(addr: &str) -> Result<f64, String> {
    let body = fetch_metrics(addr)?;
    Ok(Snapshot::from_json(&body)?.oracle_cache.hit_rate)
}

/// Fetches the raw `/metrics` body from a running daemon.
pub fn fetch_metrics(addr: &str) -> Result<String, String> {
    fetch_metrics_counting(addr).map(|(body, _)| body)
}

/// Fetches `/metrics` with the bounded boot-race connect retry, returning
/// the body together with how many connect retries the fetch spent.
///
/// # Errors
///
/// The connect failure once the retry budget is exhausted, a transport
/// error, or a non-200 status — each described.
pub fn fetch_metrics_counting(addr: &str) -> Result<(String, usize), String> {
    let cancel = CancelToken::none();
    let (mut stream, retries) = connect_with_retry(addr, PROBE_ATTEMPTS, PROBE_BACKOFF, &cancel)
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let (status, body) = roundtrip(&mut stream, "GET", "/metrics", "")
        .map_err(|e| format!("GET /metrics transport error: {e}"))?;
    if status != 200 {
        return Err(format!("GET /metrics answered status {status}"));
    }
    Ok((body, retries))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bodies_are_deterministic_and_rotate_techniques() {
        let config = LoadgenConfig {
            requests: 26,
            ..LoadgenConfig::default()
        };
        let a = request_bodies(&config);
        let b = request_bodies(&config);
        assert_eq!(a, b, "same seed, same workload");
        assert_eq!(a.len(), 26);
        assert!(a[0].contains("\"technique\":\"ARepair\""));
        assert!(a[1].contains("\"technique\":\"ICEBAR\""));
        // Wraps around the twelve techniques.
        assert!(a[12].contains("\"technique\":\"ARepair\""));
        // Every body is itself valid JSON with a parsable spec.
        for body in &a {
            let parsed = crate::service::RepairRequest::parse(body).unwrap();
            assert!(mualloy_syntax::parse_spec(&parsed.spec).is_ok());
        }
    }

    #[test]
    fn chaos_bodies_carry_fault_fields() {
        let config = LoadgenConfig {
            requests: 3,
            chaos_rate: 0.25,
            ..LoadgenConfig::default()
        };
        for body in request_bodies(&config) {
            let parsed = crate::service::RepairRequest::parse(&body).unwrap();
            assert_eq!(parsed.fault_rate, Some(0.25));
            assert_eq!(parsed.fault_seed, Some(config.seed));
        }
        // Without the flag the bodies stay fault-free.
        let plain = request_bodies(&LoadgenConfig {
            requests: 1,
            ..LoadgenConfig::default()
        });
        assert!(!plain[0].contains("fault_rate"));
    }

    #[test]
    fn report_rendering_and_throughput() {
        let mut latency = Histogram::default();
        latency.record(2_000);
        let report = LoadgenReport {
            total: 10,
            ok: 8,
            shed: 1,
            timed_out: 1,
            unexpected: 0,
            latency,
            elapsed: Duration::from_secs(2),
            cache_hit_rate: Some(0.5),
            dedup_hits: Some(6),
            dedup_rate: Some(0.25),
            incremental_checks: Some(9),
            clause_reuse_rate: Some(0.8),
            hit_rate_before: Some(0.1),
            persist_preloaded: Some(12),
            persist_hits: Some(5),
            metrics_fetch_failures: 0,
            metrics_fetch_retries: 0,
            per_shard: Vec::new(),
            remote_hits: None,
            remote_puts: None,
        };
        assert!(report.clean());
        assert!((report.throughput() - 5.0).abs() < 1e-9);
        assert!((report.hit_rate_delta().unwrap() - 0.4).abs() < 1e-9);
        let text = report.render();
        assert!(text.contains("8 ok"));
        assert!(text.contains("50.0%"), "{text}");
        assert!(text.contains("6 hits (25.0% dedup rate)"), "{text}");
        assert!(text.contains("9 checks (80.0% clause reuse)"), "{text}");
        assert!(
            text.contains("12 preloaded, 5 persist hits, hit rate +40.0 points"),
            "{text}"
        );
    }

    #[test]
    fn report_counts_and_renders_metrics_fetch_failures() {
        let report = LoadgenReport {
            total: 1,
            ok: 1,
            shed: 0,
            timed_out: 0,
            unexpected: 0,
            latency: Histogram::default(),
            elapsed: Duration::from_secs(1),
            cache_hit_rate: None,
            dedup_hits: None,
            dedup_rate: None,
            incremental_checks: None,
            clause_reuse_rate: None,
            hit_rate_before: None,
            persist_preloaded: None,
            persist_hits: None,
            metrics_fetch_failures: 1,
            metrics_fetch_retries: 3,
            per_shard: Vec::new(),
            remote_hits: None,
            remote_puts: None,
        };
        let text = report.render();
        assert!(
            text.contains("unavailable (1 metrics fetch failure(s))"),
            "{text}"
        );
        assert!(
            text.contains("candidate dedup after run: unavailable"),
            "{text}"
        );
        assert!(
            text.contains("incremental oracle after run: unavailable"),
            "{text}"
        );
        assert!(text.contains("persistent tier after run: off"), "{text}");
        assert!(text.contains("boot race after 3 connect retries"), "{text}");
    }

    #[test]
    fn zipfian_bodies_are_deterministic_and_skewed() {
        let config = LoadgenConfig {
            requests: 120,
            profile: WorkloadProfile::Zipfian,
            tenants: 3,
            ..LoadgenConfig::default()
        };
        let a = request_bodies(&config);
        assert_eq!(a, request_bodies(&config), "same seed, same workload");
        assert_eq!(a.len(), 120);
        // Skew: the most frequent spec body must clearly beat a uniform
        // share. With 3 tenants × 12 ranks a uniform draw gives each
        // variant ~3.3% of requests; Zipf rank 0 gets ~32% per tenant.
        let mut counts: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
        for body in &a {
            let spec = body.split("\"technique\"").next().unwrap();
            *counts.entry(spec).or_insert(0) += 1;
        }
        let hottest = *counts.values().max().unwrap();
        assert!(
            hottest >= 8,
            "expected a hot head, hottest spec got {hottest}/120"
        );
        assert!(counts.len() > 3, "tenants draw from distinct pools");
        // Every body still parses into a valid repair request.
        for body in a.iter().take(10) {
            let parsed = crate::service::RepairRequest::parse(body).unwrap();
            assert!(mualloy_syntax::parse_spec(&parsed.spec).is_ok());
        }
        // A different seed reshuffles the stream.
        let other = request_bodies(&LoadgenConfig { seed: 43, ..config });
        assert_ne!(a, other);
    }

    #[test]
    fn zipf_rank_is_monotone_and_bounded() {
        // u = 0 maps to the hottest rank; u → 1 walks down the tail.
        assert_eq!(zipf_rank(12, 0.0), 0);
        assert!(zipf_rank(12, 0.999) > zipf_rank(12, 0.01));
        assert!(zipf_rank(12, 0.999) < 12);
        // Degenerate pool sizes stay in range.
        assert_eq!(zipf_rank(1, 0.7), 0);
        // Rank 0 owns its full 1/H(12) ≈ 32% head of the unit interval.
        assert_eq!(zipf_rank(12, 0.3), 0);
    }

    #[test]
    fn profile_parses_cli_spellings() {
        assert_eq!(
            WorkloadProfile::parse("uniform"),
            Ok(WorkloadProfile::Uniform)
        );
        assert_eq!(
            WorkloadProfile::parse("zipfian"),
            Ok(WorkloadProfile::Zipfian)
        );
        assert!(WorkloadProfile::parse("hot").is_err());
    }

    #[test]
    fn cluster_report_renders_per_shard_hit_rates() {
        let report = LoadgenReport {
            total: 4,
            ok: 4,
            shed: 0,
            timed_out: 0,
            unexpected: 0,
            latency: Histogram::default(),
            elapsed: Duration::from_secs(1),
            cache_hit_rate: Some(0.5),
            dedup_hits: None,
            dedup_rate: None,
            incremental_checks: None,
            clause_reuse_rate: None,
            hit_rate_before: None,
            persist_preloaded: None,
            persist_hits: None,
            metrics_fetch_failures: 0,
            metrics_fetch_retries: 0,
            per_shard: vec![ShardReading {
                addr: "127.0.0.1:7971".to_string(),
                hits: 6,
                misses: 6,
                hit_rate: 0.5,
                remote_hits: Some(2),
                remote_puts: Some(3),
            }],
            remote_hits: Some(2),
            remote_puts: Some(3),
        };
        let text = report.render();
        assert!(
            text.contains("cluster: aggregate hit rate 50.0%, 2 remote hits, 3 remote puts"),
            "{text}"
        );
        assert!(
            text.contains("shard 127.0.0.1:7971: 50.0% hit rate (6 hits / 6 misses)"),
            "{text}"
        );
    }

    /// A minimal well-formed `/metrics` body: every field the typed
    /// decoder requires, with `persistent`/`cluster` swappable per test.
    fn metrics_body(persistent: &str, cluster: &str) -> String {
        format!(
            r#"{{"oracle_cache":{{"hits":6,"misses":2,"hit_rate":0.75,"persist_hits":4}},
"candidate_dedup":{{"dedup_hits":7,"dedup_misses":21,"dedup_rate":0.25}},
"incremental":{{"incremental_checks":11,"clause_reuse_rate":0.6}},
"persistent":{persistent},
"cluster":{cluster}}}"#
        )
    }

    #[test]
    fn snapshot_decoder_reads_every_reconciliation_field() {
        let body = metrics_body(
            r#"{"enabled":false}"#,
            r#"{"enabled":true,"role":"shard","remote_hits":2,"remote_puts":3}"#,
        );
        let snapshot = Snapshot::from_json(&body).unwrap();
        assert_eq!(snapshot.oracle_cache.hits, 6);
        assert_eq!(snapshot.oracle_cache.misses, 2);
        assert_eq!(snapshot.oracle_cache.hit_rate, 0.75);
        assert_eq!(snapshot.candidate_dedup.hits, 7);
        assert_eq!(snapshot.candidate_dedup.rate, 0.25);
        assert_eq!(snapshot.incremental.checks, 11);
        assert_eq!(snapshot.incremental.clause_reuse_rate, 0.6);
        // Without `--cache-dir` the tier renders `enabled: false`: the
        // typed decoder reports "off" as `None`, not an error.
        assert_eq!(snapshot.persistent, None);
        // The shard cluster section carries the remote-tier counters the
        // per-shard report reads.
        match &snapshot.cluster {
            ClusterSection::Shard(shard) => {
                assert_eq!(shard.remote_hits, 2);
                assert_eq!(shard.remote_puts, 3);
            }
            other => panic!("expected a shard cluster section, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_decoder_reads_the_persistent_tier_when_enabled() {
        let body = metrics_body(r#"{"enabled":true,"preloaded":17}"#, r#"{"enabled":false}"#);
        let snapshot = Snapshot::from_json(&body).unwrap();
        let persist = snapshot.persistent.expect("tier is on");
        assert_eq!(persist.preloaded, 17);
        assert_eq!(snapshot.oracle_cache.persist_hits, 4);
        assert_eq!(snapshot.cluster, ClusterSection::Off);
        // An enabled tier that lost its `preloaded` counter is a described
        // error, not a panic.
        let broken = metrics_body(r#"{"enabled":true}"#, r#"{"enabled":false}"#);
        let err = Snapshot::from_json(&broken).unwrap_err();
        assert!(err.contains("no `preloaded` field"), "{err}");
    }

    #[test]
    fn snapshot_decoder_describes_each_malformation() {
        let cases: [(String, &str); 7] = [
            ("not json at all".to_string(), "not valid JSON"),
            ("[1,2,3]".to_string(), "not a JSON object"),
            (r#"{"queue":{}}"#.to_string(), "no `oracle_cache` section"),
            (
                r#"{"oracle_cache":{"hits":3,"misses":1}}"#.to_string(),
                "no `hit_rate` field",
            ),
            (
                r#"{"oracle_cache":{"hits":3,"misses":1,"hit_rate":"high"}}"#.to_string(),
                "not a number",
            ),
            (
                r#"{"oracle_cache":{"hits":6,"misses":2,"hit_rate":0.75}}"#.to_string(),
                "no `candidate_dedup` section",
            ),
            (
                r#"{"oracle_cache":{"hits":6,"misses":2,"hit_rate":0.75},
"candidate_dedup":{"dedup_hits":7,"dedup_rate":0.25}}"#
                    .to_string(),
                "no `incremental` section",
            ),
        ];
        for (body, expected) in cases {
            let err = Snapshot::from_json(&body).unwrap_err();
            assert!(err.contains(expected), "{body} => {err}");
        }
    }
}
